"""Supervised campaign execution: leased packs, worker liveness, requeue.

The raw ``multiprocessing.Pool`` the campaign executor used through PR 6
assumed a perfectly reliable host: a SIGKILL'd worker could deadlock the
shared task queue, a hung worker stalled the wave forever, and the parent
had no idea which worker held which pack. This module replaces it with a
DAVOS-style supervised pool (DESIGN.md section 12):

- every submitted pack is a **lease**: a work unit with a deadline
  (``trial_timeout`` x lanes), an eligibility time (exponential backoff +
  deterministic jitter after a requeue), and a requeue budget;
- each worker owns a **dedicated duplex pipe** instead of sharing queues —
  the parent assigns leases itself, so worker death can corrupt at most
  that worker's own channel, never the fleet's, and ``connection.wait``
  doubles as the heartbeat poll;
- the parent detects hard worker death (``SIGKILL`` included) via pipe EOF
  plus ``Process.exitcode``, kills workers whose lease expired, respawns
  replacements with the same initializer, and requeues the lost lease on a
  healthy worker — transparently, up to ``max_requeues`` times per pack.

The pool is deliberately generic — ``target`` is any picklable function of
one payload — so the unit tests drive it with trivial sleep/kill targets
and the campaign executor plugs in ``_run_pack_payload`` unchanged.
Requeued payloads get their ``"pack_attempt"`` key bumped so attempt-aware
consumers (the chaos harness) can distinguish first leases from requeues.

Trial-level failure taxonomy and quarantine live in the executor's drain
loop, not here: the pool supervises *processes*, the executor judges
*trials*.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field, fields
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Optional

import repro.telemetry as telemetry
from repro.utils.logging import get_logger

logger = get_logger("campaigns.supervise")


@dataclass(frozen=True)
class SuperviseConfig:
    """Knobs of the supervision layer (a measurement setting, never part of
    trial identity — `CampaignSpec.supervise` carries it in JSON specs and
    `campaign run --trial-timeout/--max-retries` overrides it).

    ``trial_timeout`` is per *trial*; a pack's lease deadline is the
    timeout times its lane count. ``max_retries`` bounds **trial-level**
    retries: a trial that fails ``max_retries + 1`` times is quarantined.
    ``max_requeues`` bounds **pack-level** infrastructure requeues (worker
    death, lease expiry); exhausting it fails the pack's trials without
    quarantining them — an unhealthy host is not a poison trial.
    """

    trial_timeout: float = 300.0
    max_retries: int = 2
    max_requeues: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    poll_interval_s: float = 0.05
    # Respawn-storm guard: a worker that dies instantly (e.g. at import
    # time) would otherwise respawn in a tight fork loop until the requeue
    # budget burns down. At most ``max_respawns_per_window`` respawns are
    # performed per rolling ``respawn_window_s``; beyond that the pool runs
    # short-handed (WARNING + ``supervise.respawns_throttled`` counter)
    # until the window slides.
    respawn_window_s: float = 30.0
    max_respawns_per_window: int = 16

    def __post_init__(self) -> None:
        if self.trial_timeout <= 0:
            raise ValueError("trial_timeout must be positive")
        if self.max_retries < 0 or self.max_requeues < 0:
            raise ValueError("max_retries/max_requeues must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("need 0 <= backoff_base_s <= backoff_cap_s")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.respawn_window_s <= 0:
            raise ValueError("respawn_window_s must be positive")
        if self.max_respawns_per_window < 1:
            raise ValueError("max_respawns_per_window must be >= 1")

    def backoff(self, attempt: int, key: str) -> float:
        """Exponential backoff with deterministic jitter for retry ``attempt``
        (1-based) of site ``key``. Jitter is a pure hash of (key, attempt) so
        reruns schedule identically — chaos runs stay reproducible."""
        if attempt <= 0:
            return 0.0
        base = min(self.backoff_base_s * 2 ** (attempt - 1), self.backoff_cap_s)
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        jitter = int.from_bytes(digest[:4], "big") / 2**32  # [0, 1)
        return base * (1.0 + jitter)

    def to_dict(self) -> dict:
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) != f.default
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SuperviseConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown supervise keys: {sorted(unknown)} (known: {sorted(known)})"
            )
        return cls(**payload)


# -------------------------------------------------------------------- events
@dataclass(frozen=True)
class PackDone:
    """A lease completed; ``outcomes`` is whatever ``target`` returned."""

    job_id: int
    payload: dict
    outcomes: Any


@dataclass(frozen=True)
class PackLost:
    """A lease exhausted its requeue budget; the pack's work did not run."""

    job_id: int
    payload: dict
    reason: str
    requeues: int


# --------------------------------------------------------------- worker side
def _pool_worker(index: int, conn, target, initializer, initargs) -> None:
    """Worker main loop: recv a (job_id, payload) lease, run it, send back.

    A failed initializer is logged, not fatal — the campaign initializer
    already degrades (workers rebuild what the shm attach would have
    shared), and a worker that dies on init would just be respawned into
    the same failure forever.
    """
    from repro.campaigns import chaos

    chaos.WORKER_INDEX = index
    if initializer is not None:
        try:
            initializer(*initargs)
        except Exception as exc:
            logger.warning("worker %d initializer failed (%r)", index, exc)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        job_id, payload = message
        try:
            outcomes = target(payload)
            conn.send((job_id, True, outcomes))
        except BaseException as exc:  # noqa: BLE001 — shipped to the parent
            try:
                conn.send((job_id, False, repr(exc)))
            except (OSError, ValueError):
                break
    try:
        conn.close()
    except OSError:
        pass


# --------------------------------------------------------------- parent side
@dataclass
class _Lease:
    job_id: int
    payload: dict
    deadline_s: float  # per-lease duration budget once claimed
    eligible_at: float = 0.0  # monotonic time before which it must not run
    requeues: int = 0


@dataclass
class _Worker:
    index: int
    process: Any
    conn: Any
    lease: Optional[_Lease] = None
    leased_at: float = 0.0


class SupervisedPool:
    """A process pool that survives SIGKILL, hangs, and crashes of any worker.

    Drive it with :meth:`submit` + :meth:`next_event`: the parent calls
    ``next_event`` until :meth:`outstanding` drops to zero; each call
    returns a :class:`PackDone`, a :class:`PackLost`, or ``None`` (a
    heartbeat tick with nothing finished — the caller's chance to write
    progress). Internal requeues never surface as events; they bump the
    ``supervise.requeues`` / ``supervise.worker_deaths`` /
    ``supervise.lease_expiries`` telemetry counters instead.
    """

    def __init__(
        self,
        workers: int,
        target: Callable[[dict], Any],
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        config: Optional[SuperviseConfig] = None,
        ctx=None,
    ) -> None:
        if workers < 1:
            raise ValueError("a supervised pool needs at least one worker")
        if ctx is None:
            import multiprocessing

            ctx = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = ctx
        self._target = target
        self._initializer = initializer
        self._initargs = initargs
        self.config = config or SuperviseConfig()
        self._next_job_id = 0
        self._next_worker_index = 0
        self._ready: list[_Lease] = []
        self._lost: list[PackLost] = []
        self._target_workers = workers
        self._respawn_times: list[float] = []
        self._respawn_debt = 0
        self._throttle_warned = False
        self._workers: list[_Worker] = [self._spawn() for _ in range(workers)]
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    def _spawn(self) -> _Worker:
        index = self._next_worker_index
        self._next_worker_index += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_pool_worker,
            args=(index, child_conn, self._target, self._initializer, self._initargs),
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent keeps only its own end
        return _Worker(index=index, process=process, conn=parent_conn)

    def close(self, force: bool = False) -> None:
        """Shut the pool down without ever hanging the parent.

        Graceful close sends each idle worker a stop sentinel and gives the
        fleet a bounded join; anything still alive after that — and
        everything, immediately, under ``force`` — is terminated and then
        killed. Pipes are closed last.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if not force and worker.lease is None:
                try:
                    worker.conn.send(None)
                except (OSError, ValueError):
                    pass
            else:
                worker.process.terminate()
        deadline = time.monotonic() + (0.0 if force else 5.0)
        for worker in self._workers:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []
        self._ready = []

    # ------------------------------------------------------------ interface
    @property
    def outstanding(self) -> int:
        """Leases not yet completed or lost."""
        busy = sum(1 for w in self._workers if w.lease is not None)
        return len(self._ready) + busy + len(self._lost)

    def submit(self, payload: dict, deadline_s: float, delay_s: float = 0.0) -> int:
        """Queue one pack; it becomes a lease when a worker claims it."""
        if self._closed:
            raise RuntimeError("pool is closed")
        job_id = self._next_job_id
        self._next_job_id += 1
        self._ready.append(
            _Lease(
                job_id=job_id,
                payload=payload,
                deadline_s=deadline_s,
                eligible_at=time.monotonic() + delay_s,
            )
        )
        return job_id

    def next_event(self) -> Optional[PackDone | PackLost]:
        """One supervision step: dispatch, poll, detect death/expiry.

        Returns the first finished or lost pack, or ``None`` after one poll
        interval with neither (the heartbeat tick).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._lost:
            return self._lost.pop(0)
        self._dispatch()
        event = self._poll_results()
        if event is not None:
            return event
        self._reap_dead_workers()
        self._expire_leases()
        return self._lost.pop(0) if self._lost else None

    # ----------------------------------------------------------- internals
    def _dispatch(self) -> None:
        now = time.monotonic()
        for worker in self._workers:
            if worker.lease is not None:
                continue
            eligible = [l for l in self._ready if l.eligible_at <= now]
            if not eligible:
                break
            lease = eligible[0]
            self._ready.remove(lease)
            try:
                worker.conn.send((lease.job_id, lease.payload))
            except (OSError, ValueError):
                # Worker died between leases; the reaper respawns it and
                # the lease goes back to the front of the queue.
                self._ready.insert(0, lease)
                continue
            worker.lease = lease
            worker.leased_at = now

    def _poll_results(self) -> Optional[PackDone | PackLost]:
        busy = [w for w in self._workers if w.lease is not None]
        if not busy:
            if self._ready:
                time.sleep(self.config.poll_interval_s)
            return None
        by_conn = {w.conn: w for w in busy}
        readable = connection_wait(
            list(by_conn), timeout=self.config.poll_interval_s
        )
        for conn in readable:
            worker = by_conn[conn]
            try:
                job_id, ok, data = conn.recv()
            except (EOFError, OSError):
                # Death mid-send (or right after): the reaper handles it.
                continue
            lease = worker.lease
            worker.lease = None
            if lease is None or lease.job_id != job_id:
                # A stale result from a lease already requeued elsewhere;
                # first completion won, drop the duplicate.
                continue
            if ok:
                return PackDone(job_id=job_id, payload=lease.payload, outcomes=data)
            # The target raised outside its own error handling — an
            # infrastructure-level failure, retried like a crash.
            self._requeue(lease, f"worker raised {data}")
            return None
        return None

    def _reap_dead_workers(self) -> None:
        for worker in list(self._workers):
            if worker.process.is_alive():
                continue
            telemetry.METRICS.counter("supervise.worker_deaths").inc()
            logger.warning(
                "worker %d (pid %s) died with exitcode %s%s",
                worker.index,
                worker.process.pid,
                worker.process.exitcode,
                f" holding pack {worker.lease.job_id}" if worker.lease else "",
            )
            try:
                worker.conn.close()
            except OSError:
                pass
            lease, worker.lease = worker.lease, None
            self._workers.remove(worker)
            self._respawn_debt += 1
            if lease is not None:
                self._requeue(
                    lease, f"worker died (exitcode {worker.process.exitcode})"
                )
        self._maybe_respawn()

    def _maybe_respawn(self) -> None:
        """Respawn dead workers, rate-limited against respawn storms.

        A worker that dies at startup (bad import, OOM-killed on load)
        would otherwise fork-loop as fast as the reaper runs. Respawns are
        capped per rolling window; past the cap the pool runs short-handed
        until the window slides, which is visible as a WARNING and the
        ``supervise.respawns_throttled`` counter.
        """
        if self._respawn_debt <= 0:
            return
        now = time.monotonic()
        horizon = now - self.config.respawn_window_s
        self._respawn_times = [t for t in self._respawn_times if t > horizon]
        throttled = False
        while self._respawn_debt > 0:
            if len(self._respawn_times) >= self.config.max_respawns_per_window:
                throttled = True
                break
            self._respawn_times.append(now)
            self._respawn_debt -= 1
            self._workers.append(self._spawn())
        if throttled:
            telemetry.METRICS.counter("supervise.respawns_throttled").inc()
            if not self._throttle_warned:
                self._throttle_warned = True
                logger.warning(
                    "respawn storm: %d respawns in the last %.0fs hit the cap "
                    "(%d); running with %d/%d workers until the window slides",
                    len(self._respawn_times),
                    self.config.respawn_window_s,
                    self.config.max_respawns_per_window,
                    len(self._workers),
                    self._target_workers,
                )
        else:
            self._throttle_warned = False

    def _expire_leases(self) -> None:
        now = time.monotonic()
        for worker in self._workers:
            lease = worker.lease
            if lease is None:
                continue
            if now - worker.leased_at <= lease.deadline_s:
                continue
            telemetry.METRICS.counter("supervise.lease_expiries").inc()
            logger.warning(
                "lease %d expired after %.1fs (deadline %.1fs); killing worker %d",
                lease.job_id,
                now - worker.leased_at,
                lease.deadline_s,
                worker.index,
            )
            # SIGKILL, not terminate: a truly wedged worker can ignore
            # SIGTERM, and the reaper must see a dead process next tick.
            worker.process.kill()
            worker.process.join(timeout=5.0)
            # The reaper sweep (next next_event call) respawns and requeues.

    def _requeue(self, lease: _Lease, reason: str) -> None:
        lease.requeues += 1
        if lease.requeues > self.config.max_requeues:
            logger.warning(
                "pack %d lost after %d requeues: %s",
                lease.job_id, lease.requeues - 1, reason,
            )
            self._lost.append(
                PackLost(
                    job_id=lease.job_id,
                    payload=lease.payload,
                    reason=reason,
                    requeues=lease.requeues - 1,
                )
            )
            return
        telemetry.METRICS.counter("supervise.requeues").inc()
        delay = self.config.backoff(lease.requeues, str(lease.job_id))
        lease.eligible_at = time.monotonic() + delay
        # Attempt-aware consumers (the chaos harness) key off this; chaos
        # faults fire only on pack_attempt == 0, so a requeued pack runs
        # clean.
        lease.payload = {**lease.payload, "pack_attempt": lease.requeues}
        logger.warning(
            "requeueing pack %d (requeue %d/%d, backoff %.2fs): %s",
            lease.job_id, lease.requeues, self.config.max_requeues, delay, reason,
        )
        self._ready.append(lease)
