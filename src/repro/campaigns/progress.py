"""Campaign progress snapshots: build (writer side) and read/render (watch).

The running parent periodically serializes campaign-wide state — totals,
throughput, per-cell completion and CI width, merged worker metrics — into
the result store's ``progress`` table (DESIGN.md section 10). ``campaign
watch`` and ``campaign status --metrics`` consume it from *other*
processes, so the read path here opens the SQLite file directly instead of
constructing a :class:`~repro.campaigns.store.ResultStore`: the store's
constructor may rebuild the index (a write), and a second writer racing
the campaign parent is exactly what the single-writer design forbids. A
bare read-only connection under WAL never blocks the writer and never
writes.
"""

from __future__ import annotations

import json
import math
import sqlite3
import time
from pathlib import Path
from typing import Optional

from repro.utils.tables import format_table


def _cell_ci(values: list[float]) -> float:
    """Half-width of the 95% normal CI on the cell mean (0 when n < 2)."""
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return 1.96 * math.sqrt(var / n)


def build_snapshot(
    name: str,
    state: str,
    totals: dict,
    elapsed_s: float,
    cells: list[dict],
    metrics: dict,
    last_result_age_s: Optional[float] = None,
    fleet: Optional[dict] = None,
) -> dict:
    """Assemble one JSON-able progress snapshot.

    ``cells`` entries carry raw ``values`` (per-trial degradations); the
    snapshot stores their count/mean/CI instead, so a row stays a few
    hundred bytes regardless of campaign size.
    """
    executed = totals.get("executed", 0)
    done = executed + totals.get("cached", 0)
    remaining = (
        totals.get("total", 0)
        - done
        - totals.get("failed", 0)
        - totals.get("skipped", 0)
        - totals.get("quarantined", 0)
        - totals.get("poison_skipped", 0)
    )
    throughput = executed / elapsed_s if elapsed_s > 0 else 0.0
    eta_s = remaining / throughput if throughput > 0 and remaining > 0 else None
    cell_rows = []
    for cell in cells:
        values = cell.get("values", [])
        cell_rows.append(
            {
                "cell": cell["cell"],
                "label": cell["label"],
                "done": cell["done"],
                "total": cell["total"],
                "mean": (sum(values) / len(values)) if values else None,
                "ci": _cell_ci(values),
            }
        )
    snapshot = {
        "name": name,
        "state": state,
        "ts": time.time(),
        "totals": dict(totals),
        "elapsed_s": elapsed_s,
        "throughput_per_s": throughput,
        "eta_s": eta_s,
        "last_result_age_s": last_result_age_s,
        "cells": cell_rows,
        "metrics": metrics,
    }
    if fleet is not None:
        # Distributed runs only (the per-worker gauges of DESIGN.md §14):
        # who is registered, who is live, leases held, packs delivered.
        snapshot["fleet"] = fleet
    return snapshot


def read_latest_progress(store_dir: str | Path) -> Optional[dict]:
    """Newest progress snapshot from a store directory, ``None`` if absent.

    Missing directory, missing index, or a store created before the
    ``progress`` table existed all read as "no progress yet" — the watch
    loop keeps polling instead of crashing on a campaign that has not
    started writing.
    """
    index_path = Path(store_dir) / "index.sqlite"
    if not index_path.exists():
        return None
    try:
        conn = sqlite3.connect(f"file:{index_path}?mode=ro", uri=True)
        try:
            row = conn.execute(
                "SELECT payload FROM progress ORDER BY seq DESC LIMIT 1"
            ).fetchone()
        finally:
            conn.close()
    except sqlite3.Error:
        return None
    if row is None:
        return None
    try:
        return json.loads(row[0])
    except (TypeError, json.JSONDecodeError):
        return None


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_snapshot(snapshot: dict) -> str:
    """One watch frame: headline throughput/ETA plus the per-cell table."""
    totals = snapshot.get("totals", {})
    throughput = snapshot.get("throughput_per_s", 0.0)
    quarantined = totals.get("quarantined", 0) + totals.get("poison_skipped", 0)
    quarantine_part = f", {quarantined} quarantined" if quarantined else ""
    header = (
        f"campaign {snapshot.get('name', '?')} [{snapshot.get('state', '?')}] "
        f"{totals.get('executed', 0) + totals.get('cached', 0)}"
        f"/{totals.get('total', 0)} trials "
        f"({totals.get('cached', 0)} cached, {totals.get('failed', 0)} failed, "
        f"{totals.get('skipped', 0)} skipped{quarantine_part}) | "
        f"{throughput:.2f} trials/s | "
        f"elapsed {_fmt_duration(snapshot.get('elapsed_s'))} | "
        f"eta {_fmt_duration(snapshot.get('eta_s'))}"
    )
    rows = [
        [
            cell["label"],
            f"{cell['done']}/{cell['total']}",
            "-" if cell["mean"] is None else f"{cell['mean']:.4g}",
            f"{cell['ci']:.4g}",
        ]
        for cell in snapshot.get("cells", [])
    ]
    table = format_table(["cell", "done", "mean degr", "ci95"], rows)
    fleet = snapshot.get("fleet")
    if not fleet:
        return f"{header}\n{table}"
    local = " (degraded to local pool)" if fleet.get("local_active") else ""
    fleet_header = (
        f"fleet: {sum(1 for w in fleet.get('workers', []) if w.get('live'))} live / "
        f"{len(fleet.get('workers', []))} known workers, "
        f"{fleet.get('pending', 0)} packs pending, "
        f"{fleet.get('granted', 0)} leased{local}"
    )
    worker_rows = [
        [
            w.get("id", "?"),
            w.get("host", ""),
            "live" if w.get("live") else "lost",
            str(len(w.get("leases", []))),
            str(w.get("packs_done", 0)),
            f"{w.get('last_seen_age_s', 0.0):.1f}s",
        ]
        for w in fleet.get("workers", [])
    ]
    fleet_table = (
        format_table(
            ["worker", "host", "state", "leases", "packs", "last seen"], worker_rows
        )
        if worker_rows
        else "no workers have registered"
    )
    return f"{header}\n{table}\n{fleet_header}\n{fleet_table}"


def render_metrics(snapshot: dict) -> str:
    """The merged metric registry of a snapshot, as counter/gauge tables."""
    metrics = snapshot.get("metrics", {})
    rows = [["counter", k, v] for k, v in sorted(metrics.get("counters", {}).items())]
    rows += [["gauge", k, v] for k, v in sorted(metrics.get("gauges", {}).items())]
    for name, h in sorted(metrics.get("histograms", {}).items()):
        mean = h["sum"] / h["count"] if h.get("count") else 0.0
        rows.append(["histogram", name, f"n={h.get('count', 0)} mean={mean:.4g}"])
    if not rows:
        return "no metrics recorded"
    return format_table(["kind", "metric", "value"], rows)
