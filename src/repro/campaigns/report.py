"""Aggregation and reporting over a campaign's result store.

Groups stored trials by cell (trial identity minus the seed), computes
Monte-Carlo statistics of the degradation metric, and renders them through
the repo's standard :func:`~repro.utils.tables.format_table`, or exports the
raw per-trial records as CSV for external analysis.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.campaigns.spec import NO_METHOD, CampaignSpec, Trial
from repro.campaigns.store import ResultStore, StoredRecord
from repro.utils.tables import format_table


@dataclass(frozen=True)
class CellSummary:
    """Monte-Carlo statistics for one campaign cell.

    ``trial`` is a representative trial of the cell (first stored seed), for
    callers that need the typed site/error identity rather than the labels.
    """

    cell: str
    trial: Trial
    model: str
    task: str
    site: str
    error: str
    method: str
    voltage: Optional[float]
    n: int
    mean_score: float
    mean_degradation: float
    std_degradation: float
    min_degradation: float
    max_degradation: float
    #: Hardware-cost means, taken over the ``n_costed`` trials that were
    #: stored with a cost instrument attached (``CampaignSpec.cost``). A
    #: resumed campaign can mix cost-less legacy records into a cell; those
    #: are excluded here so the means stay per-measured-trial quantities
    #: rather than being silently diluted toward zero.
    n_costed: int = 0
    mean_cycles: float = 0.0
    mean_recovered_macs: float = 0.0
    mean_energy_j: float = 0.0

    @property
    def stderr(self) -> float:
        if self.n < 2:
            return 0.0
        return self.std_degradation / math.sqrt(self.n)

    @property
    def has_costs(self) -> bool:
        """Whether any stored trial of this cell carried measured costs."""
        return self.n_costed > 0


def _spec_keys(spec: Optional[CampaignSpec]) -> Optional[set[str]]:
    return {t.key for t in spec.expand()} if spec is not None else None


def _select(store: ResultStore, spec: Optional[CampaignSpec]) -> list[StoredRecord]:
    """All stored records, restricted to ``spec``'s grid when one is given."""
    keys = _spec_keys(spec)
    records = store.records()
    if keys is None:
        return records
    return [r for r in records if r.key in keys]


def aggregate(store: ResultStore, spec: Optional[CampaignSpec] = None) -> list[CellSummary]:
    """Per-cell summaries.

    With a ``spec``, cells come out in the spec's grid order (parallel runs
    append to the store in completion order, which would make reports
    un-diffable across runs); otherwise in store insertion order.
    """
    groups: dict[str, list[StoredRecord]] = {}
    order: list[str] = []
    if spec is not None:
        for trial in spec.expand():
            if trial.cell_id not in groups:
                groups[trial.cell_id] = []
                order.append(trial.cell_id)
    for record in _select(store, spec):
        if record.cell not in groups:
            groups[record.cell] = []
            order.append(record.cell)
        groups[record.cell].append(record)

    summaries: list[CellSummary] = []
    for cell_id in order:
        records = groups[cell_id]
        if not records:  # spec cell with nothing stored yet
            continue
        trial = records[0].trial
        degradations = [r.result.degradation for r in records]
        n = len(degradations)
        mean = sum(degradations) / n
        var = sum((d - mean) ** 2 for d in degradations) / (n - 1) if n > 1 else 0.0
        # Cost columns average over instrumented trials only (a record
        # measured with a cost instrument always has nonzero cycles).
        costed = [r.result for r in records if r.result.cycles > 0]
        n_costed = len(costed)
        summaries.append(
            CellSummary(
                cell=cell_id,
                trial=trial,
                model=trial.model,
                task=trial.task,
                site=trial.site.label,
                error=trial.error.label,
                method=trial.method,
                voltage=trial.voltage,
                n=n,
                mean_score=sum(r.result.score for r in records) / n,
                mean_degradation=mean,
                std_degradation=math.sqrt(var),
                min_degradation=min(degradations),
                max_degradation=max(degradations),
                n_costed=n_costed,
                mean_cycles=sum(r.cycles for r in costed) / n_costed if n_costed else 0.0,
                mean_recovered_macs=(
                    sum(r.recovered_macs for r in costed) / n_costed if n_costed else 0.0
                ),
                mean_energy_j=(
                    sum(r.energy_j for r in costed) / n_costed if n_costed else 0.0
                ),
            )
        )
    return summaries


def report_table(
    store: ResultStore,
    spec: Optional[CampaignSpec] = None,
    title: Optional[str] = None,
    costs: bool = False,
) -> str:
    """The campaign's headline table: one row per cell with mean +/- stderr.

    ``costs=True`` appends the per-cell hardware-cost columns (mean
    systolic cycles, recovered MACs, and energy in microjoules) measured by
    the campaign's cost instrument, averaged over the instrumented trials
    only; cells with no measured trial show ``-``.
    """
    summaries = aggregate(store, spec)
    show_method = any(s.method != NO_METHOD for s in summaries)
    show_voltage = any(s.voltage is not None for s in summaries)
    headers = ["model", "task", "site", "error"]
    if show_method:
        headers.append("method")
    if show_voltage:
        headers.append("V")
    headers += ["seeds", "score", "degradation", "+/-", "worst"]
    if costs:
        headers += ["cycles", "recovered MACs", "energy (uJ)"]
    rows = []
    for s in summaries:
        row: list = [s.model, s.task, s.site, s.error]
        if show_method:
            row.append(s.method)
        if show_voltage:
            row.append("-" if s.voltage is None else f"{s.voltage:.2f}")
        row += [s.n, s.mean_score, s.mean_degradation, s.stderr, s.max_degradation]
        if costs:
            if s.has_costs:
                row += [
                    f"{s.mean_cycles:.0f}",
                    f"{s.mean_recovered_macs:.0f}",
                    s.mean_energy_j * 1e6,
                ]
            else:
                row += ["-", "-", "-"]
        rows.append(row)
    if title is None:
        title = f"campaign {spec.name}" if spec is not None else "campaign results"
    return format_table(headers, rows, title=title)


def status_table(spec: CampaignSpec, store: ResultStore) -> str:
    """Completion status of ``spec`` against ``store``: one row per cell."""
    cells: dict[str, dict] = {}
    order: list[str] = []
    done_keys = store.keys()
    for trial in spec.expand():
        info = cells.get(trial.cell_id)
        if info is None:
            info = cells[trial.cell_id] = {"label": trial.cell_label, "total": 0, "done": 0}
            order.append(trial.cell_id)
        info["total"] += 1
        if trial.key in done_keys:
            info["done"] += 1
    rows = []
    total = done = 0
    for cell_id in order:
        info = cells[cell_id]
        total += info["total"]
        done += info["done"]
        state = "done" if info["done"] >= info["total"] else (
            "partial" if info["done"] else "pending"
        )
        rows.append([info["label"], f"{info['done']}/{info['total']}", state])
    title = (
        f"campaign {spec.name}: {done}/{total} trials complete "
        f"({len(order)} cells, store {store.directory})"
    )
    return format_table(["cell", "seeds", "state"], rows, title=title)


#: Flat per-trial CSV columns (raw records, one row per executed trial).
CSV_FIELDS = [
    "key", "cell", "model", "task", "site", "error", "error_kind", "ber",
    "bits", "mag", "freq", "sign", "method", "voltage", "seed",
    "score", "degradation", "clean_score", "injected_errors", "gemm_calls",
    "cycles", "recovered_macs", "energy_j", "elapsed_s", "worker", "backend",
]


def export_csv(
    store: ResultStore,
    path: str | Path,
    spec: Optional[CampaignSpec] = None,
) -> int:
    """Write raw trial records as CSV; returns the number of rows written."""
    records = _select(store, spec)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for record in records:
            trial, result = record.trial, record.result
            writer.writerow(
                {
                    "key": record.key,
                    "cell": record.cell,
                    "model": trial.model,
                    "task": trial.task,
                    "site": trial.site.label,
                    "error": trial.error.label,
                    "error_kind": trial.error.kind,
                    "ber": "" if trial.error.ber is None else trial.error.ber,
                    "bits": "" if trial.error.bits is None else ";".join(
                        str(b) for b in trial.error.bits
                    ),
                    "mag": "" if trial.error.mag is None else trial.error.mag,
                    "freq": "" if trial.error.freq is None else trial.error.freq,
                    "sign": trial.error.sign,
                    "method": trial.method,
                    "voltage": "" if trial.voltage is None else trial.voltage,
                    "seed": trial.seed,
                    "score": result.score,
                    "degradation": result.degradation,
                    "clean_score": result.clean_score,
                    "injected_errors": result.injected_errors,
                    "gemm_calls": result.gemm_calls,
                    "cycles": result.cycles,
                    "recovered_macs": result.recovered_macs,
                    "energy_j": result.energy_j,
                    "elapsed_s": result.elapsed_s,
                    "worker": result.worker,
                    "backend": result.backend,
                }
            )
    return len(records)
