"""Declarative fault-injection campaign specifications.

A :class:`CampaignSpec` names a full experimental grid — ``models x tasks x
injection sites x error models x methods x voltages x seeds`` — and expands
it into an ordered list of hashable :class:`Trial`\\ s. Every trial carries a
stable content key (SHA-256 of its canonical JSON form), which is what the
result store uses for dedup and crash resume: re-running a campaign skips
every trial whose key is already on disk.

Specs round-trip through JSON so campaigns can live in version control and
be launched from the CLI (``python -m repro campaign run --spec grid.json``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.campaigns.stopping import StoppingPolicy
from repro.campaigns.supervise import SuperviseConfig
from repro.dispatch.cost import CostSpec
from repro.errors.models import BitFlipModel, ErrorModel, MagFreqModel
from repro.errors.sites import Component, SiteFilter, Stage

#: Method key meaning "inject but do not protect" (distinct from the Fig. 9
#: "no-protection" baseline only in that it skips the method registry).
NO_METHOD = "none"


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SiteSpec:
    """JSON-able, hashable mirror of :class:`~repro.errors.sites.SiteFilter`."""

    layers: Optional[tuple[int, ...]] = None
    components: Optional[tuple[str, ...]] = None
    stages: Optional[tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.components is not None:
            for c in self.components:
                Component(c)  # raises ValueError on unknown labels
        if self.stages is not None:
            for s in self.stages:
                Stage(s)
        # Canonicalize every axis so the same logical site always hashes to
        # the same trial key, however it was constructed. Layers must end up
        # as real ints — a string "0" from JSON would match no GemmSite.
        if self.layers is not None:
            object.__setattr__(self, "layers", tuple(sorted(int(x) for x in self.layers)))
        for name in ("components", "stages"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, tuple(sorted(value)))

    @classmethod
    def everywhere(cls) -> "SiteSpec":
        return cls()

    @classmethod
    def only(
        cls,
        layers: Optional[Sequence[int]] = None,
        components: Optional[Sequence[Component | str]] = None,
        stages: Optional[Sequence[Stage | str]] = None,
    ) -> "SiteSpec":
        return cls(
            layers=tuple(layers) if layers is not None else None,
            components=tuple(
                c.value if isinstance(c, Component) else str(c) for c in components
            )
            if components is not None
            else None,
            stages=tuple(s.value if isinstance(s, Stage) else str(s) for s in stages)
            if stages is not None
            else None,
        )

    @classmethod
    def from_filter(cls, site_filter: Optional[SiteFilter]) -> "SiteSpec":
        if site_filter is None:
            return cls()
        return cls.only(
            layers=sorted(site_filter.layers) if site_filter.layers is not None else None,
            components=sorted(site_filter.components, key=lambda c: c.value)
            if site_filter.components is not None
            else None,
            stages=sorted(site_filter.stages, key=lambda s: s.value)
            if site_filter.stages is not None
            else None,
        )

    def to_filter(self) -> SiteFilter:
        return SiteFilter.only(
            layers=self.layers,
            components=[Component(c) for c in self.components]
            if self.components is not None
            else None,
            stages=[Stage(s) for s in self.stages] if self.stages is not None else None,
        )

    @property
    def label(self) -> str:
        parts = []
        if self.components is not None:
            parts.append("+".join(self.components))
        if self.layers is not None:
            parts.append("L" + ",".join(str(x) for x in self.layers))
        if self.stages is not None:
            parts.append("+".join(self.stages))
        return "/".join(parts) if parts else "everywhere"

    def to_dict(self) -> dict:
        out: dict = {}
        if self.layers is not None:
            out["layers"] = list(self.layers)
        if self.components is not None:
            out["components"] = list(self.components)
        if self.stages is not None:
            out["stages"] = list(self.stages)
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "SiteSpec":
        return cls.only(
            layers=payload.get("layers"),
            components=payload.get("components"),
            stages=payload.get("stages"),
        )


@dataclass(frozen=True)
class ErrorSpec:
    """One error model of the grid: a BER'd bit-flip or a mag/freq cell.

    ``ber=None`` on a bitflip spec means "derive the BER from the trial's
    voltage" via :class:`~repro.circuits.voltage.VoltageBerModel`; such specs
    are only valid in campaigns that sweep voltages.
    """

    kind: str  # "bitflip" | "magfreq" | "clean"
    ber: Optional[float] = None
    bits: Optional[tuple[int, ...]] = None
    mag: Optional[int] = None
    freq: Optional[int] = None
    sign: int = 1

    def __post_init__(self) -> None:
        # Mirror the runtime error models' constraints so a bad spec fails
        # at load time, not per-trial inside the workers.
        if self.kind not in ("bitflip", "magfreq", "clean"):
            raise ValueError(f"unknown error kind {self.kind!r}")
        if self.kind == "magfreq":
            if self.mag is None or self.freq is None:
                raise ValueError("magfreq errors need mag and freq")
            if self.mag < 0 or self.freq < 0:
                raise ValueError("mag and freq must be non-negative")
        if self.kind == "bitflip" and self.ber is not None and not 0 <= self.ber <= 1:
            raise ValueError(f"ber must be in [0, 1], got {self.ber}")
        if self.bits is not None and any(not 0 <= b < 32 for b in self.bits):
            raise ValueError(f"bit positions must be in [0, 32): {self.bits}")
        if self.sign not in (-1, 0, 1):
            raise ValueError("sign must be -1, 0, or +1")
        # Stray cross-kind fields would silently alter the trial key (and the
        # CSV columns) without changing what gets injected.
        if self.kind != "bitflip" and (self.ber is not None or self.bits is not None):
            raise ValueError(f"ber/bits are bitflip-only fields (kind={self.kind!r})")
        if self.kind != "magfreq" and (self.mag is not None or self.freq is not None):
            raise ValueError(f"mag/freq are magfreq-only fields (kind={self.kind!r})")

    @classmethod
    def bitflip(
        cls, ber: Optional[float], bits: Optional[Sequence[int]] = None
    ) -> "ErrorSpec":
        return cls(kind="bitflip", ber=ber, bits=tuple(bits) if bits else None)

    @classmethod
    def magfreq(cls, mag: int, freq: int, sign: int = 1) -> "ErrorSpec":
        return cls(kind="magfreq", mag=mag, freq=freq, sign=sign)

    @classmethod
    def clean(cls) -> "ErrorSpec":
        return cls(kind="clean")

    def build(self, ber: Optional[float] = None) -> Optional[ErrorModel]:
        """Instantiate the runtime error model (``ber`` overrides ``self.ber``)."""
        if self.kind == "clean":
            return None
        if self.kind == "bitflip":
            effective = self.ber if ber is None else ber
            if effective is None:
                raise ValueError("bitflip spec has no BER and no voltage provided one")
            if self.bits:
                return BitFlipModel(effective, bits=self.bits)
            return BitFlipModel(effective)
        return MagFreqModel(mag=int(self.mag), freq=int(self.freq), sign=self.sign)

    @property
    def label(self) -> str:
        if self.kind == "clean":
            return "clean"
        if self.kind == "bitflip":
            ber = "V" if self.ber is None else f"{self.ber:g}"
            bits = f"@b{','.join(str(b) for b in self.bits)}" if self.bits else ""
            return f"bitflip:{ber}{bits}"
        sign = "" if self.sign == 1 else f"@s{self.sign}"
        return f"magfreq:{self.mag}x{self.freq}{sign}"

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.ber is not None:
            out["ber"] = self.ber
        if self.bits is not None:
            out["bits"] = list(self.bits)
        if self.mag is not None:
            out["mag"] = self.mag
        if self.freq is not None:
            out["freq"] = self.freq
        if self.sign != 1:
            out["sign"] = self.sign
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "ErrorSpec":
        bits = payload.get("bits")
        return cls(
            kind=payload["kind"],
            ber=payload.get("ber"),
            bits=tuple(bits) if bits else None,
            mag=payload.get("mag"),
            freq=payload.get("freq"),
            sign=payload.get("sign", 1),
        )


@dataclass(frozen=True)
class Trial:
    """One fully-specified cell-and-seed of the campaign grid.

    ``backend`` is ``None`` for every exact GEMM backend — exact backends
    are bit-interchangeable, so naming one must not change the trial's
    content key (the stored result is valid whichever exact kernel ran).
    A *non-exact* backend changes the measurement, so ``expand()`` stamps
    its name here and it becomes part of the key/cell identity.
    """

    model: str
    task: str
    site: SiteSpec
    error: ErrorSpec
    method: str = NO_METHOD
    voltage: Optional[float] = None
    seed: int = 0
    backend: Optional[str] = None

    def to_dict(self) -> dict:
        out: dict = {
            "model": self.model,
            "task": self.task,
            "site": self.site.to_dict(),
            "error": self.error.to_dict(),
            "method": self.method,
            "seed": self.seed,
        }
        if self.voltage is not None:
            out["voltage"] = self.voltage
        if self.backend is not None:
            out["backend"] = self.backend
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "Trial":
        return cls(
            model=payload["model"],
            task=payload["task"],
            site=SiteSpec.from_dict(payload.get("site", {})),
            error=ErrorSpec.from_dict(payload["error"]),
            method=payload.get("method", NO_METHOD),
            voltage=payload.get("voltage"),
            seed=payload.get("seed", 0),
            backend=payload.get("backend"),
        )

    @property
    def key(self) -> str:
        """Stable content key used by the result store for dedup/resume."""
        digest = hashlib.sha256(_canonical(self.to_dict()).encode("utf-8"))
        return digest.hexdigest()[:16]

    def cell_dict(self) -> dict:
        """The trial's identity minus the seed — the Monte-Carlo cell."""
        payload = self.to_dict()
        payload.pop("seed")
        return payload

    @property
    def cell_id(self) -> str:
        digest = hashlib.sha256(_canonical(self.cell_dict()).encode("utf-8"))
        return digest.hexdigest()[:16]

    @property
    def cell_label(self) -> str:
        parts = [self.model, self.task, self.site.label, self.error.label]
        if self.method != NO_METHOD:
            parts.append(self.method)
        if self.voltage is not None:
            parts.append(f"{self.voltage:.2f}V")
        if self.backend is not None:
            parts.append(self.backend)
        return "/".join(parts)


@dataclass(frozen=True)
class CampaignSpec:
    """A full campaign grid plus its Monte-Carlo policy.

    ``cost`` (a :class:`~repro.dispatch.cost.CostSpec`, or ``"cost": true``
    in JSON) attaches a hardware cost instrument to every trial, storing
    measured systolic cycles, recovered MACs, and energy per cell. It is a
    *measurement* setting, shared by the whole grid and deliberately **not**
    part of any trial's content key — toggling it never invalidates stored
    results, it only determines whether new trials carry cost columns.

    ``backend`` names the GEMM backend every trial runs on (DESIGN.md
    section 11; default: the workers' own resolution, i.e.
    ``$REPRO_GEMM_BACKEND`` or ``numpy-f64``). Like ``cost`` it is a
    measurement setting for *exact* backends — bit-identical results, so
    trial keys are unchanged and stored results stay valid. Naming a
    non-exact backend changes the numbers, so ``expand()`` stamps it into
    every trial's content key.

    ``supervise`` (a :class:`~repro.campaigns.supervise.SuperviseConfig`,
    or a ``"supervise"`` object in JSON) tunes the supervision layer —
    lease deadlines, trial retries, pack requeues (DESIGN.md section 12).
    Like ``cost`` it is an execution setting, never part of trial keys.
    """

    name: str
    models: tuple[str, ...]
    tasks: tuple[str, ...] = ("perplexity",)
    sites: tuple[SiteSpec, ...] = (SiteSpec(),)
    errors: tuple[ErrorSpec, ...] = (ErrorSpec.bitflip(1e-3),)
    methods: tuple[str, ...] = (NO_METHOD,)
    voltages: tuple[Optional[float], ...] = (None,)
    seeds: tuple[int, ...] = (0,)
    stopping: Optional[StoppingPolicy] = None
    cost: Optional[CostSpec] = None
    backend: Optional[str] = None
    supervise: Optional[SuperviseConfig] = None

    def __post_init__(self) -> None:
        # Deferred: the registries live in higher layers (characterization,
        # core) that themselves depend on this leaf module via the sweeps.
        from repro.characterization.evaluator import TASKS
        from repro.core.methods import METHODS
        from repro.dispatch.backends import get_backend
        from repro.training.zoo import ZOO_SPECS

        if self.backend is not None:
            get_backend(self.backend)  # raises KeyError on unknown names

        if not self.name:
            raise ValueError("campaign needs a name")
        for axis in ("models", "tasks", "sites", "errors", "methods", "voltages", "seeds"):
            if not getattr(self, axis):
                raise ValueError(f"campaign axis {axis!r} is empty — nothing to run")
        for model in self.models:
            if model not in ZOO_SPECS:
                raise KeyError(f"unknown zoo model {model!r}; available: {sorted(ZOO_SPECS)}")
        for task in self.tasks:
            if task not in TASKS:
                raise KeyError(f"unknown task {task!r}; available: {sorted(TASKS)}")
        for method in self.methods:
            if method != NO_METHOD and method not in METHODS:
                raise KeyError(
                    f"unknown method {method!r}; available: {sorted(METHODS)} or {NO_METHOD!r}"
                )
        has_voltage = any(v is not None for v in self.voltages)
        if has_voltage:
            # A voltage derives the injected BER, so it only composes with
            # BER-less bit-flip errors — anything else would be silently
            # overridden or mislabeled in reports.
            if any(v is None for v in self.voltages):
                raise ValueError("voltage axis mixes None with real voltages")
            for error in self.errors:
                if error.kind != "bitflip" or error.ber is not None:
                    raise ValueError(
                        "a voltage axis requires all errors to be BER-less "
                        f"bitflip specs (got {error.label})"
                    )
        else:
            for error in self.errors:
                if error.kind == "bitflip" and error.ber is None:
                    raise ValueError(
                        "bitflip spec without a BER requires a voltage axis to derive it"
                    )

    # ----------------------------------------------------------- expansion
    def expand(self) -> list[Trial]:
        """The full trial list, in deterministic grid order (seed innermost).

        Repeated axis values (e.g. a duplicated seed in a hand-written JSON
        spec) are dropped: every returned trial has a unique key.
        """
        # Only a non-exact backend is part of trial identity (see the class
        # docstring); exact backends leave keys untouched by design.
        trial_backend: Optional[str] = None
        if self.backend is not None:
            from repro.dispatch.backends import get_backend

            if not get_backend(self.backend).exact:
                trial_backend = self.backend
        seen: set[str] = set()
        trials: list[Trial] = []
        for model in self.models:
            for task in self.tasks:
                for site in self.sites:
                    for error in self.errors:
                        for method in self.methods:
                            for voltage in self.voltages:
                                for seed in self.seeds:
                                    trial = Trial(
                                        model=model,
                                        task=task,
                                        site=site,
                                        error=error,
                                        method=method,
                                        voltage=voltage,
                                        seed=seed,
                                        backend=trial_backend,
                                    )
                                    if trial.key not in seen:
                                        seen.add(trial.key)
                                        trials.append(trial)
        return trials

    @property
    def n_trials(self) -> int:
        return len(self.expand())

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "models": list(self.models),
            "tasks": list(self.tasks),
            "sites": [s.to_dict() for s in self.sites],
            "errors": [e.to_dict() for e in self.errors],
            "methods": list(self.methods),
            "voltages": list(self.voltages),
            "seeds": list(self.seeds),
        }
        if self.stopping is not None:
            out["stopping"] = self.stopping.to_dict()
        if self.cost is not None:
            out["cost"] = self.cost.to_dict()
        if self.backend is not None:
            out["backend"] = self.backend
        if self.supervise is not None:
            out["supervise"] = self.supervise.to_dict()
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        """Build a spec from JSON data, with grid-building conveniences:

        - ``"seeds": 5`` expands to seeds 0..4;
        - ``"bers": [...]`` (+ optional ``"bits"``) appends bit-flip errors;
        - ``"magfreq": {"mags": [...], "freqs": [...]}`` appends the product
          grid of mag/freq errors;
        - ``"components": [...]`` (+ optional ``"stages"``) appends
          one-component sites.

        Unknown keys are rejected so a typo'd axis name cannot silently
        fall back to a default grid.
        """
        known = {
            "name", "models", "tasks", "sites", "errors", "methods",
            "voltages", "seeds", "stopping", "cost", "backend", "supervise",
            "bers", "bits", "magfreq", "components", "stages",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown campaign spec keys: {sorted(unknown)} (known: {sorted(known)})"
            )
        if "bits" in payload and "bers" not in payload:
            raise ValueError('"bits" is only consumed by the "bers" convenience')
        if "stages" in payload and "components" not in payload:
            raise ValueError('"stages" is only consumed by the "components" convenience')
        errors = [ErrorSpec.from_dict(e) for e in payload.get("errors", [])]
        bits = payload.get("bits")
        for ber in payload.get("bers", []):
            errors.append(ErrorSpec.bitflip(float(ber), bits=bits))
        magfreq = payload.get("magfreq")
        if magfreq:
            for mag in magfreq["mags"]:
                for freq in magfreq["freqs"]:
                    errors.append(
                        ErrorSpec.magfreq(int(mag), int(freq), magfreq.get("sign", 1))
                    )
        sites = [SiteSpec.from_dict(s) for s in payload.get("sites", [])]
        stages = payload.get("stages")
        for component in payload.get("components", []):
            sites.append(SiteSpec.only(components=[component], stages=stages))
        seeds = payload.get("seeds", [0])
        if isinstance(seeds, int):
            seeds = list(range(seeds))
        stopping = payload.get("stopping")
        # Truthiness would silently read "cost": {} (enable with all
        # defaults) as "off"; only an absent key, null, or false disables.
        cost = payload.get("cost")
        cost = None if cost is False else cost
        return cls(
            name=payload["name"],
            models=tuple(payload["models"]),
            tasks=tuple(payload.get("tasks", ["perplexity"])),
            sites=tuple(sites) if sites else (SiteSpec(),),
            errors=tuple(errors) if errors else (ErrorSpec.bitflip(1e-3),),
            methods=tuple(payload.get("methods", [NO_METHOD])),
            voltages=tuple(payload.get("voltages", [None])),
            seeds=tuple(seeds),
            stopping=StoppingPolicy.from_dict(stopping) if stopping else None,
            cost=CostSpec.from_dict(cost) if cost is not None else None,
            backend=payload.get("backend"),
            supervise=(
                SuperviseConfig.from_dict(payload["supervise"])
                if payload.get("supervise") is not None
                else None
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))


def example_spec() -> CampaignSpec:
    """The quickstart campaign: 2 components x 3 BERs x 3 seeds on opt-mini."""
    return CampaignSpec(
        name="example-q13",
        models=("opt-mini",),
        tasks=("perplexity",),
        sites=(
            SiteSpec.only(components=["O"], stages=["prefill"]),
            SiteSpec.only(components=["K"], stages=["prefill"]),
        ),
        errors=tuple(ErrorSpec.bitflip(b, bits=(30,)) for b in (1e-4, 1e-3, 1e-2)),
        seeds=(0, 1, 2),
        stopping=None,
    )
