"""Campaign executors: serial and supervised-pool trial runners.

The single-trial primitive :func:`evaluate_trial` is shared by everything
that scores an injected configuration — the characterization sweeps, the
benchmarks, and both campaign executors — so a trial means exactly the same
measurement everywhere.

The parallel route runs on a :class:`~repro.campaigns.supervise.SupervisedPool`
rather than a raw :class:`multiprocessing.Pool`: every lane pack is a lease
with a deadline, dead or hung workers are respawned and their packs requeued,
trial-level exceptions are retried with backoff, and trials that exhaust
their retry budget are quarantined in the store (DESIGN.md section 12).

The pool executor keys its caches per worker process: each worker loads (or
trains, on a cold cache) every zoo model it touches **once**, builds one
:class:`~repro.characterization.evaluator.ModelEvaluator` per (model, task)
— and one calibrated :class:`~repro.core.realm.ReaLMPipeline` where a
behavioral protection method demands it — and then reuses them for every
subsequent trial. Before the pool starts, the parent quantizes/calibrates
each needed engine once, records the clean traces the replay engine resumes
from, and publishes both into ``multiprocessing.shared_memory``
(:mod:`repro.models.sharing`); the pool initializer attaches them as
read-only zero-copy views, so workers skip quantization, calibration, and
clean re-scoring entirely. The parent process is the only writer of the
result store; results stream back as they finish, so killing a campaign
mid-run loses at most the in-flight trials.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.campaigns import chaos as chaos_mod
from repro.campaigns.chaos import ChaosSpec
from repro.campaigns.lanes import (
    DEFAULT_MAX_LANES,
    LanePacker,
    _count_trial_stats,
    build_injector,
    build_protector,
    evaluate_lane_pack,
    trial_costs as _trial_costs,
)
from repro.campaigns.progress import build_snapshot
from repro.campaigns.spec import NO_METHOD, CampaignSpec, Trial
from repro.campaigns.stopping import STOP
from repro.campaigns.store import ResultStore, TrialResult
from repro.campaigns.supervise import (
    PackDone,
    PackLost,
    SupervisedPool,
    SuperviseConfig,
)
import repro.telemetry as telemetry
from repro.characterization.evaluator import ModelEvaluator
from repro.core.methods import METHODS
from repro.core.realm import ReaLMConfig, ReaLMPipeline
from repro.dispatch.backends import use_backend
from repro.dispatch.cost import CostSpec
from repro.training.zoo import get_pretrained
from repro.utils.logging import get_logger

logger = get_logger("campaigns")


def _needs_pipeline(method: str) -> bool:
    """Methods whose protector requires pipeline calibration state."""
    if method in (NO_METHOD, "classical-abft") or method not in METHODS:
        return False
    return METHODS[method].behavioral


def evaluate_trial(
    trial: Trial,
    evaluator: ModelEvaluator,
    pipeline: Optional[ReaLMPipeline] = None,
    cost: Optional[CostSpec] = None,
    backend: Optional[str] = None,
    attempt: int = 0,
) -> TrialResult:
    """Score one trial on an already-built evaluator.

    ``pipeline`` is only consulted for behavioral protection methods that
    need calibrated critical regions (statistical/approx ABFT). ``cost``
    attaches a :class:`~repro.dispatch.cost.CostInstrument` for the
    duration of the trial, filling the result's ``cycles`` /
    ``recovered_macs`` / ``energy_j`` columns with hardware costs measured
    on the trial's actual GEMM calls (energy at the trial's voltage, or
    nominal when the grid has no voltage axis). ``backend`` selects the
    GEMM backend for the duration (``CampaignSpec.backend``, DESIGN.md
    section 11); an unavailable one degrades to the exact default with a
    WARNING, and the result records what actually ran.

    This is the per-trial reference route the lane-packed executor
    (:mod:`repro.campaigns.lanes`) is asserted bit-identical against.
    ``attempt`` is the supervisor's retry counter (0 on first execution) —
    it only feeds the chaos harness's per-trial fault point, never the
    measurement.
    """
    chaos_mod.maybe_fail_trial(trial.key, attempt)
    start = time.perf_counter()
    injector = build_injector(trial)
    cost_instrument = cost.build() if cost is not None else None
    protector = build_protector(trial, evaluator, pipeline)

    # Non-exact trials pin their backend in trial identity; a campaign-level
    # exact selection rides the payload instead (never part of the key).
    requested = backend if backend is not None else trial.backend
    with use_backend(evaluator.model.executor, requested) as active:
        with telemetry.span("trial.evaluate", cell=trial.cell_label, seed=trial.seed):
            score = evaluator.run(injector, protector, cost=cost_instrument)
        if trial.method not in (NO_METHOD,) and METHODS[trial.method].exact_correction:
            score = evaluator.clean_score  # detected-and-replayed: fault-free output
        clean_score = evaluator.clean_score
    cycles = recovered_macs = 0
    energy_j = 0.0
    if cost_instrument is not None:
        cycles, recovered_macs, energy_j = _trial_costs(
            trial, cost_instrument, injector, evaluator
        )
    elapsed = time.perf_counter() - start
    metrics = telemetry.METRICS
    _count_trial_stats(metrics, injector, protector)
    metrics.histogram("trial.elapsed_s").observe(elapsed)
    return TrialResult(
        score=score,
        degradation=evaluator.degradation(score),
        clean_score=clean_score,
        injected_errors=injector.stats.injected_errors if injector else 0,
        gemm_calls=injector.stats.gemm_calls if injector else 0,
        cycles=cycles,
        recovered_macs=recovered_macs,
        energy_j=energy_j,
        elapsed_s=elapsed,
        worker=os.getpid(),
        backend=active.name,
    )


# --------------------------------------------------------------- worker side
#: Per-process caches — populated lazily inside each pool worker (and by the
#: serial executor in the parent), so a model is loaded/trained once per
#: process rather than once per trial.
_EVALUATORS: dict[tuple[str, str], ModelEvaluator] = {}
_PIPELINES: dict[tuple[str, str], ReaLMPipeline] = {}


def _trial_context(trial: Trial) -> tuple[ModelEvaluator, Optional[ReaLMPipeline]]:
    key = (trial.model, trial.task)
    if _needs_pipeline(trial.method):
        pipeline = _PIPELINES.get(key)
        if pipeline is None:
            cached = _EVALUATORS.get(key)
            bundle = cached.bundle if cached is not None else get_pretrained(trial.model)
            pipeline = ReaLMPipeline(
                bundle, ReaLMConfig(task=trial.task), evaluator=cached
            )
            _PIPELINES[key] = pipeline
            _EVALUATORS[key] = pipeline.evaluator
        return pipeline.evaluator, pipeline
    evaluator = _EVALUATORS.get(key)
    if evaluator is None:
        if key in _PIPELINES:
            evaluator = _PIPELINES[key].evaluator
        else:
            evaluator = ModelEvaluator(get_pretrained(trial.model), trial.task)
        _EVALUATORS[key] = evaluator
    return evaluator, None


def _run_trial_payload(payload: dict) -> dict:
    """Pool entry point: trial dict in, (key, result | error) dict out.

    The optional ``"cost"`` key carries the campaign-level
    :class:`~repro.dispatch.cost.CostSpec`; it is popped before the trial
    is parsed so it never leaks into trial identity or stored records.
    The optional ``"gemm_backend"`` key carries the campaign-level exact
    backend selection (``CampaignSpec.backend``) the same way — a
    measurement setting, never part of the trial key. (A non-exact
    backend instead rides the trial's own ``"backend"`` field, which *is*
    identity.) ``"attempt"`` is the supervisor's retry counter for this
    trial, consumed by the chaos harness; ``"chaos"`` activates a
    :class:`~repro.campaigns.chaos.ChaosSpec` in this process.
    """
    cost_payload = payload.pop("cost", None)
    cost = CostSpec.from_dict(cost_payload) if cost_payload is not None else None
    backend = payload.pop("gemm_backend", None)
    chaos_payload = payload.pop("chaos", None)
    if chaos_payload is not None:
        chaos_mod.install(ChaosSpec.from_dict(chaos_payload))
    attempt = payload.pop("attempt", 0)
    trial = Trial.from_dict(payload)
    try:
        evaluator, pipeline = _trial_context(trial)
        result = evaluate_trial(
            trial, evaluator, pipeline, cost=cost, backend=backend,
            attempt=attempt,
        )
        return {"key": trial.key, "trial": payload, "result": result.to_dict()}
    except Exception as exc:  # surfaced to the parent, which keeps going
        return {
            "key": trial.key,
            "trial": payload,
            "error": repr(exc),
            "worker": os.getpid(),
        }


def _ship_telemetry(outcomes: list[dict]) -> list[dict]:
    """Piggyback this worker's telemetry on the pack's last outcome dict.

    Metric snapshots are cumulative per process (the parent keeps the latest
    per pid and merges); spans are drained, so each pack ships only what it
    added. Riding the existing result payloads means no side channel — the
    serial runner, the pool, and any future transport all work unchanged.
    """
    if not outcomes:
        return outcomes
    snapshot = telemetry.runtime_snapshot()
    snapshot["pid"] = os.getpid()
    outcomes[-1]["metrics"] = snapshot
    if telemetry.enabled():
        outcomes[-1]["spans"] = telemetry.tracer().drain()
    return outcomes


def _run_pack_payload(payload: dict) -> list[dict]:
    """Pool entry point for a lane pack: trial dicts in, outcome dicts out.

    Single-lane packs route straight through the per-trial reference path.
    A multi-lane pack that fails for any reason degrades to per-trial
    execution instead of failing all its lanes at once — the lane
    vectorization is a pure throughput optimization, never a correctness
    dependency. Degraded outcomes carry ``"degraded": True`` and bump the
    ``lanes.pack_degradations`` counter so a campaign that quietly lost its
    vectorization shows up in ``campaign watch`` / ``status --metrics``.
    """
    trial_payloads = payload["trials"]
    cost_payload = payload.get("cost")
    backend = payload.get("gemm_backend")
    chaos_payload = payload.get("chaos")
    if chaos_payload is not None:
        chaos_mod.install(ChaosSpec.from_dict(chaos_payload))
    pack_attempt = payload.get("pack_attempt", 0)
    attempts = [p.get("attempt", 0) for p in trial_payloads]
    # ``attempt`` is supervision metadata, never trial identity — strip it
    # before anything parses or re-emits the trial dicts.
    clean_payloads = [
        {k: v for k, v in p.items() if k != "attempt"} for p in trial_payloads
    ]
    trials = [Trial.from_dict(p) for p in clean_payloads]
    # Pack-level chaos fault points: these model *worker* failures (hard
    # death, a wedged process), so they fire before any trial work — the
    # supervisor must recover the whole lease.
    chaos_mod.maybe_kill_worker(trials[0].key, pack_attempt)
    chaos_mod.maybe_hang(trials[0].key, pack_attempt)

    def solo(trial_payload: dict) -> dict:
        single = dict(trial_payload)
        if cost_payload is not None:
            single["cost"] = cost_payload
        if backend is not None:
            single["gemm_backend"] = backend
        return _run_trial_payload(single)

    if len(trial_payloads) == 1:
        return _ship_telemetry([solo(trial_payloads[0])])
    cost = CostSpec.from_dict(cost_payload) if cost_payload is not None else None
    try:
        evaluator, pipeline = _trial_context(trials[0])
        results = evaluate_lane_pack(
            trials, evaluator, pipeline, cost=cost, backend=backend,
            attempts=attempts,
        )
        return _ship_telemetry(
            [
                {"key": trial.key, "trial": trial_payload, "result": result.to_dict()}
                for trial, trial_payload, result in zip(
                    trials, clean_payloads, results
                )
            ]
        )
    except Exception as exc:
        telemetry.METRICS.counter("lanes.pack_degradations").inc()
        logger.warning(
            "lane pack of %d trials (%s) degraded to per-trial execution",
            len(trials),
            trials[0].cell_label,
            exc_info=exc,
        )
        outcomes = [solo(p) for p in trial_payloads]
        for outcome in outcomes:
            outcome["degraded"] = True
        return _ship_telemetry(outcomes)


# --------------------------------------------------------------- parent side
@dataclass
class RunReport:
    """What one ``run_campaign`` invocation actually did."""

    total: int = 0
    cached: int = 0
    executed: int = 0
    skipped: int = 0  # pending seeds dropped by early stopping
    failed: int = 0  # infrastructure gave up (pack lost after max_requeues)
    retried: int = 0  # trial-level retries granted (each may still succeed)
    quarantined: int = 0  # trials that failed max_retries + 1 attempts
    poison_skipped: int = 0  # trials skipped because already quarantined
    stopped_cells: int = 0
    elapsed_s: float = 0.0
    errors: list[str] = field(default_factory=list)

    def summary(self) -> str:
        extras = ""
        if self.retried or self.quarantined or self.poison_skipped:
            extras = (
                f", {self.retried} retried, {self.quarantined} quarantined"
                f" (+{self.poison_skipped} already quarantined)"
            )
        return (
            f"{self.total} trials: {self.cached} cached, {self.executed} executed, "
            f"{self.skipped} skipped by early stopping ({self.stopped_cells} cells), "
            f"{self.failed} failed{extras} [{self.elapsed_s:.1f}s]"
        )


@dataclass
class _Cell:
    label: str
    total: int = 0  # trials the spec allots this cell, done or not
    values: list[float] = field(default_factory=list)
    pending: list[Trial] = field(default_factory=list)


class _SerialRunner:
    """Runs lane packs in-process, sharing the worker caches.

    Speaks the same submit/``next_event`` protocol as :class:`_PoolRunner`
    so the parent's drain loop (retries, quarantine, progress writes) is
    identical for both. Each ``next_event`` call executes exactly one pack
    and returns its :class:`PackDone`, so the parent persists outcomes as
    they complete — materializing the wave first would mean a crash loses
    every already-computed result. Leases are a no-op here: the runner
    cannot outlive or kill itself, so deadlines are ignored and only the
    retry-backoff eligibility time is honored.
    """

    def __init__(self) -> None:
        self._next_job_id = 0
        self._queue: list[tuple[float, int, dict]] = []  # (eligible_at, id, payload)

    @property
    def outstanding(self) -> int:
        return len(self._queue)

    def submit(self, payload: dict, deadline_s: float, delay_s: float = 0.0) -> int:
        job_id = self._next_job_id
        self._next_job_id += 1
        self._queue.append((time.monotonic() + delay_s, job_id, payload))
        return job_id

    def next_event(self) -> Optional[PackDone]:
        if not self._queue:
            return None
        self._queue.sort(key=lambda item: item[0])
        eligible_at, job_id, payload = self._queue.pop(0)
        delay = eligible_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        return PackDone(
            job_id=job_id, payload=payload, outcomes=_run_pack_payload(payload)
        )

    def close(self, force: bool = False) -> None:
        pass


def _worker_init(manifests: Sequence[dict], chaos_payload: Optional[dict] = None) -> None:
    """Pool initializer: attach parent-published engines + traces zero-copy.

    Chaos is installed first so the attach itself is a fault site
    (:func:`repro.campaigns.chaos.maybe_fail_shm_attach`) — an injected
    attach failure exercises the same degrade-and-rebuild path a real
    ``/dev/shm`` problem would.
    """
    from repro.models.sharing import attach_bundle

    if chaos_payload is not None:
        chaos_mod.install(ChaosSpec.from_dict(chaos_payload))
    for manifest in manifests:
        try:
            attach_bundle(manifest)
        except Exception as exc:  # worker falls back to building its own
            logger.warning("shared-memory attach failed (%r); rebuilding", exc)


def _build_shared_packs(needed: dict[str, set[str]]):
    """Publish one (engine + clean traces) pack per still-needed model.

    The parent pays one quantization + calibration + clean scoring pass per
    (model, task) — work every worker would otherwise repeat — and ships
    the result as shared memory. Returns ``None`` (and the campaign runs
    exactly as before) when shared memory is unavailable.
    """
    try:
        from repro.characterization.evaluator import (
            _bundle_fingerprint,
            quantized_model_for,
        )
        from repro.models.replay import TRACES
        from repro.models.sharing import publish_bundle
    except ImportError:  # pragma: no cover - no shared_memory on platform
        return None
    packs = []
    try:
        for model in sorted(needed):
            bundle = get_pretrained(model)
            recorded = False
            for task in sorted(needed[model]):
                evaluator = ModelEvaluator(bundle, task)
                if evaluator.replay:
                    evaluator.clean_score  # records this cell's clean traces
                    recorded = True
            fingerprint = _bundle_fingerprint(bundle)
            traces = (
                {k: t for k, t in TRACES.items() if k.startswith(fingerprint)}
                if recorded
                else None
            )
            packs.append(
                publish_bundle(fingerprint, quantized_model_for(bundle), traces)
            )
    except Exception as exc:
        logger.warning("shared-memory publish failed (%r); workers rebuild", exc)
        for pack in packs:
            pack.close()
        return None
    return packs


class _PoolRunner:
    """Runs lane packs on a :class:`SupervisedPool`, streaming events back.

    Replaces the raw ``multiprocessing.Pool`` of PRs 1-6: every pack is a
    lease with a deadline, worker SIGKILLs and hangs are detected and the
    pack requeued on a healthy worker (DESIGN.md section 12). The wrapper
    only adds shared-memory pack lifecycle on top of the generic pool.
    """

    def __init__(
        self,
        workers: int,
        shared_packs=None,
        config: Optional[SuperviseConfig] = None,
        chaos: Optional[ChaosSpec] = None,
    ) -> None:
        self.workers = workers
        self.shared_packs = shared_packs or []
        manifests = [pack.manifest for pack in self.shared_packs]
        self.pool = SupervisedPool(
            workers,
            _run_pack_payload,
            initializer=_worker_init,
            initargs=(manifests, chaos.to_dict() if chaos is not None else None),
            config=config,
        )

    @property
    def outstanding(self) -> int:
        return self.pool.outstanding

    def submit(self, payload: dict, deadline_s: float, delay_s: float = 0.0) -> int:
        return self.pool.submit(payload, deadline_s, delay_s=delay_s)

    def next_event(self):
        return self.pool.next_event()

    def close(self, force: bool = False) -> None:
        try:
            self.pool.close(force=force)
        finally:
            for pack in self.shared_packs:
                pack.close()


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    workers: int = 0,
    on_result=None,
    lane_width: int = DEFAULT_MAX_LANES,
    supervise: Optional[SuperviseConfig] = None,
    chaos: Optional[ChaosSpec] = None,
    runner=None,
) -> RunReport:
    """Execute every not-yet-stored trial of ``spec``, writing into ``store``.

    ``workers <= 1`` runs serially in-process; otherwise a supervised pool
    of ``workers`` processes is used (DESIGN.md section 12) — worker
    SIGKILLs, hangs past the lease deadline, and crashes are recovered by
    requeueing the lost pack on a healthy worker. Either way the parent
    writes each result to the store the moment it arrives, so a killed run
    resumes cleanly. ``on_result`` (if given) is called with each new
    ``StoredRecord``-shaped payload dict, for progress display.

    ``lane_width`` caps how many trials pack into one batched forward
    (DESIGN.md section 9); results are bit-identical at any width, so the
    knob only trades activation memory against per-dispatch overhead.
    ``lane_width=1`` restores strictly per-trial execution.

    ``supervise`` overrides the spec's :class:`SuperviseConfig` (both a
    measurement setting, never trial identity). A trial whose own execution
    raises is retried with exponential backoff up to ``max_retries`` times;
    one that fails every attempt is **quarantined**: persisted in the
    store's quarantine log and skipped by every later run, so one poison
    trial can never wedge a campaign in a crash loop. ``chaos`` injects
    deterministic faults (:mod:`repro.campaigns.chaos`); when ``None``,
    ``$REPRO_CHAOS`` is honored.

    ``runner`` overrides the execution backend with any object speaking the
    submit/``next_event``/``outstanding``/``close`` protocol — this is how
    the distributed fabric (:class:`repro.fabric.FabricRunner`) reuses this
    exact drain loop across a worker fleet. The campaign consumes the
    runner: it is closed before returning. A runner may optionally expose
    ``fleet_snapshot()`` (merged into progress snapshots) and
    ``note_quarantine(trial, info)`` (called after each quarantine so
    remote workers can be notified).
    """
    start = time.perf_counter()
    policy = spec.stopping
    cfg = supervise or spec.supervise or SuperviseConfig()
    installed_chaos = False
    if chaos is None:
        chaos = chaos_mod.active()
    elif chaos is not chaos_mod.active():
        chaos_mod.install(chaos)  # parent-side faults: torn store writes
        installed_chaos = True
    report = RunReport()

    quarantined_keys = store.quarantined_keys()
    cells: dict[str, _Cell] = {}
    order: list[str] = []
    for trial in spec.expand():
        report.total += 1
        cell = cells.get(trial.cell_id)
        if cell is None:
            cell = cells[trial.cell_id] = _Cell(label=trial.cell_label)
            order.append(trial.cell_id)
        cell.total += 1
        record = store.get(trial.key)
        if record is not None:
            report.cached += 1
            cell.values.append(record.result.degradation)
        elif trial.key in quarantined_keys:
            report.poison_skipped += 1
        else:
            cell.pending.append(trial)
    if report.poison_skipped:
        logger.warning(
            "skipping %d quarantined trial(s); `campaign quarantine list` "
            "shows them, `campaign quarantine clear` re-enables them",
            report.poison_skipped,
        )

    # Cells already satisfied by stored results (resume after a stop/kill).
    active: list[_Cell] = []
    for cell_id in order:
        cell = cells[cell_id]
        if not cell.pending:
            continue
        if policy is not None and cell.values and policy.decide(cell.values) == STOP:
            report.skipped += len(cell.pending)
            report.stopped_cells += 1
            cell.pending.clear()
            continue
        active.append(cell)

    # Live progress: the parent (sole store writer) snapshots campaign-wide
    # state into the store's ``progress`` table for ``campaign watch`` /
    # ``status --metrics`` readers in other processes. Worker metric
    # snapshots are cumulative per pid; the parent keeps the latest one per
    # worker and merges with its own registry at write time (its own pid is
    # skipped from the shipped set so the serial runner is not counted
    # twice).
    worker_metrics: dict[int, dict] = {}
    last_progress_write = 0.0
    last_result_at: Optional[float] = None

    def _write_progress(state: str) -> None:
        nonlocal last_progress_write
        now = time.perf_counter()
        shipped = [
            snap for pid, snap in worker_metrics.items() if pid != os.getpid()
        ]
        merged = telemetry.merge_snapshots(shipped + [telemetry.runtime_snapshot()])
        fleet_fn = getattr(runner, "fleet_snapshot", None)
        snapshot = build_snapshot(
            fleet=fleet_fn() if fleet_fn is not None else None,
            name=spec.name,
            state=state,
            totals={
                "total": report.total,
                "cached": report.cached,
                "executed": report.executed,
                "failed": report.failed,
                "skipped": report.skipped,
                "retried": report.retried,
                "quarantined": report.quarantined,
                "poison_skipped": report.poison_skipped,
            },
            elapsed_s=now - start,
            cells=[
                {
                    "cell": cell_id,
                    "label": cells[cell_id].label,
                    "done": len(cells[cell_id].values),
                    "total": cells[cell_id].total,
                    "values": cells[cell_id].values,
                }
                for cell_id in order
            ],
            metrics=merged,
            last_result_age_s=None if last_result_at is None else now - last_result_at,
        )
        store.write_progress(snapshot)
        last_progress_write = now

    if active:
        # Train/load each still-needed model once in the parent, not N times
        # concurrently in the workers. (An external fabric runner needs this
        # too: the packer and the degrade-to-local pool both read configs.)
        needed: dict[str, set[str]] = {}
        for cell in active:
            for trial in cell.pending:
                needed.setdefault(trial.model, set()).add(trial.task)
        for model in sorted(needed):
            get_pretrained(model)
    if active and runner is None:
        if workers > 1:
            # Quantize/calibrate once, record clean traces, publish both as
            # shared memory so workers attach zero-copy instead of
            # re-materializing per process.
            shared_packs = _build_shared_packs(needed)
            try:
                runner = _PoolRunner(workers, shared_packs, config=cfg, chaos=chaos)
            except Exception:
                # Pool creation failed after the segments were published;
                # unlink them now or they outlive the process in /dev/shm.
                for pack in shared_packs or []:
                    pack.close()
                raise
        else:
            runner = _SerialRunner()
    packer = LanePacker(max_lanes=max(1, lane_width)) if runner is not None else None
    _write_progress("running")

    # Trial-level retry bookkeeping: retries granted so far and the error
    # history per trial key. The taxonomy label is decided at quarantine
    # time — the same exception repr twice in a row reads as deterministic,
    # anything else as transient.
    retries_granted: dict[str, int] = {}
    error_history: dict[str, list[str]] = {}

    def _submit_pack(trial_dicts: list[dict], delay_s: float = 0.0) -> None:
        payload = {"trials": trial_dicts}
        if spec.cost is not None:
            payload["cost"] = spec.cost.to_dict()
        if spec.backend is not None:
            payload["gemm_backend"] = spec.backend
        if chaos is not None:
            payload["chaos"] = chaos.to_dict()
        runner.submit(
            payload,
            deadline_s=cfg.trial_timeout * len(trial_dicts),
            delay_s=delay_s,
        )

    def _handle_error(outcome: dict, trial: Trial) -> None:
        """Retry a failed trial with backoff, or quarantine it for good."""
        key = outcome["key"]
        history = error_history.setdefault(key, [])
        history.append(outcome["error"])
        granted = retries_granted.get(key, 0)
        if granted < cfg.max_retries:
            retries_granted[key] = granted + 1
            report.retried += 1
            telemetry.METRICS.counter("campaign.trial_retries").inc()
            delay = cfg.backoff(granted + 1, key)
            retry_dict = dict(outcome["trial"])
            retry_dict["attempt"] = granted + 1
            logger.warning(
                "retrying trial %s#s%d (attempt %d/%d, backoff %.2fs): %s",
                trial.cell_label, trial.seed, granted + 2,
                cfg.max_retries + 1, delay, outcome["error"],
            )
            _submit_pack([retry_dict], delay_s=delay)
            return
        kind = (
            "deterministic"
            if len(history) >= 2 and history[-1] == history[-2]
            else "transient"
        )
        store.quarantine(
            trial,
            {
                "error": outcome["error"],
                "kind": kind,
                "attempts": granted + 1,
                "errors": list(history),
                "worker": outcome.get("worker"),
            },
        )
        report.quarantined += 1
        notify = getattr(runner, "note_quarantine", None)
        if notify is not None:
            notify(trial, {"error": outcome["error"], "kind": kind, "attempts": granted + 1})
        telemetry.METRICS.counter("campaign.trials_quarantined").inc()
        report.errors.append(
            f"{trial.cell_label}#s{trial.seed}: quarantined ({kind}) after "
            f"{granted + 1} attempts: {outcome['error']}"
        )
        logger.warning("trial quarantined: %s", report.errors[-1])

    try:
        wave_index = 0
        while active:
            wave: list[Trial] = []
            owner: dict[str, _Cell] = {}
            for cell in active:
                if policy is None:
                    take = len(cell.pending)
                else:
                    take = max(policy.min_seeds - len(cell.values), 1)
                for trial in cell.pending[:take]:
                    wave.append(trial)
                    owner[trial.key] = cell
                del cell.pending[:take]
            packs = packer.pack(wave)
            wave_index += 1
            logger.info(
                "wave %d: %d trials in %d lane packs across %d cells (%s)",
                wave_index, len(wave), len(packs), len(active),
                f"{workers} workers" if workers > 1 else "serial",
            )
            for pack in packs:
                _submit_pack([trial.to_dict() for trial in pack])
            # Drain until every lease of this wave (including trial retries
            # submitted along the way) is done, lost, or quarantined.
            while runner.outstanding:
                event = runner.next_event()
                if time.perf_counter() - last_progress_write >= 0.5:
                    _write_progress("running")
                if event is None:
                    continue  # heartbeat tick: nothing finished this poll
                if isinstance(event, PackLost):
                    # Requeue budget exhausted — a host problem, not a
                    # poison trial, so the trials fail without quarantine.
                    for trial_dict in event.payload["trials"]:
                        clean = {
                            k: v for k, v in trial_dict.items() if k != "attempt"
                        }
                        trial = Trial.from_dict(clean)
                        report.failed += 1
                        telemetry.METRICS.counter("campaign.trials_failed").inc()
                        report.errors.append(
                            f"{trial.cell_label}#s{trial.seed}: pack lost after "
                            f"{event.requeues} requeues ({event.reason})"
                        )
                        logger.warning("trial failed: %s", report.errors[-1])
                    continue
                for outcome in event.outcomes:
                    snapshot = outcome.pop("metrics", None)
                    if snapshot is not None:
                        worker_metrics[snapshot.get("pid", -1)] = snapshot
                    spans = outcome.pop("spans", None)
                    if spans and telemetry.enabled():
                        telemetry.tracer().ingest(spans)
                    trial = Trial.from_dict(outcome["trial"])
                    cell = owner[outcome["key"]]
                    if "error" in outcome:
                        _handle_error(outcome, trial)
                        continue
                    result = TrialResult.from_dict(outcome["result"])
                    store.add(trial, result)
                    report.executed += 1
                    telemetry.METRICS.counter("campaign.trials_executed").inc()
                    cell.values.append(result.degradation)
                    last_result_at = time.perf_counter()
                    if on_result is not None:
                        on_result(outcome)

            still_active: list[_Cell] = []
            for cell in active:
                if not cell.pending:
                    continue
                if policy is not None and policy.decide(cell.values) == STOP:
                    report.skipped += len(cell.pending)
                    report.stopped_cells += 1
                    cell.pending.clear()
                    continue
                still_active.append(cell)
            active = still_active
    except BaseException:
        # Leave an honest progress snapshot behind, then tear the pool down
        # hard — force-close never hangs and always unlinks the shm packs.
        if runner is not None:
            runner.close(force=True)
            runner = None
        try:
            report.elapsed_s = time.perf_counter() - start
            _write_progress("failed")
        except Exception:  # the store itself may be the thing that broke
            logger.exception("could not write final 'failed' progress snapshot")
        raise
    finally:
        if runner is not None:
            runner.close()
        if installed_chaos:
            chaos_mod.install(None)

    report.elapsed_s = time.perf_counter() - start
    _write_progress("finished")
    logger.info("campaign %s: %s", spec.name, report.summary())
    return report
