"""Lane-vectorized trial execution: pack campaign cells into batched forwards.

Campaign wall-clock is dominated by injected forwards, yet every trial of a
cell shares the same (model, task, prompts) and differs only in (site,
error model, seed, method). The batched engine is bit-exact under a batch
axis with per-2-D-slice injection and recovery (DESIGN.md section 4), and
the replay engine resumes per-trial from ``SiteFilter.earliest_layer``
(DESIGN.md section 7) — so K pending trials can run as K *batch lanes* of a
single replayed forward, the DAVOS-style trick of amortizing simulator
setup across fault targets:

- :class:`LanePacker` groups pending trials by (model, task, method,
  replay-resume layers) and chunks each group into packs of at most
  ``max_lanes`` lanes;
- :func:`evaluate_lane_pack` builds one injector / protector / cost
  instrument per lane, wraps them in the lane-aware dispatch adapters
  (:class:`~repro.errors.injector.LaneInjector`,
  :class:`~repro.abft.protectors.LaneProtector`,
  :class:`~repro.dispatch.cost.LaneCostInstrument`), and scores the whole
  pack through one ``ModelEvaluator.run(..., lanes=K)`` call.

The contract (asserted exactly in ``tests/test_lanes.py``): every lane's
score, injector RNG stream, protector statistics, and cost columns are
**bit-identical** to running that trial alone through the per-trial
dispatch route. See DESIGN.md section 9 for the packing rules and the
per-lane RNG discipline.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import Callable, Optional, Sequence

from repro.abft.protectors import ClassicalABFT, LaneProtector, Protector
from repro.campaigns.spec import NO_METHOD, Trial
from repro.campaigns.store import TrialResult
from repro.characterization.evaluator import ModelEvaluator
from repro.circuits.voltage import VoltageBerModel
from repro.core.methods import METHODS, analytic_recovered_macs
from repro.dispatch.backends import use_backend
from repro.dispatch.cost import CostInstrument, CostSpec, LaneCostInstrument
from repro.energy.model import EnergyModel
from repro.errors.injector import ErrorInjector, LaneInjector
from repro.errors.sites import Component, Stage
import repro.telemetry as telemetry

_VOLTAGE_MODEL = VoltageBerModel()


def _count_trial_stats(metrics, injector, protector) -> None:
    """Fold one finished trial's injector/protector tallies into ``metrics``.

    Shared by the solo route (``executor.evaluate_trial``) and the per-lane
    accounting here so ``campaign watch`` reads the same counters either way.
    """
    if injector is not None:
        metrics.counter("injector.corruptions").inc(injector.stats.injected_errors)
    if protector is not None:
        stats = protector.stats
        metrics.counter("protector.inspected").inc(stats.inspected)
        metrics.counter("protector.detected").inc(stats.detected)
        metrics.counter("protector.recovered").inc(stats.recovered)

#: Default pack width: enough lanes to amortize per-dispatch overhead
#: without blowing up activation memory (a pack's working set scales
#: linearly with the lane count).
DEFAULT_MAX_LANES = 8


# ---------------------------------------------------------------- per-trial
def build_injector(trial: Trial) -> Optional[ErrorInjector]:
    """The trial's error injector (``None`` for clean error specs)."""
    ber = _VOLTAGE_MODEL.ber(trial.voltage) if trial.voltage is not None else None
    error_model = trial.error.build(ber=ber)
    if error_model is None:
        return None
    return ErrorInjector(error_model, trial.site.to_filter(), seed=trial.seed)


def build_protector(
    trial: Trial,
    evaluator: ModelEvaluator,
    pipeline=None,
) -> Optional[Protector]:
    """Fresh protector instance for the trial's method (``None`` when the
    method runs unprotected or recovers analytically). ``pipeline`` (a
    calibrated :class:`~repro.core.realm.ReaLMPipeline`) is only consulted
    for behavioral methods that need fitted critical regions."""
    method = trial.method
    if method in (NO_METHOD, "no-protection"):
        return None
    spec = METHODS[method]
    if method == "classical-abft":
        return ClassicalABFT()
    if spec.behavioral:
        if pipeline is None:
            raise ValueError(f"method {method!r} needs a calibrated pipeline")
        components = (
            tuple(Component(c) for c in trial.site.components)
            if trial.site.components is not None
            else tuple(evaluator.bundle.config.components)
        )
        pipeline.calibrate(components)
        return pipeline.protector_for(method, components)
    return None


def trial_costs(
    trial: Trial,
    cost_instrument: CostInstrument,
    injector: Optional[ErrorInjector],
    evaluator: ModelEvaluator,
) -> tuple[int, int, float]:
    """Hardware costs of one scored trial: (cycles, recovered_macs, energy_j).

    Cycles and MAC counts come straight from the cost instrument's measured
    report. Energy accounting is method-aware, mirroring
    ``ReaLMPipeline.evaluate_method_at``: a registered method contributes
    its detection-power overhead and compute factor (2.0 for DMR), and the
    non-behavioral methods — which recover analytically rather than through
    a protector the instrument can observe — charge their replay MACs from
    the injector statistics. Energy is evaluated at the trial's voltage
    (nominal when the grid has no voltage axis).
    """
    report = cost_instrument.report
    recovered_macs = report.recovered_macs
    params = cost_instrument.params
    method = trial.method
    if method in METHODS:
        spec = METHODS[method]
        params = replace(
            params,
            detection_overhead=spec.detection_overhead,
            compute_factor=spec.compute_factor,
        )
        if not spec.behavioral and injector is not None:
            recovered_macs = analytic_recovered_macs(
                method, injector.stats.injected_errors, evaluator.bundle.config.d_model
            )
    voltage = params.v_nominal if trial.voltage is None else trial.voltage
    energy_j = EnergyModel(params).breakdown(report.macs, recovered_macs, voltage).total_j
    return report.total_cycles, recovered_macs, energy_j


# ------------------------------------------------------------------ packing
def pack_signature(trial: Trial, config) -> tuple:
    """Grouping key of the lane packer (DESIGN.md section 9).

    Trials pack together when they share the evaluator (model, task), the
    protection method (the pack carries one protector kind), and the
    replay-resume layers their filters allow per stage — so every lane of a
    pack resumes the same forwards from the same boundary and no lane pays
    for another's earlier resume point.
    """
    site_filter = trial.site.to_filter()
    resume = tuple(
        site_filter.earliest_layer(
            config.n_layers, components=config.components, stage=stage
        )
        for stage in (Stage.PREFILL, Stage.DECODE)
    )
    # trial.backend is None for exact backends; a non-exact backend pins the
    # whole pack's kernel, so trials carrying different ones never co-pack.
    return (trial.model, trial.task, trial.method, trial.backend, resume)


class LanePacker:
    """Groups pending trials into lane packs of at most ``max_lanes``.

    ``config_for`` maps a zoo model name to its ``ModelConfig`` (the resume
    signature needs layer/component counts); the default loads — and, in
    the campaign parent, merely re-reads the already-warmed — pretrained
    bundle.
    """

    def __init__(
        self,
        max_lanes: int = DEFAULT_MAX_LANES,
        config_for: Optional[Callable[[str], object]] = None,
    ) -> None:
        if max_lanes < 1:
            raise ValueError("max_lanes must be >= 1")
        self.max_lanes = max_lanes
        if config_for is None:
            from repro.training.zoo import get_pretrained

            config_for = lambda model: get_pretrained(model).config  # noqa: E731
        self.config_for = config_for

    def pack(self, trials: Sequence[Trial]) -> list[list[Trial]]:
        """Partition ``trials`` into packs, preserving first-seen order."""
        groups: dict[tuple, list[Trial]] = {}
        order: list[tuple] = []
        for trial in trials:
            key = pack_signature(trial, self.config_for(trial.model))
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(trial)
        packs: list[list[Trial]] = []
        for key in order:
            group = groups[key]
            for i in range(0, len(group), self.max_lanes):
                packs.append(group[i : i + self.max_lanes])
        return packs


# --------------------------------------------------------------- evaluation
def prepare_lanes(
    trials: Sequence[Trial],
    evaluator: ModelEvaluator,
    pipeline=None,
    cost: Optional[CostSpec] = None,
):
    """Per-lane instruments plus their pack-level wrappers.

    Returns ``(injectors, protectors, costs, packed)`` where ``packed`` is
    the ``(injector, protector, cost)`` triple to attach for the packed
    run. Split out from :func:`evaluate_lane_pack` so tests can assert the
    per-lane statistics directly against solo runs.
    """
    if not trials:
        raise ValueError("a lane pack needs at least one trial")
    if len({(t.model, t.task, t.method, t.backend) for t in trials}) > 1:
        raise ValueError(
            "a lane pack must share one (model, task, method, backend)"
        )
    injectors = [build_injector(t) for t in trials]
    protectors = [build_protector(t, evaluator, pipeline) for t in trials]
    costs = [cost.build() if cost is not None else None for _ in trials]
    pack_injector = LaneInjector(injectors)
    pack_protector = (
        LaneProtector(protectors) if protectors[0] is not None else None
    )
    pack_cost = LaneCostInstrument(costs) if cost is not None else None
    return injectors, protectors, costs, (pack_injector, pack_protector, pack_cost)


def evaluate_lane_pack(
    trials: Sequence[Trial],
    evaluator: ModelEvaluator,
    pipeline=None,
    cost: Optional[CostSpec] = None,
    backend: Optional[str] = None,
    attempts: Optional[Sequence[int]] = None,
) -> list[TrialResult]:
    """Score a pack of trials as lanes of one batched forward.

    Every returned :class:`TrialResult`'s score, degradation, injector
    statistics, and cost columns are bit-identical to
    ``repro.campaigns.executor.evaluate_trial`` on the same trial;
    ``elapsed_s`` attributes the pack's wall clock evenly across lanes
    (telemetry, not part of the bit-exactness contract). ``backend``
    selects the GEMM backend for the whole pack (uniform by the packing
    rules above); when ``None`` the pack honors the trials' own pinned
    backend, falling back to the executor's current one.

    ``attempts`` carries the supervisor's per-trial retry counters into
    the chaos harness's per-trial fault point — a lane whose trial is
    chaos-marked raises here, which degrades the whole pack to per-trial
    execution, exactly the path a real mid-pack failure takes.
    """
    from repro.campaigns import chaos

    for j, trial in enumerate(trials):
        chaos.maybe_fail_trial(
            trial.key, attempts[j] if attempts is not None else 0
        )
    start = time.perf_counter()
    injectors, protectors, costs, packed = prepare_lanes(
        trials, evaluator, pipeline, cost
    )
    pack_injector, pack_protector, pack_cost = packed
    requested = backend if backend is not None else trials[0].backend
    with use_backend(evaluator.model.executor, requested) as active:
        with telemetry.span(
            "pack.evaluate", lanes=len(trials), cell=trials[0].cell_label
        ):
            scores = evaluator.run(
                pack_injector, pack_protector, cost=pack_cost, lanes=len(trials)
            )
    elapsed = (time.perf_counter() - start) / len(trials)
    metrics = telemetry.METRICS
    metrics.counter("lanes.packs").inc()
    metrics.counter("lanes.packed_trials").inc(len(trials))
    metrics.histogram("trial.elapsed_s").observe(elapsed * len(trials))
    for injector, protector in zip(injectors, protectors):
        _count_trial_stats(metrics, injector, protector)
    results = []
    for j, trial in enumerate(trials):
        score = float(scores[j]) if len(trials) > 1 else float(scores)
        if trial.method not in (NO_METHOD,) and METHODS[trial.method].exact_correction:
            score = evaluator.clean_score  # detected-and-replayed: fault-free
        injector = injectors[j]
        cycles = recovered_macs = 0
        energy_j = 0.0
        if costs[j] is not None:
            cycles, recovered_macs, energy_j = trial_costs(
                trial, costs[j], injector, evaluator
            )
        results.append(
            TrialResult(
                score=score,
                degradation=evaluator.degradation(score),
                clean_score=evaluator.clean_score,
                injected_errors=injector.stats.injected_errors if injector else 0,
                gemm_calls=injector.stats.gemm_calls if injector else 0,
                cycles=cycles,
                recovered_macs=recovered_macs,
                energy_j=energy_j,
                elapsed_s=elapsed,
                worker=os.getpid(),
                backend=active.name,
            )
        )
    return results
