"""Per-cell Monte-Carlo early stopping on the degradation metric.

Each campaign *cell* (a trial identity minus its seed) is a Monte-Carlo
estimate of the mean degradation under random error injection. The executor
feeds every completed seed's degradation to :meth:`StoppingPolicy.decide`;
once the normal-approximation confidence interval of the mean is tighter
than the tolerance, the cell stops and its remaining seeds are skipped.
Noisy cells therefore receive more seeds than stable ones, which is where
most of a large campaign's wall-clock goes otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Sequence

#: Decisions returned by :meth:`StoppingPolicy.decide`.
CONTINUE = "continue"
STOP = "stop"


@dataclass(frozen=True)
class StoppingPolicy:
    """When to stop adding seeds to a campaign cell.

    A cell stops as soon as it has at least ``min_seeds`` results and the
    two-sided ``confidence`` CI half-width of the mean degradation is within
    ``max(abs_tol, rel_tol * |mean|)``, or unconditionally once ``max_seeds``
    results are in. ``max_seeds=None`` defers the cap to the campaign's own
    seed list.
    """

    min_seeds: int = 3
    max_seeds: int | None = None
    abs_tol: float = 0.0
    rel_tol: float = 0.10
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.min_seeds < 2:
            raise ValueError("min_seeds must be >= 2 (a CI needs a variance)")
        if self.max_seeds is not None and self.max_seeds < self.min_seeds:
            raise ValueError("max_seeds must be >= min_seeds")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.abs_tol < 0 or self.rel_tol < 0:
            raise ValueError("tolerances must be non-negative")

    @property
    def z(self) -> float:
        """Two-sided normal quantile for ``confidence``."""
        return NormalDist().inv_cdf(0.5 + self.confidence / 2.0)

    def half_width(self, values: Sequence[float]) -> float:
        """CI half-width of the mean of ``values`` (inf below 2 samples)."""
        n = len(values)
        if n < 2:
            return math.inf
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        return self.z * math.sqrt(var / n)

    def decide(self, values: Sequence[float]) -> str:
        """``CONTINUE`` or ``STOP`` given the cell's degradations so far."""
        n = len(values)
        if n < self.min_seeds:
            return CONTINUE
        if self.max_seeds is not None and n >= self.max_seeds:
            return STOP
        mean = sum(values) / n
        tolerance = max(self.abs_tol, self.rel_tol * abs(mean))
        return STOP if self.half_width(values) <= tolerance else CONTINUE

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        return {
            "min_seeds": self.min_seeds,
            "max_seeds": self.max_seeds,
            "abs_tol": self.abs_tol,
            "rel_tol": self.rel_tol,
            "confidence": self.confidence,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StoppingPolicy":
        return cls(
            min_seeds=payload.get("min_seeds", 3),
            max_seeds=payload.get("max_seeds"),
            abs_tol=payload.get("abs_tol", 0.0),
            rel_tol=payload.get("rel_tol", 0.10),
            confidence=payload.get("confidence", 0.95),
        )
