"""Persistent, append-only campaign result store with content-keyed dedup.

Layout on disk (one directory per campaign)::

    <store>/results.jsonl   append-only record log — the source of truth
    <store>/index.sqlite    trial-key index + record cache, rebuilt on demand

Every record is one JSON line ``{"key", "cell", "trial", "result"}``. The
SQLite index makes membership tests and per-cell aggregation cheap; if it is
missing, stale, or the process died mid-write, :class:`ResultStore` rebuilds
it from the JSONL log on open, silently dropping a torn trailing line. That
property is what makes campaigns crash-resumable: whatever reached the log
survives, and the executor skips every key already present.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.campaigns.spec import Trial
from repro.training.zoo import cache_dir
from repro.utils.logging import get_logger

logger = get_logger("campaigns.store")


def default_store_dir(name: str) -> Path:
    """Default on-disk location for a campaign's results, keyed by name."""
    return cache_dir() / "campaigns" / name


@dataclass(frozen=True)
class TrialResult:
    """Measured outcome of one trial (the persisted result schema).

    The hardware-cost columns (``cycles``, ``recovered_macs``,
    ``energy_j``) are populated when the campaign ran with a cost
    instrument attached (``CampaignSpec.cost``, DESIGN.md section 8) and
    default to zero otherwise — including for records stored before the
    columns existed.

    ``backend`` records which GEMM backend actually executed the trial
    (provenance, DESIGN.md section 11) — possibly the exact fallback when
    the requested backend was unavailable in the worker. It is empty for
    records stored before backends existed (implicitly ``numpy-f64``).
    """

    score: float
    degradation: float
    clean_score: float
    injected_errors: int = 0
    gemm_calls: int = 0
    cycles: int = 0
    recovered_macs: int = 0
    energy_j: float = 0.0
    elapsed_s: float = 0.0
    worker: int = 0
    backend: str = ""

    def to_dict(self) -> dict:
        return {
            "score": self.score,
            "degradation": self.degradation,
            "clean_score": self.clean_score,
            "injected_errors": self.injected_errors,
            "gemm_calls": self.gemm_calls,
            "cycles": self.cycles,
            "recovered_macs": self.recovered_macs,
            "energy_j": self.energy_j,
            "elapsed_s": self.elapsed_s,
            "worker": self.worker,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrialResult":
        return cls(
            score=payload["score"],
            degradation=payload["degradation"],
            clean_score=payload["clean_score"],
            injected_errors=payload.get("injected_errors", 0),
            gemm_calls=payload.get("gemm_calls", 0),
            cycles=payload.get("cycles", 0),
            recovered_macs=payload.get("recovered_macs", 0),
            energy_j=payload.get("energy_j", 0.0),
            elapsed_s=payload.get("elapsed_s", 0.0),
            worker=payload.get("worker", 0),
            backend=payload.get("backend", ""),
        )


@dataclass(frozen=True)
class StoredRecord:
    """One (trial, result) pair read back from the store."""

    key: str
    cell: str
    trial: Trial
    result: TrialResult


class ResultStore:
    """Single-writer JSONL + SQLite result store (open per campaign)."""

    def __init__(self, directory: str | Path, create: bool = True) -> None:
        """``create=False`` (read paths) refuses to fabricate an empty store
        out of a mistyped directory and raises ``FileNotFoundError`` instead."""
        self.directory = Path(directory)
        if not create and not self.directory.exists():
            raise FileNotFoundError(
                f"campaign store {self.directory} does not exist"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        self.log_path = self.directory / "results.jsonl"
        self.index_path = self.directory / "index.sqlite"
        self._conn = sqlite3.connect(self.index_path)
        # WAL keeps readers off the writer's lock and turns each commit into
        # one sequential WAL append instead of a full-database sync — the
        # parent streams one commit per finished trial while draining lane
        # packs, so commit latency is on the campaign's critical path.
        # (Falls back silently on filesystems that cannot do WAL.)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " key TEXT PRIMARY KEY, cell TEXT, record TEXT)"
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS results_cell ON results (cell)"
        )
        # Covering index on the trial key: record fetches during resume
        # scans (one `get` per stored trial) are answered from the index
        # alone, without a table-row fetch. The trade-off — each insert
        # writes the record blob into both the table and the index — lands
        # on a rebuildable cache (the JSONL log is the source of truth)
        # and stays cheap under WAL's sequential appends.
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS results_key_covering"
            " ON results (key, record)"
        )
        # Live campaign progress (DESIGN.md section 10): the running parent
        # appends JSON snapshots here and `campaign watch` in another
        # process reads the newest row through WAL. Progress is ephemeral
        # telemetry — deliberately NOT part of the JSONL source of truth,
        # so `_sync_index` rebuilds never touch it.
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS progress ("
            " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
            " ts REAL NOT NULL, payload TEXT NOT NULL)"
        )
        self._conn.commit()
        self._sync_index()

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- recovery
    def _log_records(self) -> Iterator[dict]:
        """Parse the JSONL log, skipping torn/corrupt lines (crash debris)."""
        if not self.log_path.exists():
            return
        with self.log_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    logger.info("skipping corrupt line in %s", self.log_path)
                    continue
                if "key" in payload and "trial" in payload and "result" in payload:
                    yield payload

    def _sync_index(self) -> None:
        """Rebuild the SQLite index whenever it disagrees with the log."""
        log_count = len({payload["key"] for payload in self._log_records()})
        (index_count,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
        if index_count == log_count:
            return
        logger.info(
            "rebuilding index for %s (%d log records, %d indexed)",
            self.directory, log_count, index_count,
        )
        self._conn.execute("DELETE FROM results")
        for payload in self._log_records():
            self._insert(payload)
        self._conn.commit()

    def _insert(self, payload: dict) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO results (key, cell, record) VALUES (?, ?, ?)",
            (payload["key"], payload.get("cell", ""), json.dumps(payload)),
        )

    # --------------------------------------------------------------- writes
    def add(self, trial: Trial, result: TrialResult) -> None:
        """Append one result; flushed to the log before the index update.

        Adding a key that is already stored is a no-op (first write wins),
        which keeps the log's line count equal to the index's row count.
        """
        if trial.key in self:
            return
        payload = {
            "key": trial.key,
            "cell": trial.cell_id,
            "trial": trial.to_dict(),
            "result": result.to_dict(),
        }
        line = json.dumps(payload, sort_keys=True)
        with self.log_path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._insert(payload)
        self._conn.commit()

    # ------------------------------------------------------------- progress
    #: Snapshot rows kept per store; older rows are pruned on write. Enough
    #: history for throughput trends, small enough that the table never
    #: competes with the results index for I/O.
    PROGRESS_KEEP = 512

    def write_progress(self, snapshot: dict) -> None:
        """Append one progress snapshot (parent/writer side), pruning history."""
        self._conn.execute(
            "INSERT INTO progress (ts, payload) VALUES (?, ?)",
            (time.time(), json.dumps(snapshot)),
        )
        self._conn.execute(
            "DELETE FROM progress WHERE seq <= ("
            " SELECT seq FROM progress ORDER BY seq DESC"
            f" LIMIT 1 OFFSET {self.PROGRESS_KEEP})"
        )
        self._conn.commit()

    def latest_progress(self) -> Optional[dict]:
        """Newest snapshot, or ``None`` for a store that never ran."""
        row = self._conn.execute(
            "SELECT payload FROM progress ORDER BY seq DESC LIMIT 1"
        ).fetchone()
        return json.loads(row[0]) if row else None

    def progress_history(self, limit: int = PROGRESS_KEEP) -> list[dict]:
        """Up to ``limit`` most recent snapshots, oldest first."""
        rows = self._conn.execute(
            "SELECT payload FROM progress ORDER BY seq DESC LIMIT ?", (limit,)
        ).fetchall()
        return [json.loads(row[0]) for row in reversed(rows)]

    # ---------------------------------------------------------------- reads
    def __contains__(self, key: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
        return count

    def keys(self) -> set[str]:
        return {row[0] for row in self._conn.execute("SELECT key FROM results")}

    @staticmethod
    def _decode(record_json: str) -> StoredRecord:
        payload = json.loads(record_json)
        return StoredRecord(
            key=payload["key"],
            cell=payload.get("cell", ""),
            trial=Trial.from_dict(payload["trial"]),
            result=TrialResult.from_dict(payload["result"]),
        )

    def get(self, key: str) -> Optional[StoredRecord]:
        # INDEXED BY pins the covering index: the planner would otherwise
        # pick the primary-key autoindex and pay an extra table-row fetch
        # per probe — these probes run once per trial on campaign resume.
        row = self._conn.execute(
            "SELECT record FROM results INDEXED BY results_key_covering"
            " WHERE key = ?",
            (key,),
        ).fetchone()
        return self._decode(row[0]) if row else None

    def records(self) -> list[StoredRecord]:
        rows = self._conn.execute("SELECT record FROM results ORDER BY rowid")
        return [self._decode(row[0]) for row in rows]

    def cell_records(self, cell_id: str) -> list[StoredRecord]:
        rows = self._conn.execute(
            "SELECT record FROM results WHERE cell = ? ORDER BY rowid", (cell_id,)
        )
        return [self._decode(row[0]) for row in rows]
