"""Persistent, append-only campaign result store with content-keyed dedup.

Layout on disk (one directory per campaign)::

    <store>/results.jsonl      append-only record log — the source of truth
    <store>/quarantine.jsonl   poison-trial failure records (DESIGN.md §12)
    <store>/index.sqlite       trial-key index + record cache, rebuilt on demand

Every record is one JSON line ``{"key", "cell", "trial", "result", "crc"}``
where ``crc`` is the CRC32 of the record's canonical form — so a line that
was torn by a crash *or* silently bit-rotted on disk is detected, skipped
with a WARNING, and counted in the ``store.corrupt_lines`` metric rather
than read back as a wrong result. The SQLite index makes membership tests
and per-cell aggregation cheap; if it is missing, stale, or the process
died mid-write, :class:`ResultStore` rebuilds it from the JSONL log on
open. That property is what makes campaigns crash-resumable: whatever
reached the log survives, and the executor skips every key already present.

Appends are fsync'd in batches (at most one fsync per
:data:`ResultStore.FSYNC_INTERVAL_S`, plus one on close) so durability does
not serialize the parent's result stream on disk latency;
``REPRO_STORE_FSYNC=0`` opts out entirely for throwaway stores.

``quarantine.jsonl`` holds the supervisor's poison-trial records — trials
that kept failing after every retry. They are first-class store citizens:
resume skips quarantined keys instead of re-exploding on them, and
``campaign quarantine list|clear`` administers them.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, Optional

try:  # POSIX only; the store degrades to intra-process locking elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

import repro.telemetry as telemetry
from repro.campaigns.spec import Trial
from repro.training.zoo import cache_dir
from repro.utils.logging import get_logger

logger = get_logger("campaigns.store")


def _line_crc(payload: dict) -> str:
    """CRC32 (hex) of the record's canonical JSON, ``crc`` field excluded."""
    body = {k: v for k, v in payload.items() if k != "crc"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(canonical.encode('utf-8')) & 0xFFFFFFFF:08x}"


def default_store_dir(name: str) -> Path:
    """Default on-disk location for a campaign's results, keyed by name."""
    return cache_dir() / "campaigns" / name


@dataclass(frozen=True)
class TrialResult:
    """Measured outcome of one trial (the persisted result schema).

    The hardware-cost columns (``cycles``, ``recovered_macs``,
    ``energy_j``) are populated when the campaign ran with a cost
    instrument attached (``CampaignSpec.cost``, DESIGN.md section 8) and
    default to zero otherwise — including for records stored before the
    columns existed.

    ``backend`` records which GEMM backend actually executed the trial
    (provenance, DESIGN.md section 11) — possibly the exact fallback when
    the requested backend was unavailable in the worker. It is empty for
    records stored before backends existed (implicitly ``numpy-f64``).
    """

    score: float
    degradation: float
    clean_score: float
    injected_errors: int = 0
    gemm_calls: int = 0
    cycles: int = 0
    recovered_macs: int = 0
    energy_j: float = 0.0
    elapsed_s: float = 0.0
    worker: int = 0
    backend: str = ""

    def to_dict(self) -> dict:
        return {
            "score": self.score,
            "degradation": self.degradation,
            "clean_score": self.clean_score,
            "injected_errors": self.injected_errors,
            "gemm_calls": self.gemm_calls,
            "cycles": self.cycles,
            "recovered_macs": self.recovered_macs,
            "energy_j": self.energy_j,
            "elapsed_s": self.elapsed_s,
            "worker": self.worker,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrialResult":
        return cls(
            score=payload["score"],
            degradation=payload["degradation"],
            clean_score=payload["clean_score"],
            injected_errors=payload.get("injected_errors", 0),
            gemm_calls=payload.get("gemm_calls", 0),
            cycles=payload.get("cycles", 0),
            recovered_macs=payload.get("recovered_macs", 0),
            energy_j=payload.get("energy_j", 0.0),
            elapsed_s=payload.get("elapsed_s", 0.0),
            worker=payload.get("worker", 0),
            backend=payload.get("backend", ""),
        )


@dataclass(frozen=True)
class StoredRecord:
    """One (trial, result) pair read back from the store."""

    key: str
    cell: str
    trial: Trial
    result: TrialResult


class ResultStore:
    """Single-writer JSONL + SQLite result store (open per campaign)."""

    #: At most one fsync of the result log per interval; pending syncs are
    #: settled on close. A crash in between loses at most the last
    #: interval's results — which resume simply re-executes.
    FSYNC_INTERVAL_S = 0.05

    def __init__(self, directory: str | Path, create: bool = True) -> None:
        """``create=False`` (read paths) refuses to fabricate an empty store
        out of a mistyped directory and raises ``FileNotFoundError`` instead."""
        self.directory = Path(directory)
        if not create and not self.directory.exists():
            raise FileNotFoundError(
                f"campaign store {self.directory} does not exist"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        self.log_path = self.directory / "results.jsonl"
        self.quarantine_path = self.directory / "quarantine.jsonl"
        self.index_path = self.directory / "index.sqlite"
        self._log_handle: Optional[IO[str]] = None
        self._fsync = os.environ.get("REPRO_STORE_FSYNC", "1") != "0"
        self._last_fsync = 0.0
        self._fsync_pending = False
        # Ingest serialization (DESIGN.md §14): the store is *designed*
        # single-writer, but a distributed deployment can race two brokers
        # (or a broker and a stray `campaign run`) on the same directory.
        # `flock` on a sidecar file makes the append+index+commit sequence
        # atomic across processes; the threading mutex covers threads of
        # one process, where flock (held per open-file-description) is not
        # a barrier. Without `fcntl` (non-POSIX) only the mutex applies.
        self._mutex = threading.Lock()
        self._lock_handle: Optional[IO[str]] = None
        if fcntl is not None:
            self._lock_handle = (self.directory / ".store.lock").open("a")
        self._conn = sqlite3.connect(self.index_path)
        # WAL keeps readers off the writer's lock and turns each commit into
        # one sequential WAL append instead of a full-database sync — the
        # parent streams one commit per finished trial while draining lane
        # packs, so commit latency is on the campaign's critical path.
        # (Falls back silently on filesystems that cannot do WAL.)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " key TEXT PRIMARY KEY, cell TEXT, record TEXT)"
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS results_cell ON results (cell)"
        )
        # Covering index on the trial key: record fetches during resume
        # scans (one `get` per stored trial) are answered from the index
        # alone, without a table-row fetch. The trade-off — each insert
        # writes the record blob into both the table and the index — lands
        # on a rebuildable cache (the JSONL log is the source of truth)
        # and stays cheap under WAL's sequential appends.
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS results_key_covering"
            " ON results (key, record)"
        )
        # Live campaign progress (DESIGN.md section 10): the running parent
        # appends JSON snapshots here and `campaign watch` in another
        # process reads the newest row through WAL. Progress is ephemeral
        # telemetry — deliberately NOT part of the JSONL source of truth,
        # so `_sync_index` rebuilds never touch it.
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS progress ("
            " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
            " ts REAL NOT NULL, payload TEXT NOT NULL)"
        )
        # Poison-trial quarantine (DESIGN.md section 12): one row per trial
        # the supervisor gave up on, mirrored from quarantine.jsonl exactly
        # like results mirror results.jsonl.
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS quarantine ("
            " key TEXT PRIMARY KEY, cell TEXT, record TEXT)"
        )
        self._conn.commit()
        self._sync_index()

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        if self._log_handle is not None:
            self._settle_fsync(force=True)
            self._log_handle.close()
            self._log_handle = None
        if self._lock_handle is not None:
            self._lock_handle.close()
            self._lock_handle = None
        self._conn.close()

    @contextlib.contextmanager
    def _ingest_lock(self) -> Iterator[None]:
        """Exclusive append+index critical section (threads *and* processes)."""
        with self._mutex:
            if self._lock_handle is None:
                yield
                return
            fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_UN)

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- recovery
    def _parse_lines(self, path: Path, required: tuple[str, ...]) -> Iterator[dict]:
        """Parse one JSONL log, dropping torn and CRC-mismatched lines.

        Every dropped line is a WARNING plus a bump of the
        ``store.corrupt_lines`` metric — corruption must be *visible*, not
        silently absorbed into a smaller result set. Records written before
        the ``crc`` field existed are accepted unverified.
        """
        if not path.exists():
            return
        with path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    logger.warning(
                        "skipping corrupt line %d in %s (unparseable JSON)",
                        number, path,
                    )
                    telemetry.METRICS.counter("store.corrupt_lines").inc()
                    continue
                crc = payload.get("crc")
                if crc is not None and crc != _line_crc(payload):
                    logger.warning(
                        "skipping corrupt line %d in %s (CRC mismatch: "
                        "line says %s, content is %s)",
                        number, path, crc, _line_crc(payload),
                    )
                    telemetry.METRICS.counter("store.corrupt_lines").inc()
                    continue
                if all(field in payload for field in required):
                    yield payload

    def _log_records(self) -> Iterator[dict]:
        """Parse the result log, skipping torn/corrupt lines (crash debris)."""
        yield from self._parse_lines(self.log_path, ("key", "trial", "result"))

    def _quarantine_records_raw(self) -> Iterator[dict]:
        yield from self._parse_lines(self.quarantine_path, ("key", "failure"))

    def _sync_index(self) -> None:
        """Rebuild the SQLite index whenever it disagrees with the logs."""
        for table, records in (
            ("results", self._log_records),
            ("quarantine", self._quarantine_records_raw),
        ):
            log_count = len({payload["key"] for payload in records()})
            (index_count,) = self._conn.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()
            if index_count == log_count:
                continue
            logger.info(
                "rebuilding %s index for %s (%d log records, %d indexed)",
                table, self.directory, log_count, index_count,
            )
            self._conn.execute(f"DELETE FROM {table}")
            for payload in records():
                self._insert(payload, table=table)
            self._conn.commit()

    def _insert(self, payload: dict, table: str = "results") -> None:
        self._conn.execute(
            f"INSERT OR REPLACE INTO {table} (key, cell, record) VALUES (?, ?, ?)",
            (payload["key"], payload.get("cell", ""), json.dumps(payload)),
        )

    # --------------------------------------------------------------- writes
    def _append_line(self, path: Path, payload: dict) -> None:
        """One CRC-stamped append, fsync'd in batches (see class docstring).

        The result log keeps a persistent ``O_APPEND`` handle so batching
        works across calls; the (rare) quarantine appends open-and-close.
        Under an active chaos spec with ``torn_writes``, selected appends
        are preceded by a deliberately torn junk line — recovery must skip
        it, warn, and count it.
        """
        from repro.campaigns import chaos

        payload = {**payload, "crc": _line_crc(payload)}
        line = json.dumps(payload, sort_keys=True)
        if path == self.log_path:
            if self._log_handle is None:
                self._log_handle = path.open("a", encoding="utf-8")
            handle = self._log_handle
        else:
            handle = path.open("a", encoding="utf-8")
        try:
            if chaos.maybe_tear_store_line(payload["key"]):
                handle.write(line[: max(8, len(line) // 2)].rstrip() + "\n")
            handle.write(line + "\n")
            handle.flush()
            if self._fsync:
                if path == self.log_path:
                    self._fsync_pending = True
                    self._settle_fsync()
                else:
                    os.fsync(handle.fileno())
        finally:
            if handle is not self._log_handle:
                handle.close()

    def _settle_fsync(self, force: bool = False) -> None:
        """fsync the result log if due (or ``force``) and a sync is pending."""
        if not (self._fsync and self._fsync_pending and self._log_handle):
            return
        now = time.monotonic()
        if force or now - self._last_fsync >= self.FSYNC_INTERVAL_S:
            os.fsync(self._log_handle.fileno())
            self._last_fsync = now
            self._fsync_pending = False

    def add(self, trial: Trial, result: TrialResult) -> None:
        """Append one result; flushed to the log before the index update.

        Adding a key that is already stored is a no-op (first write wins),
        which keeps the log's line count equal to the index's row count.
        The membership test is re-run under the ingest lock: two processes
        racing the same key would otherwise both pass the unlocked check
        and append the record twice (the WAL reader sees the winner's
        commit once it holds the lock).
        """
        if trial.key in self:
            return
        with self._ingest_lock():
            if trial.key in self:
                telemetry.METRICS.counter("store.duplicate_ingests").inc()
                return
            payload = {
                "key": trial.key,
                "cell": trial.cell_id,
                "trial": trial.to_dict(),
                "result": result.to_dict(),
            }
            self._append_line(self.log_path, payload)
            self._insert(payload)
            self._conn.commit()

    # ----------------------------------------------------------- quarantine
    def quarantine(self, trial: Trial, failure: dict) -> None:
        """Persist a poison-trial failure record (DESIGN.md section 12).

        ``failure`` carries the supervisor's post-mortem: ``error`` (last
        exception repr), ``kind`` (``"deterministic"`` when the final two
        attempts raised identically, else ``"transient"``), ``attempts``,
        ``worker`` pid, ``backend``, and ``errors`` (every attempt's
        exception). Re-quarantining a key replaces its record (latest
        post-mortem wins on rebuild, mirroring ``INSERT OR REPLACE``).
        """
        payload = {
            "key": trial.key,
            "cell": trial.cell_id,
            "trial": trial.to_dict(),
            "failure": {**failure, "ts": time.time()},
        }
        with self._ingest_lock():
            self._append_line(self.quarantine_path, payload)
            self._insert(payload, table="quarantine")
            self._conn.commit()

    def quarantined_keys(self) -> set[str]:
        return {
            row[0] for row in self._conn.execute("SELECT key FROM quarantine")
        }

    def quarantined_records(self) -> list[dict]:
        """Every quarantine record, oldest first."""
        rows = self._conn.execute(
            "SELECT record FROM quarantine ORDER BY rowid"
        )
        return [json.loads(row[0]) for row in rows]

    def clear_quarantine(self, keys: Optional[set[str]] = None) -> int:
        """Drop quarantine records (all, or just ``keys``); returns count.

        The only non-append mutation in the store: quarantine is an
        operator-facing denylist, and "retry these trials" means removing
        them from it. The JSONL file is rewritten to match.
        """
        keep = [
            record
            for record in self._quarantine_records_raw()
            if keys is not None and record["key"] not in keys
        ]
        before = len(self.quarantined_keys())
        if keys is None:
            self._conn.execute("DELETE FROM quarantine")
        else:
            self._conn.executemany(
                "DELETE FROM quarantine WHERE key = ?", [(k,) for k in keys]
            )
        self._conn.commit()
        tmp = self.quarantine_path.with_suffix(".jsonl.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for record in keep:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        tmp.replace(self.quarantine_path)
        return before - len(self.quarantined_keys())

    # ------------------------------------------------------------- progress
    #: Snapshot rows kept per store; older rows are pruned on write. Enough
    #: history for throughput trends, small enough that the table never
    #: competes with the results index for I/O.
    PROGRESS_KEEP = 512

    def write_progress(self, snapshot: dict) -> None:
        """Append one progress snapshot (parent/writer side), pruning history."""
        self._conn.execute(
            "INSERT INTO progress (ts, payload) VALUES (?, ?)",
            (time.time(), json.dumps(snapshot)),
        )
        self._conn.execute(
            "DELETE FROM progress WHERE seq <= ("
            " SELECT seq FROM progress ORDER BY seq DESC"
            f" LIMIT 1 OFFSET {self.PROGRESS_KEEP})"
        )
        self._conn.commit()

    def latest_progress(self) -> Optional[dict]:
        """Newest snapshot, or ``None`` for a store that never ran."""
        row = self._conn.execute(
            "SELECT payload FROM progress ORDER BY seq DESC LIMIT 1"
        ).fetchone()
        return json.loads(row[0]) if row else None

    def progress_history(self, limit: int = PROGRESS_KEEP) -> list[dict]:
        """Up to ``limit`` most recent snapshots, oldest first."""
        rows = self._conn.execute(
            "SELECT payload FROM progress ORDER BY seq DESC LIMIT ?", (limit,)
        ).fetchall()
        return [json.loads(row[0]) for row in reversed(rows)]

    # ---------------------------------------------------------------- reads
    def __contains__(self, key: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
        return count

    def keys(self) -> set[str]:
        return {row[0] for row in self._conn.execute("SELECT key FROM results")}

    @staticmethod
    def _decode(record_json: str) -> StoredRecord:
        payload = json.loads(record_json)
        return StoredRecord(
            key=payload["key"],
            cell=payload.get("cell", ""),
            trial=Trial.from_dict(payload["trial"]),
            result=TrialResult.from_dict(payload["result"]),
        )

    def get(self, key: str) -> Optional[StoredRecord]:
        # INDEXED BY pins the covering index: the planner would otherwise
        # pick the primary-key autoindex and pay an extra table-row fetch
        # per probe — these probes run once per trial on campaign resume.
        row = self._conn.execute(
            "SELECT record FROM results INDEXED BY results_key_covering"
            " WHERE key = ?",
            (key,),
        ).fetchone()
        return self._decode(row[0]) if row else None

    def records(self) -> list[StoredRecord]:
        rows = self._conn.execute("SELECT record FROM results ORDER BY rowid")
        return [self._decode(row[0]) for row in rows]

    def cell_records(self, cell_id: str) -> list[StoredRecord]:
        rows = self._conn.execute(
            "SELECT record FROM results WHERE cell = ? ORDER BY rowid", (cell_id,)
        )
        return [self._decode(row[0]) for row in rows]
