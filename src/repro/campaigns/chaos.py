"""Deterministic seeded fault injection into the campaign harness itself.

The supervision layer (:mod:`repro.campaigns.supervise`, DESIGN.md section
12) claims to survive worker SIGKILLs, hangs past the lease deadline,
transient trial exceptions, shared-memory attach failures, and torn result
log lines. This module is how we prove it: a :class:`ChaosSpec` names a
seed plus per-fault-kind firing rates, and every decision is a pure hash of
``(seed, kind, site key)`` — so a chaos run is exactly reproducible across
processes, start methods, and retries, and the test suite can *predict*
which sites fire without running anything.

The discipline that makes chaos-ridden campaigns bit-identical to
fault-free ones: every fault except ``poison`` fires **only on the first
attempt** of its site (the parent stamps attempt counters into the work
payloads). The retry/requeue machinery then re-executes the site cleanly,
and the final store contents match the undisturbed run. ``poison`` fires on
*every* attempt — it models a deterministically-broken trial and exists to
exercise the quarantine path.

Activation: pass a :class:`ChaosSpec` to ``run_campaign(chaos=...)``, use
``campaign run --chaos "seed=1,kill=0.5,exc=0.5"``, or set the same compact
string (or its JSON form) in ``$REPRO_CHAOS``. The spec rides the work
payloads into pool workers, so it reaches spawn-started processes too.

Process-wide kills and hangs are gated on :data:`WORKER_INDEX` being set
(i.e. on running inside a supervised pool worker): chaos must never SIGKILL
the campaign parent or stall the serial executor, which has no supervisor
to rescue it.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, fields
from typing import Optional

from repro.utils.logging import get_logger

logger = get_logger("campaigns.chaos")

#: Set by the supervised pool's worker bootstrap; ``None`` in the campaign
#: parent and in serial execution. Worker-fatal faults (kill, hang) and the
#: shm attach fault key off it.
WORKER_INDEX: Optional[int] = None


class ChaosError(RuntimeError):
    """Base class for faults the chaos harness raises on purpose."""


class ChaosTrialError(ChaosError):
    """Injected transient trial failure (first attempt only)."""


class ChaosPoisonError(ChaosError):
    """Injected deterministic trial failure (every attempt)."""


class ChaosShmAttachError(ChaosError):
    """Injected shared-memory attach failure in a worker."""


#: Compact-string aliases, e.g. ``"seed=1,kill=0.5,exc=0.25,hang=0.1"``.
_ALIASES = {
    "kill": "kill_workers",
    "exc": "trial_exceptions",
    "hang": "hangs",
    "shm": "shm_attach_failures",
    "torn": "torn_writes",
    "poison": "poison_trials",
    "drop": "net_drop",
    "dup": "net_dup",
    "delay": "net_delay",
    "disconnect": "net_disconnect",
}


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded firing rates for each fault kind (all off by default).

    Rates are probabilities in ``[0, 1]`` evaluated deterministically per
    site (pack key, trial key, worker index, or store key — see the hook
    functions); ``1.0`` fires at every site of that kind.
    """

    seed: int = 0
    kill_workers: float = 0.0  # SIGKILL the worker mid-pack (attempt 0)
    trial_exceptions: float = 0.0  # transient per-trial raise (attempt 0)
    poison_trials: float = 0.0  # deterministic per-trial raise (every attempt)
    hangs: float = 0.0  # stall a pack past its lease deadline (attempt 0)
    hang_s: float = 3600.0  # how long a hang sleeps (the lease kill ends it)
    shm_attach_failures: float = 0.0  # fail the worker's zero-copy attach
    torn_writes: float = 0.0  # prepend a torn junk line to a store append
    # Network faults, applied per (message kind, site) in the fabric
    # worker's transport (:mod:`repro.fabric.worker`). Like every
    # non-poison fault they fire on a site's first attempt only, so the
    # reconnect/duplicate-drop machinery restores a bit-identical run.
    net_drop: float = 0.0  # message never sent (connection refused/reset)
    net_dup: float = 0.0  # message delivered twice (client retry after lost ack)
    net_delay: float = 0.0  # message delayed by net_delay_s before sending
    net_disconnect: float = 0.0  # sent, but the connection dies before the reply
    net_delay_s: float = 0.2  # how long a delayed message waits

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name in ("seed",):
                continue
            value = getattr(self, f.name)
            if f.name in ("hang_s", "net_delay_s"):
                if value <= 0:
                    raise ValueError(f"{f.name} must be positive")
                continue
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"chaos rate {f.name} must be in [0, 1], got {value}")

    # ------------------------------------------------------------ decisions
    def decide(self, kind: str, key: str) -> bool:
        """Deterministic fire/no-fire for one (fault kind, site) pair."""
        rate = getattr(self, kind)
        if rate <= 0.0:
            return False
        digest = hashlib.sha256(f"{self.seed}:{kind}:{key}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return fraction < rate

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "ChaosSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown chaos spec keys: {sorted(unknown)} (known: {sorted(known)})"
            )
        return cls(**payload)

    @classmethod
    def from_string(cls, text: str) -> "ChaosSpec":
        """Parse ``"seed=1,kill=0.5,exc=0.25"`` (or a JSON object string)."""
        text = text.strip()
        if not text:
            raise ValueError("empty chaos spec")
        if text.startswith("{"):
            return cls.from_dict(json.loads(text))
        payload: dict = {}
        for part in text.split(","):
            if "=" not in part:
                raise ValueError(
                    f"chaos spec parts must be key=value, got {part!r} "
                    f"(aliases: {sorted(_ALIASES)})"
                )
            raw_key, raw_value = part.split("=", 1)
            key = _ALIASES.get(raw_key.strip(), raw_key.strip())
            payload[key] = int(raw_value) if key == "seed" else float(raw_value)
        return cls.from_dict(payload)


# ------------------------------------------------------------------ activation
_ACTIVE: Optional[ChaosSpec] = None
_ENV_CACHE: tuple[Optional[str], Optional[ChaosSpec]] = (None, None)


def install(spec: Optional[ChaosSpec]) -> None:
    """Activate (or with ``None`` deactivate) chaos for this process."""
    global _ACTIVE
    _ACTIVE = spec


def active() -> Optional[ChaosSpec]:
    """The installed spec, else one parsed from ``$REPRO_CHAOS``, else None."""
    if _ACTIVE is not None:
        return _ACTIVE
    global _ENV_CACHE
    raw = os.environ.get("REPRO_CHAOS")
    if not raw:
        return None
    cached_raw, cached_spec = _ENV_CACHE
    if raw != cached_raw:
        _ENV_CACHE = (raw, ChaosSpec.from_string(raw))
    return _ENV_CACHE[1]


# ----------------------------------------------------------------------- hooks
def maybe_fail_trial(key: str, attempt: int) -> None:
    """Per-trial fault point (both the solo and the lane-packed route).

    ``trial_exceptions`` raises only on the trial's first attempt — the
    model of a transient fault the retry machinery must absorb.
    ``poison_trials`` raises on every attempt — the deterministic failure
    the quarantine machinery must persist and skip on resume.
    """
    spec = active()
    if spec is None:
        return
    if spec.decide("poison_trials", key):
        raise ChaosPoisonError(f"chaos: poison trial {key}")
    if attempt == 0 and spec.decide("trial_exceptions", key):
        logger.warning("chaos: injecting transient exception into trial %s", key)
        raise ChaosTrialError(f"chaos: transient failure for trial {key}")


def maybe_kill_worker(pack_key: str, pack_attempt: int) -> None:
    """SIGKILL this worker mid-pack (first lease of the pack only)."""
    spec = active()
    if spec is None or WORKER_INDEX is None or pack_attempt > 0:
        return
    if spec.decide("kill_workers", pack_key):
        logger.warning("chaos: SIGKILLing worker %d on pack %s", os.getpid(), pack_key)
        os.kill(os.getpid(), signal.SIGKILL)


def maybe_hang(pack_key: str, pack_attempt: int) -> None:
    """Stall this worker past any sane lease deadline (first lease only).

    The sleep is sliced so a graceful terminate also ends it promptly; the
    supervisor's lease-expiry SIGKILL ends it regardless.
    """
    spec = active()
    if spec is None or WORKER_INDEX is None or pack_attempt > 0:
        return
    if spec.decide("hangs", pack_key):
        logger.warning("chaos: hanging worker %d on pack %s", os.getpid(), pack_key)
        deadline = time.monotonic() + spec.hang_s
        while time.monotonic() < deadline:
            time.sleep(0.05)


def maybe_fail_shm_attach() -> None:
    """Fault point inside :func:`repro.models.sharing.attach_bundle`."""
    spec = active()
    if spec is None or WORKER_INDEX is None:
        return
    if spec.decide("shm_attach_failures", f"worker-{WORKER_INDEX}"):
        raise ChaosShmAttachError(
            f"chaos: shm attach failure in worker {WORKER_INDEX}"
        )


def maybe_tear_store_line(key: str) -> bool:
    """True when the store should prepend a torn junk line to this append."""
    spec = active()
    return spec is not None and spec.decide("torn_writes", key)


#: Network fault kinds in precedence order: a site decided for several kinds
#: suffers only the first — keeps per-site behavior a single deterministic
#: outcome instead of a compound one.
NET_FAULTS = (
    ("net_drop", "drop"),
    ("net_disconnect", "disconnect"),
    ("net_dup", "dup"),
    ("net_delay", "delay"),
)


def maybe_net_fault(msg_kind: str, site: str, attempt: int = 0) -> Optional[str]:
    """Network fault point for one protocol message send.

    Called by the fabric worker's transport before each send. Returns the
    fault to apply — ``"drop"`` (never send, surface a transport error),
    ``"disconnect"`` (send, then lose the connection before the reply),
    ``"dup"`` (send twice), ``"delay"`` (sleep ``net_delay_s`` first) — or
    ``None``. The decision is the same pure hash of ``(seed, kind, site)``
    as every other fault, and fires only on ``attempt == 0`` of a site: the
    retry that follows a drop/disconnect runs clean, so a chaos-ridden
    campaign still completes bit-identical to a fault-free one.
    """
    spec = active()
    if spec is None or attempt > 0:
        return None
    key = f"{msg_kind}:{site}"
    for kind, name in NET_FAULTS:
        if spec.decide(kind, key):
            logger.warning("chaos: net %s on %s %s", name, msg_kind, site)
            return name
    return None
