"""Parallel, resumable fault-injection campaign engine.

Declarative :class:`CampaignSpec` grids expand into content-keyed
:class:`Trial`\\ s; an append-only :class:`ResultStore` dedups completed
trials (crash resume for free); serial and supervised-pool executors score
the rest with per-worker model caching and optional per-cell Monte-Carlo
early stopping; :mod:`repro.campaigns.report` aggregates the store into
tables and CSV. The supervision layer (:class:`SuperviseConfig`,
DESIGN.md section 12) leases packs with deadlines, retries transient
trial failures with backoff, and quarantines poison trials; the chaos
harness (:class:`ChaosSpec`) injects deterministic faults to prove it.
:mod:`repro.fabric` (DESIGN.md section 14) scales the same executor loop
across machines: a broker leases lane packs to remote workers over HTTP
and degrades back to the in-process pool when the fleet is empty.
"""

from repro.campaigns.chaos import ChaosSpec
from repro.campaigns.report import (
    CellSummary,
    aggregate,
    export_csv,
    report_table,
    status_table,
)
from repro.campaigns.spec import (
    NO_METHOD,
    CampaignSpec,
    ErrorSpec,
    SiteSpec,
    Trial,
    example_spec,
)
from repro.dispatch.cost import CostSpec
from repro.campaigns.stopping import CONTINUE, STOP, StoppingPolicy
from repro.campaigns.store import ResultStore, StoredRecord, TrialResult
from repro.campaigns.supervise import PackDone, PackLost, SupervisedPool, SuperviseConfig

#: Executor/lane names resolved lazily: the executor drags in the ReaLM
#: pipeline, whose calibration path imports the sweeps, which import this
#: package.
_EXECUTOR_EXPORTS = frozenset({"RunReport", "evaluate_trial", "run_campaign"})
_LANE_EXPORTS = frozenset({"LanePacker", "evaluate_lane_pack", "prepare_lanes"})


def __getattr__(name: str):
    if name in _EXECUTOR_EXPORTS:
        from repro.campaigns import executor

        return getattr(executor, name)
    if name in _LANE_EXPORTS:
        from repro.campaigns import lanes

        return getattr(lanes, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CampaignSpec",
    "CellSummary",
    "ChaosSpec",
    "CostSpec",
    "ErrorSpec",
    "LanePacker",
    "NO_METHOD",
    "PackDone",
    "PackLost",
    "ResultStore",
    "RunReport",
    "SiteSpec",
    "StoppingPolicy",
    "StoredRecord",
    "SupervisedPool",
    "SuperviseConfig",
    "Trial",
    "TrialResult",
    "CONTINUE",
    "STOP",
    "aggregate",
    "evaluate_lane_pack",
    "evaluate_trial",
    "example_spec",
    "export_csv",
    "prepare_lanes",
    "report_table",
    "run_campaign",
    "status_table",
]
