"""Zero-overhead-when-disabled span tracer with Chrome-trace export.

The tracer answers "where did this campaign's wall clock go" without ever
perturbing what it measures: spans record wall time only — no RNG draws, no
array work — so every bit-exactness contract (DESIGN.md sections 5, 7, 9)
holds with tracing enabled, and when tracing is *disabled* ``span()``
returns one shared no-op singleton and the dispatch hot path never sees a
tracer at all (the executor's trace slot stays ``None``; the instrument
chain is byte-for-byte the chain that existed before telemetry did).

Spans nest lexically (``with span("trial.evaluate"): ... with
span("replay.resume"): ...``) and are recorded as Chrome-trace complete
events (``"ph": "X"``), which chrome://tracing and Perfetto nest by
interval containment. Timestamps come from ``perf_counter`` — on Linux a
boot-anchored monotonic clock shared by every process, so spans shipped
from pool workers land on the same timeline as the parent's.

Span taxonomy (see DESIGN.md section 10): ``trial.evaluate`` /
``pack.evaluate`` (campaign layer), ``eval.run`` / ``eval.clean``
(evaluator layer), ``replay.resume`` / ``replay.record`` (replay engine),
``shm.publish`` / ``shm.attach`` (worker bring-up), ``harness.reference``
(generation-task references).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Optional

#: Hard cap on buffered events — a runaway loop with tracing left on must
#: not eat the process; past the cap events are dropped and counted.
MAX_EVENTS = 250_000


class _NoopSpan:
    """The disabled-mode span: one shared, allocation-free singleton."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


#: The singleton every ``span()`` call returns while tracing is disabled.
NOOP_SPAN = _NoopSpan()


class Span:
    """One live span; records itself on ``__exit__``."""

    __slots__ = ("_tracer", "name", "args", "_start_us")

    def __init__(self, tracer: "SpanTracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start_us = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes after entry (e.g. a resume layer computed
        mid-span)."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            self.args.setdefault("parent", stack[-1])
        stack.append(self.name)
        self._start_us = time.perf_counter_ns() / 1e3
        return self

    def __exit__(self, *exc_info) -> bool:
        end_us = time.perf_counter_ns() / 1e3
        stack = self._tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self._tracer._record(self.name, self._start_us, end_us - self._start_us, self.args)
        return False


class SpanTracer:
    """Collects finished spans as Chrome-trace complete events."""

    def __init__(self) -> None:
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self.dropped = 0

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, attrs: dict) -> Span:
        return Span(self, name, attrs)

    def _record(self, name: str, ts_us: float, dur_us: float, args: dict) -> None:
        with self._lock:
            if len(self._events) >= MAX_EVENTS:
                self.dropped += 1
                return
            self._events.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": ts_us,
                    "dur": dur_us,
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                    "args": args,
                }
            )

    # ------------------------------------------------------------- transport
    def events(self) -> list[dict]:
        """A snapshot of the buffered events (the buffer keeps them)."""
        with self._lock:
            return list(self._events)

    def drain(self) -> list[dict]:
        """Remove and return every buffered event (worker -> parent ship)."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def ingest(self, events: list[dict]) -> None:
        """Merge events shipped from another process (pool workers)."""
        with self._lock:
            room = MAX_EVENTS - len(self._events)
            self._events.extend(events[:room])
            self.dropped += max(0, len(events) - room)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# ------------------------------------------------------------- module state
_TRACER: Optional[SpanTracer] = None


def enabled() -> bool:
    return _TRACER is not None


def tracer() -> Optional[SpanTracer]:
    return _TRACER


def enable() -> SpanTracer:
    """Turn span tracing on (idempotent); returns the process tracer.

    Also exports ``REPRO_TELEMETRY=1`` so spawned worker processes come up
    traced too (forked workers inherit the live tracer directly).
    """
    global _TRACER
    if _TRACER is None:
        _TRACER = SpanTracer()
    os.environ["REPRO_TELEMETRY"] = "1"
    return _TRACER


def disable() -> None:
    """Turn span tracing off and drop the buffered events."""
    global _TRACER
    _TRACER = None
    os.environ.pop("REPRO_TELEMETRY", None)


def span(name: str, **attrs):
    """A context-manager span; the shared no-op singleton when disabled.

    The disabled path allocates nothing that survives the call and never
    touches the tracer — the zero-overhead contract benchmarked in
    ``benchmarks/bench_trial_lanes.py``.
    """
    t = _TRACER
    if t is None:
        return NOOP_SPAN
    return t.span(name, attrs)


def export_trace(path: Optional[str | Path] = None, extra: Optional[dict] = None) -> dict:
    """Render the buffered spans as a Chrome-trace JSON object.

    The payload loads directly into chrome://tracing and Perfetto. ``extra``
    (e.g. per-site GEMM wall/cycle tables, a metrics snapshot) rides along
    under ``"repro"`` — both viewers ignore unknown top-level keys.
    """
    t = _TRACER
    payload: dict = {
        "traceEvents": t.events() if t is not None else [],
        "displayTimeUnit": "ms",
    }
    if t is not None and t.dropped:
        payload["droppedEvents"] = t.dropped
    if extra:
        payload["repro"] = extra
    if path is not None:
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload
