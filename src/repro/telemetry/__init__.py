"""``repro.telemetry`` — spans, metrics, and dispatch-chain wall tracing.

Three cooperating pieces (DESIGN.md section 10):

- **Spans** (:mod:`.spans`): opt-in wall-clock tracing of the trial hot
  path with Chrome-trace/Perfetto export. Off by default; enable with
  :func:`enable`, ``REPRO_TELEMETRY=1``, or ``campaign run --trace``.
  Disabled-mode cost is one shared no-op singleton — nothing reaches the
  dispatch chain.
- **Metrics** (:mod:`.metrics`): always-on counters/gauges/histograms on
  the trial control path, snapshotted by campaign workers into the result
  store's ``progress`` table for ``campaign watch`` / ``status --metrics``.
- **Dispatch tracing** (:mod:`.instrument`): a per-``GemmSite`` wall-time
  instrument the evaluator attaches (only while spans are enabled)
  alongside the hardware cost instrument, so modeled cycles and measured
  wall time correlate per site.

The overhead contract: with everything enabled, scores and statistics are
bit-identical and ``benchmarks/bench_trial_lanes.py`` measures < 2% wall
overhead on the lane-packed hot path (full runs assert it; the committed
``BENCH_lanes.json`` baseline carries the ratio for ``bench_compare``).
"""

from __future__ import annotations

import os

from repro.telemetry.instrument import SiteWall, TraceInstrument
from repro.telemetry.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    runtime_snapshot,
)
from repro.telemetry.spans import (
    NOOP_SPAN,
    Span,
    SpanTracer,
    disable,
    enable,
    enabled,
    export_trace,
    span,
    tracer,
)

__all__ = [
    "METRICS",
    "NOOP_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SiteWall",
    "Span",
    "SpanTracer",
    "TraceInstrument",
    "disable",
    "enable",
    "enabled",
    "export_trace",
    "gemm_trace",
    "merge_snapshots",
    "runtime_snapshot",
    "span",
    "tracer",
]

#: Process-wide dispatch-chain trace instrument, created on first use; the
#: evaluator attaches it for the duration of each run while spans are
#: enabled, so one export correlates every trial of the session.
_GEMM_TRACE: TraceInstrument | None = None


def gemm_trace() -> TraceInstrument:
    global _GEMM_TRACE
    if _GEMM_TRACE is None:
        _GEMM_TRACE = TraceInstrument()
    return _GEMM_TRACE


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "").strip().lower() not in (
        "",
        "0",
        "false",
    )


if _env_enabled():  # spawn-started workers and REPRO_TELEMETRY=1 sessions
    enable()
