"""Process-local metrics registry: counters, gauges, histograms.

Unlike span tracing (opt-in, wall-clock focused), metrics are always on:
they are plain Python int/float bumps on the *trial* control path — never
inside the per-GEMM dispatch chain — so their cost is unmeasurable against
a forward pass, and campaign progress snapshots (DESIGN.md section 10)
work without any telemetry flag.

Each pool worker owns its own registry; ``repro.campaigns.executor`` ships
worker snapshots back piggybacked on result payloads and the parent merges
them (counters and monotonic gauges sum, histograms merge) into the
``progress`` table that ``campaign watch`` reads.

Metric names in use: ``campaign.trials_executed`` / ``.trials_failed`` /
``.trial_retries`` / ``.trials_quarantined``,
``lanes.packs`` / ``.packed_trials`` / ``.pack_degradations``,
``supervise.worker_deaths`` / ``.lease_expiries`` / ``.requeues`` /
``.respawns_throttled``,
``store.corrupt_lines`` / ``.duplicate_ingests``,
``injector.corruptions``, ``protector.inspected`` / ``.detected`` /
``.recovered``, ``replay.trace_hits`` / ``.trace_misses`` (gauges mirroring
the trace store's counters), ``trial.elapsed_s`` (histogram).

The distributed control plane (DESIGN.md section 14) adds the ``fabric.*``
family — broker side: ``fabric.leases_granted`` / ``.lease_steals`` /
``.lease_expiries`` / ``.requeues`` / ``.requeues_carried`` /
``.packs_lost`` / ``.results_accepted`` / ``.late_results_accepted`` /
``.duplicate_results`` / ``.unknown_results`` / ``.local_fallbacks`` /
``.workers_registered`` / ``.quarantine_notices``; worker side:
``fabric.worker_reconnects`` / ``.worker_packs_run`` and one
``fabric.net_{drop,dup,delay,disconnect}`` counter per injected network
fault. Every lease requeue, steal, and dropped duplicate delivery is
visible here — silent recovery is a debugging dead end.
"""

from __future__ import annotations

import threading
from typing import Optional


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value (ages, cache sizes, occupancy)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming count/sum/min/max summary (no buckets — the consumers
    only render rates and means)."""

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0}
        return {"count": self.count, "sum": self.sum, "min": self.min, "max": self.max}


class MetricsRegistry:
    """Name -> instrument registry with JSON-able snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    def snapshot(self) -> dict:
        """A plain-dict copy suitable for JSON (progress table, transport)."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {k: h.to_dict() for k, h in self._histograms.items()},
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Aggregate registry snapshots from several processes into one view.

    Counters sum across processes. Gauges sum too — every gauge in use is a
    monotonic per-process quantity (trace-store hits/misses/bytes), for
    which summing is the meaningful campaign-wide reading. Histograms merge
    count/sum/min/max.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, h in snap.get("histograms", {}).items():
            if not h.get("count"):
                continue
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = dict(h)
            else:
                merged["count"] += h["count"]
                merged["sum"] += h["sum"]
                merged["min"] = min(merged["min"], h["min"])
                merged["max"] = max(merged["max"], h["max"])
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


#: The process-wide registry (one per worker; the parent merges).
METRICS = MetricsRegistry()


def runtime_snapshot(registry: Optional[MetricsRegistry] = None) -> dict:
    """Snapshot ``registry`` with the pull-style gauges refreshed first.

    The replay trace store keeps its own plain-int hit/miss counters (always
    on, no registry import on that path); this helper copies them into
    gauges at snapshot time so consumers see one coherent dict.
    """
    from repro.models.replay import TRACES

    registry = registry or METRICS
    registry.gauge("replay.trace_hits").set(TRACES.hits)
    registry.gauge("replay.trace_misses").set(TRACES.misses)
    registry.gauge("replay.trace_cached").set(len(TRACES))
    registry.gauge("replay.trace_bytes").set(TRACES.nbytes)
    return registry.snapshot()
