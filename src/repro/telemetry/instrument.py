"""Per-``GemmSite`` wall-time tracing for the dispatch pipeline.

The cost instrument (DESIGN.md section 8) measures what a GEMM *would*
cost on the modeled systolic array — tiles, cycles, MACs. The trace
instrument measures what the same call actually cost this process in wall
time, keyed by the same :class:`~repro.errors.sites.GemmSite`, so the two
reports join per site and a ``repro trace export`` can show modeled cycles
next to measured milliseconds.

Placement: the instrument rides the executor's chain (last, after Cost) so
chain membership documents that tracing is on, but the *timing* is taken
by ``GemmExecutor.dispatch`` around the whole call. Hook-level timing
cannot see the full window — ``before`` hooks run before the kernel, and
on the bypass route the kernel executes *after* the ``after`` hooks — so
the executor stamps the boundary where every route converges. When no
trace instrument is attached (the default), that boundary is a single
``is None`` test and the chain is exactly the pre-telemetry chain.
"""

from __future__ import annotations

from repro.dispatch.pipeline import GemmCall, Instrument
from repro.errors.sites import GemmSite


class SiteWall:
    """Accumulated wall clock of one site's dispatched + replayed calls.

    ``backend`` records the GEMM backend of the site's most recent live
    dispatch (empty until one runs — replays execute no kernel), so
    exported timings say which kernel produced them (DESIGN.md §11).
    """

    __slots__ = ("calls", "replays", "wall_s", "macs", "backend")

    def __init__(self) -> None:
        self.calls = 0
        self.replays = 0
        self.wall_s = 0.0
        self.macs = 0
        self.backend = ""

    def to_dict(self) -> dict:
        return {
            "calls": self.calls,
            "replays": self.replays,
            "wall_s": self.wall_s,
            "macs": self.macs,
            "backend": self.backend,
        }


class TraceInstrument(Instrument):
    """Aggregates per-site wall time across every traced dispatch."""

    name = "trace"

    def __init__(self) -> None:
        self.by_site: dict[GemmSite, SiteWall] = {}

    # The executor times the full dispatch/replay window and reports here;
    # the inherited before/after/replay hooks stay no-ops on purpose.
    def observe(self, call: GemmCall, wall_s: float) -> None:
        row = self.by_site.get(call.site)
        if row is None:
            row = self.by_site[call.site] = SiteWall()
        row.calls += 1
        row.wall_s += wall_s
        row.macs += call.macs
        if call.backend is not None:
            row.backend = call.backend.name

    def observe_replay(self, call: GemmCall, wall_s: float) -> None:
        row = self.by_site.get(call.site)
        if row is None:
            row = self.by_site[call.site] = SiteWall()
        row.replays += 1
        row.wall_s += wall_s
        row.macs += call.macs

    def reset(self) -> None:
        self.by_site.clear()

    @property
    def total_wall_s(self) -> float:
        return sum(row.wall_s for row in self.by_site.values())

    def rows(self, cost_report=None) -> list[dict]:
        """Per-site summary, hottest first; joins modeled cycles when a
        :class:`~repro.systolic.array.GemmRunReport` is supplied."""
        out = []
        for site, row in self.by_site.items():
            entry = {"site": str(site), **row.to_dict()}
            if cost_report is not None:
                site_cost = cost_report.by_site.get(site)
                if site_cost is not None:
                    entry["cycles"] = (
                        site_cost.compute_cycles + site_cost.recovery_cycles
                    )
                    entry["tiles"] = site_cost.tiles
            out.append(entry)
        out.sort(key=lambda e: e["wall_s"], reverse=True)
        return out
