"""Optimizers for the training substrate: SGD and Adam, plus grad clipping."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd.nn import Parameter


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.1, momentum: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
