"""Reverse-mode automatic differentiation over NumPy arrays.

This package is the repo's substitute for PyTorch (see DESIGN.md section 1):
it provides
just enough autograd to *train* the tiny OPT-style and LLaMA-style language
models used throughout the reproduction, so that fault-injection experiments
measure degradation against a meaningful (trained) baseline instead of noise.

Public surface:

- :class:`Tensor` — array wrapper recording a dynamic computation graph.
- :mod:`repro.autograd.functional` — softmax, normalization, activations, loss.
- :mod:`repro.autograd.nn` — ``Module`` hierarchy (Linear, Embedding, norms).
- :mod:`repro.autograd.optim` — SGD and Adam with gradient clipping.
"""

from repro.autograd.tensor import Tensor, no_grad
from repro.autograd import functional
from repro.autograd import nn
from repro.autograd import optim
from repro.autograd import init

__all__ = ["Tensor", "no_grad", "functional", "nn", "optim", "init"]
