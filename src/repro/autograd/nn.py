"""Neural-network module system on top of the autograd :class:`Tensor`.

Provides the layer types the float (training-time) transformer models are
assembled from. Quantized inference uses a separate plain-NumPy path in
:mod:`repro.quant` / :mod:`repro.models`; weights trained here are exported
via :meth:`Module.state_dict`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with recursive parameter discovery and state export."""

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for attr, value in vars(self).items():
            full = f"{prefix}{attr}" if not prefix else f"{prefix}.{attr}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, ModuleList):
                for i, module in enumerate(value):
                    yield from module.named_parameters(f"{full}.{i}")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Export parameter arrays (copied) keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in params.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs {state[name].shape}"
                )
            param.data = np.asarray(state[name], dtype=np.float64).copy()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class ModuleList(list):
    """A list of modules participating in parameter discovery."""


class Linear(Module):
    """Affine map ``y = x W + b`` with weight shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        std: float = 0.02,
    ) -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.normal(rng, (in_features, out_features), std))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator, std: float = 0.02) -> None:
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal(rng, (num_embeddings, dim), std))

    def forward(self, token_ids: np.ndarray) -> Tensor:
        return self.weight.take_rows(np.asarray(token_ids))


class LayerNorm(Module):
    """LayerNorm with learnable affine parameters (OPT normalization)."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, self.eps)


class RMSNorm(Module):
    """RMSNorm with learnable scale (LLaMA normalization)."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.eps = eps
        self.weight = Parameter(np.ones(dim))

    def forward(self, x: Tensor) -> Tensor:
        return F.rms_norm(x, self.weight, self.eps)
