"""Core reverse-mode autograd tensor.

A :class:`Tensor` wraps a ``float64``/``float32`` NumPy array and records the
operations applied to it in a dynamic graph. Calling :meth:`Tensor.backward`
on a scalar walks the graph in reverse topological order accumulating
gradients, exactly the scheme used by mainstream frameworks.

Only the operations needed by the transformer models in :mod:`repro.models`
are implemented, but each handles full NumPy broadcasting so composite
functions (softmax, layer norm, attention) can be built from primitives.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

Arrayish = Union["Tensor", np.ndarray, float, int]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting may have (a) prepended dimensions and (b) expanded size-1
    dimensions; both expansions turn into sums in the backward pass.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with an optional gradient and autograd history."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # take precedence over ndarray in mixed ops

    def __init__(
        self,
        data: Arrayish,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ meta
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing data, cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------ graph core
    @staticmethod
    def _lift(value: Arrayish) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        If ``grad`` is omitted the tensor must be scalar; the seed gradient
        is 1.0.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Reverse topological order via iterative DFS (graphs can be deep).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: Arrayish) -> "Tensor":
        other = self._lift(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: Arrayish) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        other = self._lift(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other = self._lift(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / other.data**2, other.shape)
                )

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(data, (self,), backward)

    def __matmul__(self, other: Arrayish) -> "Tensor":
        other = self._lift(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.shape))

        return self._make(data, (self, other), backward)

    # ------------------------------------------------------------ elementwise
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data**2))

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return self._make(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            d = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                d = np.expand_dims(d, axis=axis)
            mask = (self.data == d).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * g)

        return self._make(data, (self,), backward)

    # ----------------------------------------------------------------- shape
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(data, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Embedding-style gather: rows of a 2-D table by integer index array.

        ``indices`` may have any shape; the result has shape
        ``indices.shape + (row_dim,)``.
        """
        indices = np.asarray(indices)
        data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices.reshape(-1), grad.reshape(-1, self.shape[-1]))
                self._accumulate(full)

        return self._make(data, (self,), backward)

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(lo, hi)
                    t._accumulate(grad[tuple(slicer)])

        return Tensor._make(data, tensors, backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a copy with ``value`` where ``mask`` is True (no grad there)."""
        mask = np.asarray(mask, dtype=bool)
        data = np.where(mask, value, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.where(mask, 0.0, grad))

        return self._make(data, (self,), backward)
