"""Weight initialization schemes for the training substrate."""

from __future__ import annotations

import numpy as np


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02) -> np.ndarray:
    """Gaussian init with the GPT-style default std of 0.02."""
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot uniform init for 2-D weights ``(fan_in, fan_out)``."""
    if len(shape) != 2:
        raise ValueError("xavier_uniform expects a 2-D shape")
    fan_in, fan_out = shape
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def scaled_residual(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    n_layers: int,
    std: float = 0.02,
) -> np.ndarray:
    """GPT-2 style init for residual-projection weights: std / sqrt(2*L)."""
    return rng.normal(0.0, std / np.sqrt(2.0 * max(n_layers, 1)), size=shape)
