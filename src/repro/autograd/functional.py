"""Composite differentiable functions built from :class:`Tensor` primitives.

These mirror ``torch.nn.functional`` for the subset used by the transformer
models: numerically stable softmax / log-softmax, cross entropy, layer and RMS
normalization, and the activation functions appearing in OPT (ReLU) and LLaMA
(SiLU) blocks.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean token-level cross entropy.

    Parameters
    ----------
    logits:
        Shape ``(..., vocab)``.
    targets:
        Integer array of shape ``logits.shape[:-1]``.
    """
    targets = np.asarray(targets)
    vocab = logits.shape[-1]
    flat_logits = logits.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)
    log_probs = log_softmax(flat_logits, axis=-1)
    picked = log_probs[np.arange(flat_targets.size), flat_targets]
    return -picked.mean()


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """LayerNorm over the last dimension (as in OPT blocks)."""
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    normalized = centered / (var + eps).sqrt()
    return normalized * weight + bias


def rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-5) -> Tensor:
    """RMSNorm over the last dimension (as in LLaMA blocks)."""
    mean_square = (x * x).mean(axis=-1, keepdims=True)
    return x / (mean_square + eps).sqrt() * weight


def relu(x: Tensor) -> Tensor:
    return x.relu()


def silu(x: Tensor) -> Tensor:
    """SiLU / swish: ``x * sigmoid(x)`` (LLaMA MLP activation)."""
    return x * x.sigmoid()


def gelu(x: Tensor) -> Tensor:
    """Tanh-approximated GELU."""
    inner = 0.7978845608028654 * (x + 0.044715 * x * x * x)
    return 0.5 * x * (1.0 + inner.tanh())


def attention_mask(seq_len: int, dtype=np.float64) -> np.ndarray:
    """Boolean causal mask: True above the diagonal (positions to hide)."""
    return np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)
