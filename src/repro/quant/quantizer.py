"""Symmetric INT8 quantizers.

Two flavours are used by the inference engine:

- **Activations**: per-tensor dynamic symmetric quantization — the scale is
  computed from the tensor's max-abs at runtime, as low-cost accelerators do.
- **Weights**: per-output-channel symmetric quantization computed offline,
  matching the W8A8 recipe of SmoothQuant that the paper follows [30].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

INT8_MAX = 127


@dataclass(frozen=True)
class QuantParams:
    """Scale(s) mapping int8 codes back to real values: ``x ~= q * scale``.

    ``scale`` is a scalar for per-tensor quantization or a 1-D array of
    length ``out_channels`` for per-channel weight quantization.
    """

    scale: np.ndarray

    @property
    def per_channel(self) -> bool:
        return np.ndim(self.scale) > 0 and np.size(self.scale) > 1


def _safe_scale(max_abs: np.ndarray) -> np.ndarray:
    """Scale for symmetric int8; degenerate all-zero tensors get scale 1."""
    max_abs = np.asarray(max_abs, dtype=np.float64)
    return np.where(max_abs > 0, max_abs / INT8_MAX, 1.0)


def quantize_activation(x: np.ndarray) -> tuple[np.ndarray, QuantParams]:
    """Per-tensor dynamic symmetric quantization to int8."""
    scale = _safe_scale(np.max(np.abs(x)))
    q = np.clip(np.rint(x / scale), -INT8_MAX, INT8_MAX).astype(np.int8)
    return q, QuantParams(scale=scale)


def quantize_activation_blockwise(x: np.ndarray) -> tuple[np.ndarray, QuantParams]:
    """Per-matrix dynamic symmetric quantization over the trailing two axes.

    For a stacked operand ``(..., m, k)`` each leading-index matrix gets its
    own scale, so a sequence (or attention head) quantizes exactly as it
    would if it ran alone — this is what keeps the batched inference path
    bit-identical to the single-sequence path in dynamic/calibration mode
    (see DESIGN.md section 4). For a plain 2-D matrix this reduces to
    :func:`quantize_activation` (one scale, shaped ``(1, 1)``).
    """
    if x.ndim < 2:
        raise ValueError(f"expected at least 2-D activations, got shape {x.shape}")
    scale = _safe_scale(np.max(np.abs(x), axis=(-2, -1), keepdims=True))
    q = np.clip(np.rint(x / scale), -INT8_MAX, INT8_MAX).astype(np.int8)
    return q, QuantParams(scale=scale)


def quantize_with_scale(x: np.ndarray, scale: float) -> tuple[np.ndarray, QuantParams]:
    """Per-tensor *static* symmetric quantization with a calibrated scale.

    Values beyond ``127 * scale`` saturate at the int8 boundary — the
    mechanism behind the paper's Q1.2 finding that large injected errors
    "reach a saturation point due to re-quantization" (Fig. 4c). Static
    scales are the SmoothQuant-style deployment the paper evaluates;
    dynamic quantization remains available as an ablation.
    """
    if scale <= 0:
        raise ValueError("static scale must be positive")
    q = np.rint(x / scale)
    np.clip(q, -INT8_MAX, INT8_MAX, out=q)
    return q.astype(np.int8), QuantParams(scale=np.asarray(scale, dtype=np.float64))


def quantize_weight_per_channel(w: np.ndarray) -> tuple[np.ndarray, QuantParams]:
    """Per-output-channel symmetric quantization of a 2-D weight ``(in, out)``."""
    if w.ndim != 2:
        raise ValueError(f"expected 2-D weight, got shape {w.shape}")
    scale = _safe_scale(np.max(np.abs(w), axis=0))
    q = np.clip(np.rint(w / scale), -INT8_MAX, INT8_MAX).astype(np.int8)
    return q, QuantParams(scale=scale)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """Map int codes back to float: ``q * scale`` (broadcast over channels)."""
    return q.astype(np.float64) * params.scale


def requantize_int32_to_int8(
    acc: np.ndarray, acc_scale: np.ndarray
) -> tuple[np.ndarray, QuantParams]:
    """Re-quantize an INT32 GEMM result to INT8 for the next quantized GEMM.

    This is the saturation path the paper's Q1.2 study identifies: large
    injected errors in high accumulator bits clip at the int8 boundary,
    bounding their downstream effect (Fig. 4c).
    """
    real = acc.astype(np.float64) * acc_scale
    return quantize_activation(real)
