"""Integer GEMM kernels with hardware accumulator semantics.

The systolic array the paper targets accumulates INT8xINT8 products in 32-bit
registers. We therefore compute products exactly in int64 and *wrap* to int32
(two's-complement overflow), matching silicon. A saturating variant exists as
an ablation (see DESIGN.md section 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1
_MOD = 2**32


def wrap_int32(x: np.ndarray) -> np.ndarray:
    """Two's-complement wraparound of an int64 array into int32 range."""
    return ((np.asarray(x, dtype=np.int64) - INT32_MIN) % _MOD + INT32_MIN).astype(
        np.int64
    )


def saturate_int32(x: np.ndarray) -> np.ndarray:
    """Clamp an int64 array into int32 range (ablation accumulator)."""
    return np.clip(np.asarray(x, dtype=np.int64), INT32_MIN, INT32_MAX)


@dataclass
class GemmOutput:
    """Result of an integer GEMM: int32-valued accumulators (stored as int64
    for safe downstream arithmetic) plus the float scale that dequantizes
    them (``real ~= acc * scale``, broadcasting per output column)."""

    acc: np.ndarray
    scale: np.ndarray


def gemm_int32(
    a_q: np.ndarray,
    b_q: np.ndarray,
    wraparound: bool = True,
    blas: bool = True,
    b_f64: np.ndarray | None = None,
    backend=None,
) -> np.ndarray:
    """``a_q @ b_q`` with INT32 accumulator semantics.

    Since the backend registry landed (DESIGN.md section 11) this is a
    thin dispatcher: the kernels live in
    :mod:`repro.dispatch.backends`, and ``blas=True``/``False`` map to
    the ``numpy-f64``/``numpy-int`` backends that extracted them.

    Parameters
    ----------
    a_q, b_q:
        Integer matrices (int8 codes, any integer dtype accepted). Stacked
        operands with leading batch/head axes (``(..., m, k) @ (..., k, n)``
        or a shared 2-D ``b_q``) are computed as one batched GEMM; integer
        accumulation is exact, so every slice equals the corresponding 2-D
        call bit-for-bit.
    wraparound:
        True (default) emulates two's-complement 32-bit overflow; False
        saturates instead.
    blas:
        Route int8 operands through the float64 BLAS pipeline (bit-exact:
        every partial sum is bounded by ``k * 127^2``, far below 2^53).
        False forces NumPy's non-BLAS integer matmul — the seed engine's
        route, kept as a benchmark baseline and paranoia fallback.
    b_f64:
        Optional pre-converted float64 mirror of ``b_q`` (weights cache one
        on :class:`~repro.models.quantized.QuantizedWeight`); skips the
        per-call conversion on the BLAS route. Values must equal ``b_q``.
    backend:
        A :class:`~repro.dispatch.backends.GemmBackend` instance or
        registered name; overrides the ``blas`` flag's route.

    Returns
    -------
    np.ndarray
        int64 array whose values all lie within int32 range.
    """
    # Imported lazily: the backends package imports this module for the
    # wrap/saturate semantics.
    from repro.dispatch.backends import get_backend

    if backend is None:
        backend = get_backend("numpy-f64" if blas else "numpy-int")
    elif isinstance(backend, str):
        backend = get_backend(backend)
    return backend.matmul_int32(a_q, b_q, wraparound=wraparound, b_f64=b_f64)
