"""W8A8 quantization substrate.

Implements the paper's quantized-inference setting (Sec. II-A / III-B):
GEMM inputs are symmetric INT8 (per-channel weights, per-tensor dynamic
activations, following SmoothQuant-style W8A8), accumulation is INT32 with
hardware wraparound, and nonlinear functions stay in floating point.
Errors are injected into the INT32 GEMM results.
"""

from repro.quant.quantizer import (
    QuantParams,
    quantize_activation,
    quantize_weight_per_channel,
    dequantize,
)
from repro.quant.gemm import gemm_int32, wrap_int32, saturate_int32, GemmOutput

__all__ = [
    "QuantParams",
    "quantize_activation",
    "quantize_weight_per_channel",
    "dequantize",
    "gemm_int32",
    "wrap_int32",
    "saturate_int32",
    "GemmOutput",
]
