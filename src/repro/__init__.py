"""ReaLM reproduction: statistical ABFT for reliable, efficient LLM inference.

Reproduces Xie et al., "ReaLM: Reliable and Efficient Large Language Model
Inference with Statistical Algorithm-Based Fault Tolerance" (DAC 2025) as a
pure-Python library. See README.md for an install/CLI tour and
``repro.campaigns`` for the parallel, resumable experiment engine.

Typical entry points:

>>> from repro.training import get_pretrained
>>> from repro.characterization import ModelEvaluator
>>> from repro.core import ReaLMPipeline, ReaLMConfig
>>> bundle = get_pretrained("opt-mini")
>>> evaluator = ModelEvaluator(bundle, "perplexity")
"""

__version__ = "1.0.0"

__all__ = [
    "autograd",
    "quant",
    "dispatch",
    "models",
    "data",
    "training",
    "evalsuite",
    "errors",
    "abft",
    "systolic",
    "circuits",
    "energy",
    "characterization",
    "campaigns",
    "core",
    "utils",
    "cli",
]
