"""Hardware cost accounting as a dispatch-pipeline instrument.

:class:`CostInstrument` rides the GEMM dispatch chain (DESIGN.md section 8)
and charges every call — live, bypassed, or replayed — with the systolic
cycles its 2-D slices would take on an ``size x size`` array under the
configured dataflow, using the memoized tiling plans of
:mod:`repro.systolic.tiling`. Costs are **measured on the actual executed
calls** (shapes, checksum activity, recovery decisions), not reconstructed
analytically: a recovered slice charges a full re-execution of its tiles at
nominal voltage, exactly mirroring the engine's recovery protocol, and the
aggregated :class:`~repro.systolic.array.GemmRunReport` keeps the per-site
breakdown for layerwise reports.

The instrument is off by default (``GemmExecutor.cost = None``); attaching
one adds only a cached-plan lookup and a few integer adds per GEMM call, so
evaluations stay within a few percent of their uninstrumented wall clock
(asserted by ``benchmarks/bench_fig7_systolic.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dispatch.pipeline import GemmCall, Instrument
from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParams
from repro.systolic.dataflow import Dataflow
from repro.systolic.array import GemmRunReport
from repro.systolic.tiling import tiling_plan


class CostInstrument(Instrument):
    """Measures systolic cycles + recovery work of every dispatched GEMM.

    Parameters
    ----------
    size:
        Systolic array dimension the calls are tiled onto (the paper
        synthesizes 256 x 256).
    dataflow:
        WS/OS/IS dataflow for the cycle model (accepts a
        :class:`Dataflow` or its string value).
    params:
        Energy-model knobs for :meth:`energy`.

    Notes
    -----
    ``injected_tiles`` stays zero at engine level — injection statistics
    belong to the injector (``stats.injected_errors``); the cost instrument
    accounts work, not corruption.
    """

    name = "cost"

    def __init__(
        self,
        size: int = 256,
        dataflow: Dataflow | str = Dataflow.WS,
        params: EnergyParams | None = None,
    ) -> None:
        if size <= 0:
            raise ValueError("array size must be positive")
        self.size = size
        self.dataflow = dataflow if isinstance(dataflow, Dataflow) else Dataflow(dataflow)
        self.params = params or EnergyParams()
        self.report = GemmRunReport()

    def reset(self) -> None:
        """Zero the accumulated report (fresh measurement)."""
        self.report = GemmRunReport()

    # ------------------------------------------------------- instrument hooks
    def after(self, call: GemmCall) -> None:
        self._observe(call)

    def replay(self, call: GemmCall) -> None:
        self._observe(call)

    def _observe(self, call: GemmCall) -> None:
        n_slices, m, k, n = call.slice_shape()
        plan = tiling_plan(m, k, n, self.size)
        cycles = plan.cycles(self.dataflow, with_checksum=call.protected)
        # Engine recovery is per 2-D slice: a tripped slice re-executes all
        # of its tiles at nominal voltage.
        recovered = call.recovered_slices
        self.report.charge(
            call.site,
            tiles=plan.tiles * n_slices,
            compute_cycles=cycles * n_slices,
            macs=call.macs,
            recovered_tiles=plan.tiles * recovered,
            recovered_macs=call.recovered_macs,
            recovery_cycles=cycles * recovered,
        )

    # ------------------------------------------------------------- reporting
    def energy(self, voltage: float | None = None) -> EnergyBreakdown:
        """Energy of everything measured so far, at operating ``voltage``
        (nominal when ``None``): compute at ``voltage``, recovered MACs
        re-executed at nominal — the paper's Sec. VI-A accounting."""
        model = EnergyModel(self.params)
        v = self.params.v_nominal if voltage is None else voltage
        return model.breakdown(self.report.macs, self.report.recovered_macs, v)


class LaneCostInstrument(Instrument):
    """Per-lane hardware cost accounting for lane-packed dispatches.

    Holds one :class:`CostInstrument` per batch lane (DESIGN.md section 9).
    Every observed call's 2-D slices split into equal contiguous lane runs
    (the same ownership rule as
    :func:`~repro.abft.checksums.lane_of_slice`), so each lane is charged
    tiles, cycles, MACs — and, via the protect instrument's per-lane
    recovery breakdown, recovery work — **bit-identically** to what its
    solo run's instrument would have measured: the per-slice tiling plan
    depends only on the slice's (m, k, n), which packing never changes.
    """

    name = "cost"

    def __init__(self, lanes: Sequence[CostInstrument]) -> None:
        if not lanes:
            raise ValueError("a lane cost instrument needs at least one lane")
        self.lanes: tuple[CostInstrument, ...] = tuple(lanes)

    def reset(self) -> None:
        for lane in self.lanes:
            lane.reset()

    def after(self, call: GemmCall) -> None:
        self._observe(call)

    def replay(self, call: GemmCall) -> None:
        self._observe(call)

    def _observe(self, call: GemmCall) -> None:
        n_lanes = len(self.lanes)
        n_slices, m, k, n = call.slice_shape()
        if n_slices % n_lanes or call.macs % n_lanes:
            raise ValueError(
                f"call at {call.site} ({n_slices} slices, {call.macs} MACs) "
                f"does not split into {n_lanes} lanes"
            )
        lane_slices = n_slices // n_lanes
        lane_macs = call.macs // n_lanes
        rec_slices = call.recovered_slices_by_lane or [0] * n_lanes
        rec_macs = call.recovered_macs_by_lane or [0] * n_lanes
        for j, inst in enumerate(self.lanes):
            plan = tiling_plan(m, k, n, inst.size)
            cycles = plan.cycles(inst.dataflow, with_checksum=call.protected)
            inst.report.charge(
                call.site,
                tiles=plan.tiles * lane_slices,
                compute_cycles=cycles * lane_slices,
                macs=lane_macs,
                recovered_tiles=plan.tiles * rec_slices[j],
                recovered_macs=rec_macs[j],
                recovery_cycles=cycles * rec_slices[j],
            )


@dataclass(frozen=True)
class CostSpec:
    """JSON-able configuration of a :class:`CostInstrument`.

    Campaign specs carry one at spec level (``"cost": true`` or a dict of
    these fields) so every cell of the grid measures cycles/energy the same
    way; the spec is deliberately **not** part of a trial's content key —
    cost accounting observes a trial, it does not change what is injected
    or scored.
    """

    size: int = 256
    dataflow: str = Dataflow.WS.value
    e_mac_pj: float = 0.30
    v_nominal: float = 0.9
    detection_overhead: float = 0.0

    def __post_init__(self) -> None:
        Dataflow(self.dataflow)  # raises ValueError on unknown dataflows
        if self.size <= 0:
            raise ValueError("array size must be positive")

    def build(self) -> CostInstrument:
        return CostInstrument(
            size=self.size,
            dataflow=Dataflow(self.dataflow),
            params=EnergyParams(
                e_mac_pj=self.e_mac_pj,
                v_nominal=self.v_nominal,
                detection_overhead=self.detection_overhead,
            ),
        )

    def to_dict(self) -> dict:
        return {
            "size": self.size,
            "dataflow": self.dataflow,
            "e_mac_pj": self.e_mac_pj,
            "v_nominal": self.v_nominal,
            "detection_overhead": self.detection_overhead,
        }

    @classmethod
    def from_dict(cls, payload) -> "CostSpec":
        """Accepts ``True`` (all defaults) or a dict of the fields.

        Unknown keys are rejected, mirroring the campaign spec loader: a
        typo'd field ("datafow") must fail at load time, not silently
        measure a default configuration for the whole campaign.
        """
        if payload is True:
            return cls()
        if not isinstance(payload, dict):
            raise ValueError(
                f"cost spec must be true or an object of fields, got {payload!r}"
            )
        known = {"size", "dataflow", "e_mac_pj", "v_nominal", "detection_overhead"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown cost spec keys: {sorted(unknown)} (known: {sorted(known)})"
            )
        return cls(
            size=payload.get("size", 256),
            dataflow=payload.get("dataflow", Dataflow.WS.value),
            e_mac_pj=payload.get("e_mac_pj", 0.30),
            v_nominal=payload.get("v_nominal", 0.9),
            detection_overhead=payload.get("detection_overhead", 0.0),
        )
