"""The GEMM dispatch pipeline: one call object, one ordered instrument chain.

Every protected/injectable GEMM of the inference engine is expressed as a
:class:`GemmCall` — site identity, operands, quantization scales, routing
state — dispatched through an ordered chain of :class:`Instrument` objects
with a uniform protocol (see DESIGN.md section 8):

- ``before(call)`` runs pre-execution on every live dispatch. Instruments
  prepare operands (:class:`QuantizeInstrument`), log the call
  (:class:`RecordInstrument`), or request materialized integer accumulators
  by setting ``call.need_int`` (:class:`InjectInstrument` when the site is
  targeted, :class:`ProtectInstrument` always).
- ``after(call)`` runs post-execution. On the materialized route
  ``call.acc`` holds the int32-valued accumulators and instruments
  transform it in place (corrupt, inspect/recover, cost-account); on the
  bypass route ``call.acc`` is ``None`` and instruments perform only their
  bookkeeping (RNG-counter advance, cost accounting).
- ``replay(call)`` replays the bookkeeping of a skipped clean GEMM (the
  clean-trace replay engine, DESIGN.md section 7): no operands, just the
  site, MAC count, and output shape. Live and replayed bookkeeping share
  one code path per instrument, so the two can never drift apart.

The chain order is fixed — Quantize, Record, Inject, Protect, Cost — and
matches the physical pipeline: operands are quantized before execution,
corruption happens on the accumulators, the checksum unit inspects the
(possibly corrupted) result and recovers, and the hardware cost model
observes what actually ran (including recoveries). The executor itself owns
MAC accounting and the route decision; with no injector, protector, or cost
instrument attached the chain degenerates to Quantize+Record and the
dispatch is bit-identical to (and as fast as) the pre-pipeline inline
route.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.abft.checksums import checksum_report, slice_inspections
from repro.errors.sites import GemmSite


@dataclass(frozen=True)
class GemmCallRecord:
    """One executed GEMM of a recorded clean forward: enough to replay its
    bookkeeping (RNG stream advance, protector inspection, MAC charge,
    hardware cost) without re-executing the arithmetic."""

    site: GemmSite
    macs: int
    shape: tuple[int, ...]


@dataclass
class GemmCall:
    """One GEMM dispatch flowing through the instrument chain.

    ``kind`` is ``"linear"`` (activation x pre-quantized weight),
    ``"matmul"`` (activation x activation), or ``"replay"`` (bookkeeping
    replay of a skipped clean call — no operands). The quantize instrument
    fills in the int8 operands and the dequantization scale; the executor
    fills in ``clean``/``acc`` on the materialized route; the protect
    instrument records recovery decisions for the cost instrument.
    """

    site: GemmSite
    kind: str = "replay"
    # float operands (live dispatch only)
    a: Optional[np.ndarray] = None
    b: Optional[np.ndarray] = None
    weight: Optional[object] = None  # QuantizedWeight (duck-typed)
    # quantized operands + scales (set by QuantizeInstrument)
    a_q: Optional[np.ndarray] = None
    b_q: Optional[np.ndarray] = None
    b_f64: Optional[np.ndarray] = None
    out_scale: Optional[np.ndarray] = None
    # shape/work accounting
    macs: int = 0
    out_shape: tuple[int, ...] = ()
    # routing state
    need_int: bool = False  # an instrument needs materialized accumulators
    protected: bool = False  # checksum hardware active for this call
    replayed: bool = False
    # GemmBackend executing this call (set by QuantizeInstrument from the
    # executor's selection; a caller may pre-set it for per-call override)
    backend: Optional[object] = None
    # accumulators (materialized route only)
    clean: Optional[np.ndarray] = None
    acc: Optional[np.ndarray] = None
    # recovery outcome (set by ProtectInstrument, read by CostInstrument);
    # the per-lane breakdowns are filled only on lane-packed dispatches
    # (DESIGN.md section 9), where the cost instrument must attribute each
    # recovered slice to the trial lane that tripped it.
    recovered_slices: int = 0
    recovered_macs: int = 0
    recovered_slices_by_lane: Optional[list[int]] = None
    recovered_macs_by_lane: Optional[list[int]] = None

    @property
    def stage(self):
        return self.site.stage

    def slice_shape(self) -> tuple[int, int, int, int]:
        """``(n_slices, m, k, n)`` of the call's 2-D GEMM slices.

        The reduction dimension is recovered exactly from the MAC count
        (``macs = n_slices * m * k * n``), so replayed calls — which carry
        only (site, macs, shape) — cost-account identically to live ones.
        """
        m, n = int(self.out_shape[-2]), int(self.out_shape[-1])
        n_slices = 1
        for d in self.out_shape[:-2]:
            n_slices *= int(d)
        return n_slices, m, self.macs // (n_slices * m * n), n


class Instrument:
    """Base instrument: every hook is a no-op."""

    name = "instrument"

    def before(self, call: GemmCall) -> None:
        """Pre-execution hook (live dispatch)."""

    def after(self, call: GemmCall) -> None:
        """Post-execution hook; ``call.acc`` is ``None`` on the bypass route."""

    def replay(self, call: GemmCall) -> None:
        """Bookkeeping replay of a skipped clean call (no operands)."""


class QuantizeInstrument(Instrument):
    """Quantizes operands per the executor's activation-quantization mode.

    Weight GEMMs quantize the activation only (weights are pre-quantized
    per-channel, with a cached float64 BLAS mirror); activation-activation
    GEMMs quantize both operands in ``a``-then-``b`` order, which is also
    the calibration-scale recording order.
    """

    name = "quantize"

    def __init__(self, executor) -> None:
        self.executor = executor

    def before(self, call: GemmCall) -> None:
        ex = self.executor
        a_q, a_params = ex._quantize(call.a, call.site, "a")
        call.a_q = a_q
        if call.kind == "linear":
            weight = call.weight
            call.b_q = weight.q
            call.b_f64 = weight.q_f64
            call.out_scale = a_params.scale * weight.params.scale
        else:
            b_q, b_params = ex._quantize(call.b, call.site, "b")
            call.b_q = b_q
            call.out_scale = np.asarray(a_params.scale * b_params.scale)
        rows = int(np.prod(call.a_q.shape[:-1]))
        n = int(call.b_q.shape[-1])
        call.macs = rows * call.a_q.shape[-1] * n
        call.out_shape = tuple(call.a_q.shape[:-1]) + (n,)
        if call.backend is None:
            call.backend = ex.backend


class RecordInstrument(Instrument):
    """Appends a :class:`GemmCallRecord` to the executor's active call log
    (clean-trace recording, DESIGN.md section 7). Inert when no log is
    scoped — the common case."""

    name = "record"

    def __init__(self, executor) -> None:
        self.executor = executor

    def before(self, call: GemmCall) -> None:
        log = self.executor.call_log
        if log is not None:
            log.append(
                GemmCallRecord(site=call.site, macs=call.macs, shape=call.out_shape)
            )


class InjectInstrument(Instrument):
    """Routes the attached :class:`~repro.errors.injector.ErrorInjector`.

    A targeted site forces integer materialization; an untargeted call (on
    the bypass route or in replay) advances the injector's per-call RNG
    counter via ``register_untargeted`` so downstream targeted streams are
    identical whichever route ran.
    """

    name = "inject"

    def __init__(self, injector) -> None:
        self.injector = injector

    def before(self, call: GemmCall) -> None:
        if self.injector.targets(call.site):
            call.need_int = True

    def after(self, call: GemmCall) -> None:
        if call.acc is None:
            self.injector.register_untargeted(call.site)
        else:
            call.acc = self.injector.corrupt(call.acc, call.site)

    def replay(self, call: GemmCall) -> None:
        self.injector.register_untargeted(call.site)


class ProtectInstrument(Instrument):
    """Consults the attached :class:`~repro.abft.protectors.Protector` per
    2-D GEMM slice and recovers tripped slices from the clean accumulators.

    The slicing/charging protocol lives in
    :func:`~repro.abft.checksums.slice_inspections` (shared with replayed
    bookkeeping); recovery granularity, the protector's inspection
    statistics, and the charged recovery MACs all match the paper's
    per-GEMM protocol independent of batch size.
    """

    name = "protect"

    def __init__(self, protector) -> None:
        self.protector = protector

    def before(self, call: GemmCall) -> None:
        call.need_int = True
        call.protected = True

    def _lane_count(self) -> Optional[int]:
        lanes = getattr(self.protector, "lanes", None)
        return len(lanes) if lanes is not None else None

    def after(self, call: GemmCall) -> None:
        # ``before`` forces materialization, so ``call.acc`` is never None.
        report = checksum_report(call.a_q, call.b_q, call.acc)
        macs = call.macs
        n_lanes = self._lane_count()
        if n_lanes is not None:
            call.recovered_slices_by_lane = [0] * n_lanes
            call.recovered_macs_by_lane = [0] * n_lanes
        if report.diffs.ndim <= 1:
            for _, sub, sub_macs in slice_inspections(report.diffs, macs):
                if self.protector.for_slice(None, 1).inspect(sub, call.site, sub_macs):
                    # recovery: recompute at nominal voltage
                    call.acc = call.clean
                    call.recovered_slices += 1
                    call.recovered_macs += sub_macs
                    return
            return
        acc, clean = call.acc, call.clean
        n_slices = int(np.prod(report.diffs.shape[:-1]))
        acc_slices = acc.reshape(n_slices, *acc.shape[-2:])
        clean_slices = clean.reshape(n_slices, *clean.shape[-2:])
        out = acc_slices
        for s, sub, slice_macs in slice_inspections(report.diffs, macs):
            protector = self.protector.for_slice(s, n_slices)
            if protector.inspect(sub, call.site, slice_macs):
                if out is acc_slices:
                    out = acc_slices.copy()
                out[s] = clean_slices[s]
                call.recovered_slices += 1
                call.recovered_macs += slice_macs
                if n_lanes is not None:
                    lane = self.protector.lane_of(s, n_slices)
                    call.recovered_slices_by_lane[lane] += 1
                    call.recovered_macs_by_lane[lane] += slice_macs
        call.acc = out.reshape(acc.shape)

    def replay(self, call: GemmCall) -> None:
        # A skipped clean call would have produced zero discrepancies at
        # every slice; hand the owning protector exactly those inspections.
        call.protected = True
        lead = call.out_shape[:-2]
        zero = np.zeros(lead + (call.out_shape[-1],), dtype=np.int64)
        n_slices = int(np.prod(lead)) if lead else 1
        for s, report, sub_macs in slice_inspections(zero, call.macs):
            self.protector.for_slice(s, n_slices).inspect(report, call.site, sub_macs)
