"""Pluggable GEMM backends behind the dispatch pipeline (DESIGN.md §11, §13).

Importing this package registers the five built-in backends:

- ``numpy-f64`` — the default float64-BLAS route (the exactness oracle),
- ``numpy-int`` — the seed engine's all-integer materialization route,
- ``blocked`` — multi-threaded cache-blocked int8 kernel (Numba when
  importable, exact tiled-f32 NumPy fallback otherwise),
- ``native`` — compiled C int8 kernel (``csrc/gemm_int8.c``) with
  prepacked weight panels; unavailable (and degraded past with a
  WARNING) on hosts without a C compiler or prebuilt extension,
- ``auto`` — per-shape-class autotuned dispatch over the available
  exact backends, winner table persisted to disk.

Every registered backend is automatically run through the differential
conformance suite in ``tests/test_backends.py``.
"""

from repro.dispatch.backends.auto import AutoBackend
from repro.dispatch.backends.base import GemmBackend
from repro.dispatch.backends.blocked import BlockedBackend
from repro.dispatch.backends.native import NativeBackend
from repro.dispatch.backends.numpy_ref import NumpyF64Backend, NumpyIntBackend
from repro.dispatch.backends.prepack import PREPACK, PrepackCache
from repro.dispatch.backends.registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    backend_names,
    close_all_backends,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
    unregister_backend,
    use_backend,
)

register_backend(NumpyF64Backend())
register_backend(NumpyIntBackend())
register_backend(BlockedBackend())
register_backend(NativeBackend())
register_backend(AutoBackend())

__all__ = [
    "GemmBackend",
    "NumpyF64Backend",
    "NumpyIntBackend",
    "BlockedBackend",
    "NativeBackend",
    "AutoBackend",
    "PREPACK",
    "PrepackCache",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "backend_names",
    "close_all_backends",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
    "use_backend",
]
