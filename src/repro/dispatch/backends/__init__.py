"""Pluggable GEMM backends behind the dispatch pipeline (DESIGN.md §11).

Importing this package registers the three built-in backends:

- ``numpy-f64`` — the default float64-BLAS route (the exactness oracle),
- ``numpy-int`` — the seed engine's all-integer materialization route,
- ``blocked`` — multi-threaded cache-blocked int8 kernel (Numba when
  importable, exact tiled-f32 NumPy fallback otherwise).

Every registered backend is automatically run through the differential
conformance suite in ``tests/test_backends.py``.
"""

from repro.dispatch.backends.base import GemmBackend
from repro.dispatch.backends.blocked import BlockedBackend
from repro.dispatch.backends.numpy_ref import NumpyF64Backend, NumpyIntBackend
from repro.dispatch.backends.registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    backend_names,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
    unregister_backend,
    use_backend,
)

register_backend(NumpyF64Backend())
register_backend(NumpyIntBackend())
register_backend(BlockedBackend())

__all__ = [
    "GemmBackend",
    "NumpyF64Backend",
    "NumpyIntBackend",
    "BlockedBackend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "backend_names",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
    "use_backend",
]
