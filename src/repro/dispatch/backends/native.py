"""``native``: compiled C int8 GEMM backend (DESIGN.md section 13).

The kernel lives in ``csrc/gemm_int8.c`` — cache-blocked int8 x int8 ->
int64 with a packed-B panel layout — and reaches the process two ways:

- an optional ``setup.py build_ext`` artifact (``repro/_native_gemm*.so``,
  built with ``-Wall -Werror`` in CI), loaded via ``ctypes`` — the module
  is never imported, so it needs no ``PyInit`` symbol;
- a lazy runtime compile: the first use shells out to ``cc`` (or
  ``$CC`` / ``gcc`` / ``clang``) and caches the shared library under a
  per-version disk directory (``$REPRO_CACHE/native-gemm-<version>/``),
  keyed by a digest of the source, flags, compiler, and ABI so stale
  caches rebuild instead of loading.

Hosts without a compiler (and builds where anything above fails) leave
the backend *unavailable* — ``available()`` is False,
``why_unavailable()`` says why, and the registry's resolution degrades
to the exact default with a WARNING (the PR 7 never-fails-open rule).
Nothing ever computes a wrong answer.

Execution: weight panels are packed once per buffer through the shared
:mod:`~repro.dispatch.backends.prepack` cache; activation-side operands
pack into scratch per call. ctypes releases the GIL for the kernel's
duration, so on multi-core hosts the row dimension is partitioned across
a thread pool exactly like ``BlockedBackend._sgemm``.

The backend is ``exact = True``: the C kernel accumulates int8 products
in int32 blocks of <= 2^15 terms (bounded by 2^15 * 2^14 = 2^29 < 2^31)
widened into int64 — bit-identical to the numpy-f64 oracle on every
input, held to it by the conformance suite in ``tests/test_backends.py``.
On AVX512-VNNI hosts the same source compiles to a ``vpdpbusd`` micro-
kernel (signed operands biased to unsigned, corrected exactly via
pack-time column sums) — still bit-identical, just ~5x the throughput.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Optional

import numpy as np

from repro import __version__
from repro.dispatch.backends.base import GemmBackend
from repro.dispatch.backends.prepack import PREPACK
from repro.utils.logging import get_logger

logger = get_logger("dispatch.backends.native")

#: Must match REPRO_GEMM_I8_ABI in csrc/gemm_int8.c; a loaded library
#: reporting anything else is stale and gets rebuilt (or skipped).
ABI_VERSION = 1

#: Explicit shared-library override (tests, exotic deploys).
ENV_LIB = "REPRO_NATIVE_GEMM_LIB"
#: Compiler override; falls back to $CC, then cc/gcc/clang on $PATH.
ENV_CC = "REPRO_NATIVE_GEMM_CC"
#: Kill switch: pretend no kernel can be built (degrade-path testing).
ENV_DISABLE = "REPRO_NO_NATIVE_GEMM"

_BASE_FLAGS = ("-O3", "-std=c99", "-fPIC", "-shared")

#: Minimum rows per thread before partitioned execution beats one call.
_MIN_ROWS_PER_THREAD = 64

_REPO_ROOT = Path(__file__).resolve().parents[4]
SOURCE_PATH = _REPO_ROOT / "csrc" / "gemm_int8.c"


def _cache_root() -> Path:
    root = os.environ.get("REPRO_CACHE")
    return Path(root) if root else Path.home() / ".cache" / "repro"


def build_dir() -> Path:
    """Per-version disk directory for runtime-compiled kernels."""
    return _cache_root() / f"native-gemm-{__version__}"


def _find_compiler() -> Optional[str]:
    for candidate in (os.environ.get(ENV_CC), os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate:
            path = shutil.which(candidate)
            if path:
                return path
    return None


def _prebuilt_extension() -> Optional[Path]:
    """The ``setup.py build_ext --inplace`` artifact, when present."""
    package_dir = Path(__file__).resolve().parents[2]
    for path in sorted(package_dir.glob("_native_gemm*.so")):
        return path
    return None


def _source_digest(source: bytes, compiler: str) -> str:
    h = hashlib.sha256()
    h.update(source)
    h.update(repr((_BASE_FLAGS, compiler, ABI_VERSION, platform.machine())).encode())
    return h.hexdigest()[:16]


def compile_kernel(source_path: Path, out_path: Path, compiler: str) -> None:
    """Compile the kernel to ``out_path`` (atomic: tmp file + replace).

    ``-march=native`` is attempted first and dropped when the compiler
    rejects it (minimal toolchains, cross builds). Any remaining failure
    raises with the compiler's stderr tail.
    """
    out_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = out_path.with_name(f"{out_path.name}.tmp.{os.getpid()}")
    last_stderr = ""
    try:
        for extra in (("-march=native",), ()):
            cmd = [compiler, *_BASE_FLAGS, *extra, "-o", str(tmp), str(source_path)]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode == 0:
                os.replace(tmp, out_path)
                return
            last_stderr = (proc.stderr or proc.stdout or "").strip()
    finally:
        if tmp.exists():
            tmp.unlink()
    raise RuntimeError(
        f"{compiler} failed to build {source_path.name}: {last_stderr[-500:]}"
    )


class _Kernel:
    """ctypes bindings over one loaded shared library (ABI-checked)."""

    def __init__(self, path: Path, origin: str) -> None:
        self.path = path
        self.origin = origin
        lib = ctypes.CDLL(str(path))
        lib.repro_gemm_i8_abi.restype = ctypes.c_int64
        lib.repro_gemm_i8_abi.argtypes = []
        abi = int(lib.repro_gemm_i8_abi())
        if abi != ABI_VERSION:
            raise RuntimeError(f"{path.name}: kernel ABI {abi} != {ABI_VERSION}")
        lib.repro_gemm_i8_panel_width.restype = ctypes.c_int64
        lib.repro_gemm_i8_panel_width.argtypes = []
        lib.repro_gemm_i8_packed_bytes.restype = ctypes.c_int64
        lib.repro_gemm_i8_packed_bytes.argtypes = [ctypes.c_int64, ctypes.c_int64]
        lib.repro_gemm_i8_pack_b.restype = None
        lib.repro_gemm_i8_pack_b.argtypes = [
            ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_void_p,
        ]
        lib.repro_gemm_i8_packed.restype = None
        lib.repro_gemm_i8_packed.argtypes = [
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, ctypes.c_void_p,
            ctypes.c_int64,
        ]
        self._lib = lib
        self.panel_width = int(lib.repro_gemm_i8_panel_width())
        # Optional export (added with the VNNI path): 0 = portable C,
        # 1 = AVX512-VNNI. Absent in older builds of the same ABI.
        try:
            lib.repro_gemm_i8_isa.restype = ctypes.c_int64
            lib.repro_gemm_i8_isa.argtypes = []
            self.isa = int(lib.repro_gemm_i8_isa())
        except AttributeError:
            self.isa = 0
        self._gemm = lib.repro_gemm_i8_packed  # bound once: hot path

    def pack_b(self, b_q: np.ndarray) -> np.ndarray:
        """The packed panel mirror of a C-contiguous (k, n) int8 matrix."""
        k, n = b_q.shape
        packed = np.empty(
            int(self._lib.repro_gemm_i8_packed_bytes(k, n)), dtype=np.int8
        )
        self._lib.repro_gemm_i8_pack_b(
            b_q.ctypes.data, k, n, n, packed.ctypes.data
        )
        return packed

    def gemm_rows(
        self,
        a2d: np.ndarray,
        packed: np.ndarray,
        k: int,
        n: int,
        row0: int,
        row1: int,
        out: np.ndarray,
    ) -> None:
        self._gemm(
            a2d.ctypes.data, packed.ctypes.data, k, n, k, row0, row1,
            out.ctypes.data, n,
        )


class NativeBackend(GemmBackend):
    """Compiled C int8 kernel with prepacked weight panels."""

    name = "native"
    exact = True
    bypass = True

    def __init__(self) -> None:
        self._kernel: Optional[_Kernel] = None
        self._checked = False
        self._error: Optional[str] = None
        self._n_threads = max(1, os.cpu_count() or 1)
        self._pool: Optional[ThreadPoolExecutor] = None

    # -------------------------------------------------------------- loading
    def _load(self) -> Optional[_Kernel]:
        if self._checked:
            return self._kernel
        self._checked = True
        if os.environ.get(ENV_DISABLE):
            self._error = f"disabled via ${ENV_DISABLE}"
            return None
        explicit = os.environ.get(ENV_LIB)
        if explicit:
            # An explicit selection is authoritative: a broken path is an
            # error to surface, not something to silently compile around.
            try:
                self._kernel = _Kernel(Path(explicit), origin="env")
            except Exception as exc:
                self._error = f"${ENV_LIB}={explicit!r} failed to load: {exc}"
            return self._kernel
        ext = _prebuilt_extension()
        if ext is not None:
            try:
                self._kernel = _Kernel(ext, origin="build_ext")
                return self._kernel
            except Exception as exc:  # stale ABI, wrong arch: fall through
                logger.warning("prebuilt %s unusable (%s); recompiling", ext.name, exc)
        if not SOURCE_PATH.exists():
            self._error = f"kernel source not found at {SOURCE_PATH}"
            return None
        compiler = _find_compiler()
        if compiler is None:
            self._error = "no C compiler found ($CC, cc, gcc, or clang)"
            return None
        source = SOURCE_PATH.read_bytes()
        lib_path = build_dir() / f"gemm_int8-{_source_digest(source, compiler)}.so"
        if lib_path.exists():
            try:
                self._kernel = _Kernel(lib_path, origin="cc-cache")
                return self._kernel
            except Exception as exc:
                logger.warning("cached %s unusable (%s); recompiling", lib_path.name, exc)
                lib_path.unlink(missing_ok=True)
        try:
            compile_kernel(SOURCE_PATH, lib_path, compiler)
            self._kernel = _Kernel(lib_path, origin="cc")
        except Exception as exc:
            self._error = str(exc)
            return None
        return self._kernel

    # -------------------------------------------------------------- probing
    def available(self) -> bool:
        return self._load() is not None

    def why_unavailable(self) -> Optional[str]:
        self._load()
        return self._error

    @property
    def threaded(self) -> bool:  # type: ignore[override]
        return self._n_threads > 1

    @property
    def fast(self) -> bool:
        """Whether the >= 3x ``backend_speedup`` claim applies: a compiled
        kernel plus a multi-core host for the row-parallel partition."""
        return self._load() is not None and self._n_threads > 1

    def kernel(self) -> str:
        kernel = self._load()
        if kernel is None:
            return "unavailable"
        isa = "+vnni" if kernel.isa == 1 else ""
        return f"c-int8{isa}[{kernel.origin}] x{self._n_threads}"

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -------------------------------------------------------------- compute
    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._n_threads,
                thread_name_prefix="repro-native-gemm",
            )
        return self._pool

    def _packed_b(self, kernel: _Kernel, b_q: np.ndarray, cached: bool) -> np.ndarray:
        b_q = np.ascontiguousarray(b_q)
        if not cached:
            return kernel.pack_b(b_q)
        return PREPACK.packed(b_q, f"native-nr{kernel.panel_width}", kernel.pack_b)

    def _gemm_2d(
        self,
        kernel: _Kernel,
        a2d: np.ndarray,
        packed: np.ndarray,
        k: int,
        n: int,
        out: np.ndarray,
    ) -> None:
        rows = a2d.shape[0]
        if self._n_threads <= 1 or rows < 2 * _MIN_ROWS_PER_THREAD:
            kernel.gemm_rows(a2d, packed, k, n, 0, rows, out)
            return
        chunk = -(-rows // self._n_threads)
        bounds = [(lo, min(lo + chunk, rows)) for lo in range(0, rows, chunk)]
        list(
            self._thread_pool().map(
                lambda s: kernel.gemm_rows(a2d, packed, k, n, s[0], s[1], out),
                bounds,
            )
        )

    def product_int64(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        b_f64: np.ndarray | None = None,
    ) -> np.ndarray:
        kernel = self._load()
        if (
            kernel is None
            or a_q.dtype != np.int8
            or b_q.dtype != np.int8
            or a_q.ndim < 2
        ):
            return a_q.astype(np.int64) @ b_q.astype(np.int64)
        k = a_q.shape[-1]
        if b_q.ndim == 2:
            lead = a_q.shape[:-1]
            rows = int(np.prod(lead))  # explicit: -1 is ambiguous at k=0
            a2d = np.ascontiguousarray(a_q.reshape(rows, k))
            n = b_q.shape[-1]
            # b_f64 is the executor's cached-weight signal: only long-lived
            # weight buffers earn a prepack-cache entry (activations churn).
            packed = self._packed_b(kernel, b_q, cached=b_f64 is not None)
            out = np.empty((rows, n), dtype=np.int64)
            self._gemm_2d(kernel, a2d, packed, k, n, out)
            return out.reshape(lead + (n,))
        if a_q.shape[:-2] != b_q.shape[:-2]:
            # General broadcasting never occurs on the engine's call paths;
            # stay exact through the widening matmul rather than guess.
            return a_q.astype(np.int64) @ b_q.astype(np.int64)
        m, n = a_q.shape[-2], b_q.shape[-1]
        n_slices = int(np.prod(a_q.shape[:-2]))
        a3 = np.ascontiguousarray(a_q.reshape(n_slices, m, k))
        b3 = np.ascontiguousarray(b_q.reshape(n_slices, k, n))
        out = np.empty((n_slices, m, n), dtype=np.int64)
        for s in range(n_slices):
            packed = kernel.pack_b(b3[s])
            self._gemm_2d(kernel, a3[s], packed, k, n, out[s])
        return out.reshape(a_q.shape[:-2] + (m, n))
