"""The ``GemmBackend`` protocol (DESIGN.md section 11).

A backend is a strategy object for the one hot primitive of the engine:
the quantized integer GEMM. Every backend produces the *same bits* for
the same call unless it explicitly declares ``exact = False``, in which
case the replay layer quarantines its traces (separate cache keys,
refused cross-backend resume) and campaign trial keys record its name.

Subclasses implement :meth:`product_int64` — the mathematically exact
``a @ b`` in int64 — and inherit :meth:`matmul_int32`, which applies the
int32 accumulator semantics (`wrap_int32`/`saturate_int32`) in exactly
one place so no backend can drift on overflow behaviour. Backends that
can produce the exact product natively in float64 (for the executor's
materialization-bypass route) override :meth:`matmul_f64`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.quant.gemm import INT32_MAX, saturate_int32, wrap_int32


class GemmBackend:
    """Base class / protocol for pluggable integer-GEMM kernels.

    Class attributes (capability flags, fixed per backend):

    - ``name``: registry key, also recorded in trial/trace provenance.
    - ``exact``: bit-identical to the ``numpy-f64`` oracle on every
      input. Non-exact backends are quarantined from replay-trace reuse
      and stamped into campaign trial keys.
    - ``threaded``: uses more than one thread for a single GEMM.
    - ``bypass``: supports the executor's materialization bypass — an
      exact float64 product via :meth:`matmul_f64` for overflow-free
      int8 calls, skipping the integer round trip.
    """

    name: str = "?"
    exact: bool = True
    threaded: bool = False
    bypass: bool = True

    # -------------------------------------------------------------- probing
    def available(self) -> bool:
        """Whether this backend can run in the current process."""
        return True

    def why_unavailable(self) -> Optional[str]:
        """Human-readable reason when :meth:`available` is False."""
        return None

    def kernel(self) -> str:
        """Short description of the kernel actually in use (diagnostics)."""
        return self.name

    def close(self) -> None:
        """Release process-level resources (thread pools, handles).

        Idempotent, and the backend must keep working after it — a
        closed pool is lazily recreated on the next call. The registry
        closes every registered backend at interpreter exit so forked or
        spawned campaign workers never leak kernel threads.
        """

    # -------------------------------------------------------------- compute
    def product_int64(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        b_f64: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact ``a_q @ b_q`` as int64 (no accumulator semantics applied).

        ``b_f64`` is an optional pre-converted float64 mirror of ``b_q``
        (weights cache one); backends routing through floating point may
        use it to skip a conversion, and must ignore it otherwise.
        """
        raise NotImplementedError

    def matmul_f64(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        b_f64: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact float64 product for the executor's bypass route.

        Only called for int8 operands whose accumulators provably fit in
        int32 (``k * 127^2 <= INT32_MAX``), so the default integer round
        trip is always correct; fast backends override it.
        """
        return self.product_int64(a_q, b_q, b_f64=b_f64).astype(np.float64)

    def matmul_int32(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        wraparound: bool = True,
        b_f64: np.ndarray | None = None,
    ) -> np.ndarray:
        """``a_q @ b_q`` with INT32 accumulator semantics.

        The overflow contract lives here, shared by every backend: int8
        operands with quantizer-range codes (``|code| <= 127``) whose
        accumulators cannot leave int32 range skip the wrap (it would be
        the identity); everything else goes through ``wrap_int32`` /
        ``saturate_int32`` exactly as the seed route did.
        """
        exact = self.product_int64(a_q, b_q, b_f64=b_f64)
        if (
            a_q.dtype == np.int8
            and b_q.dtype == np.int8
            and a_q.shape[-1] * 127 * 127 <= INT32_MAX
        ):
            return exact
        return wrap_int32(exact) if wraparound else saturate_int32(exact)
