"""Weight-prepack cache: backend-specific B mirrors packed once per buffer.

Weight GEMMs reuse the same quantized weight buffer for every call of a
campaign, yet before this cache each backend re-derived its preferred B
layout per call — the ``blocked`` backend re-cast the int8 codes to
float32, the ``native`` backend would have re-packed its column panels.
:class:`PrepackCache` memoizes those derived mirrors exactly like the
float64 mirror the engine already caches on
:class:`~repro.models.quantized.QuantizedWeight` (DESIGN.md section 13):
one entry per live weight buffer, keyed by object identity, dropped when
the array is garbage-collected, and **invalidated on mutation** — every
lookup re-checks a content fingerprint (full CRC up to 1 MiB, sampled
beyond) and repacks when the buffer changed underneath it.

The cache is registry-level infrastructure shared by every backend; a
backend opts in by calling :func:`packed_mirror` with its own packer
(keyed by name, so several backends can cache different mirrors of the
same buffer). Hit/miss/invalidation counters feed the
``prepack_hit_rate`` metric in ``BENCH_lanes.json``.
"""

from __future__ import annotations

import threading
import weakref
import zlib
from typing import Any, Callable

import numpy as np

#: Buffers up to this many bytes get a *full* CRC per lookup — exact
#: mutation detection, a few microseconds against the GEMM each pack
#: serves. Every weight in the repo's model zoo fits far under this.
_FULL_CRC_MAX = 1 << 20

#: Above ``_FULL_CRC_MAX`` the fingerprint samples the buffer's head,
#: middle, and tail instead (constant cost). That still catches resizes,
#: retypes, buffer swaps, and gross rewrites, but a surgical in-place
#: edit between the sampled windows of a >1 MiB buffer can evade it —
#: the engine never mutates weight codes in place (``QuantizedWeight``
#: materializes its float64 mirror once, on the same assumption), so
#: this is a belt-and-suspenders bound, not a load-bearing one.
_SAMPLE = 64


def _fingerprint(arr: np.ndarray) -> tuple:
    """Content token: identity of the buffer + CRC (full when small)."""
    data = arr.view(np.uint8).reshape(-1)
    n = data.size
    if n <= _FULL_CRC_MAX:
        sample = data.tobytes()
    else:
        mid = n // 2
        sample = (
            data[:_SAMPLE].tobytes()
            + data[mid : mid + _SAMPLE].tobytes()
            + data[n - _SAMPLE :].tobytes()
        )
    ptr = arr.__array_interface__["data"][0]
    return (ptr, arr.shape, arr.dtype.str, zlib.crc32(sample))


class PrepackCache:
    """Identity-keyed cache of backend-derived B mirrors.

    Entries hold a weakref to the source array so garbage collection
    (plus Python's id reuse) can never alias a dead buffer onto a live
    one, and a content fingerprint re-verified on every hit so in-place
    mutation repacks instead of silently serving stale panels.
    """

    def __init__(self) -> None:
        self._entries: dict[int, dict[str, Any]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def packed(
        self,
        b_q: np.ndarray,
        packer: str,
        pack: Callable[[np.ndarray], Any],
    ) -> Any:
        """The cached ``pack(b_q)`` for this buffer, repacking on mutation.

        Non-contiguous arrays are packed fresh every call (their byte
        sampling would be quadratic to do safely); the engine's weight
        buffers are always C-contiguous.
        """
        if not b_q.flags.c_contiguous:
            self.misses += 1
            return pack(b_q)
        key = id(b_q)
        fp = _fingerprint(b_q)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if entry["fp"] == fp:
                    mirror = entry["mirrors"].get(packer)
                    if mirror is not None:
                        self.hits += 1
                        return mirror
                else:
                    # The buffer mutated underneath us: drop every mirror.
                    entry["fp"] = fp
                    entry["mirrors"] = {}
                    self.invalidations += 1
        self.misses += 1
        mirror = pack(b_q)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry["ref"]() is not b_q:
                try:
                    ref = weakref.ref(b_q, lambda _, k=key: self._drop(k))
                except TypeError:  # pragma: no cover - ndarray subclasses
                    return mirror
                entry = {"ref": ref, "fp": fp, "mirrors": {}}
                self._entries[key] = entry
            if entry["fp"] == fp:
                entry["mirrors"][packer] = mirror
        return mirror

    def _drop(self, key: int) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def invalidate(self, b_q: np.ndarray) -> None:
        """Explicitly drop every cached mirror of ``b_q``."""
        self._drop(id(b_q))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        self.hits = self.misses = self.invalidations = 0

    def stats(self) -> dict[str, float]:
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "entries": len(self._entries),
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }


#: The process-wide cache every backend shares.
PREPACK = PrepackCache()


def packed_mirror(
    b_q: np.ndarray, packer: str, pack: Callable[[np.ndarray], Any]
) -> Any:
    """Module-level convenience over the shared :data:`PREPACK` cache."""
    return PREPACK.packed(b_q, packer, pack)
