"""``blocked``: multi-threaded cache-blocked int8 GEMM backend.

Two kernels behind one exact contract:

- **Numba** (when importable): a ``prange``-parallel int64-accumulating
  tiled kernel over the raw int8 codes — no float detour at all.
- **Tiled-NumPy fallback** (always available): k-blocked float32 BLAS.
  int8 products are bounded by ``128^2 = 16384``, so any partial sum of
  at most ``2^24 / 16384 = 1024`` of them is an integer of magnitude
  <= 2^24 — exactly representable in float32 regardless of BLAS FMA or
  summation order. Blocks accumulate in float64 (exact far past int32
  range), so the full product matches the int64 oracle bit-for-bit for
  *every* int8 input, including -128 codes. sgemm moves half the bytes
  of the default dgemm route and doubles the SIMD width, and on hosts
  with >= 2 cores the row dimension is additionally partitioned across a
  thread pool (BLAS releases the GIL).

Either way the backend stays ``exact``: the conformance suite in
``tests/test_backends.py`` holds it to bit-equality with ``numpy-f64``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np

from repro.dispatch.backends.base import GemmBackend
from repro.dispatch.backends.prepack import PREPACK

#: Largest k-block whose int8 partial sums stay exactly representable in
#: float32: block * 128^2 <= 2^24 (16 777 216, itself a power of two and
#: therefore exact).
F32_K_BLOCK = (1 << 24) // (128 * 128)

#: Minimum rows per thread before partitioned sgemm beats a single call;
#: below this the submit/join overhead dominates the GEMM itself.
_MIN_ROWS_PER_THREAD = 128


def _compile_numba_kernel(cache: bool = True):
    """Compile (and warm) the prange int8 GEMM; raises if Numba is absent
    or compilation fails — the caller treats any exception as 'no Numba'.

    ``cache=True`` persists the compiled kernel to Numba's on-disk cache
    so every campaign worker loads it instead of paying the full JIT
    compile; when the cache directory is unwritable (read-only installs,
    sandboxed workers) the compile/warm raises and the caller retries
    once with ``cache=False``.
    """
    from numba import njit, prange  # noqa: PLC0415 - optional dependency

    @njit(parallel=True, cache=cache)
    def matmul_i8(a, b):
        m, k = a.shape
        n = b.shape[1]
        out = np.zeros((m, n), dtype=np.int64)
        for i in prange(m):
            # saxpy order: stream rows of b, skip the (common) zero codes.
            for l in range(k):
                ail = np.int64(a[i, l])
                if ail != 0:
                    for j in range(n):
                        out[i, j] += ail * np.int64(b[l, j])
        return out

    warm = np.zeros((2, 3), dtype=np.int8)
    matmul_i8(warm, np.zeros((3, 2), dtype=np.int8))
    return matmul_i8


class BlockedBackend(GemmBackend):
    """Cache-blocked int8 kernel: Numba if importable, tiled-f32 fallback."""

    name = "blocked"
    exact = True
    bypass = True

    def __init__(self) -> None:
        self._numba_matmul = None
        self._numba_checked = False
        self._n_threads = max(1, os.cpu_count() or 1)
        self._pool: Optional[ThreadPoolExecutor] = None

    # -------------------------------------------------------------- probing
    @property
    def threaded(self) -> bool:  # type: ignore[override]
        return self._n_threads > 1

    @property
    def fast(self) -> bool:
        """Whether a genuinely parallel kernel is active (Numba or >= 2
        cores); single-core fallback hosts report speedups unasserted."""
        return self._numba() is not None or self._n_threads > 1

    def kernel(self) -> str:
        if self._numba() is not None:
            return f"numba-prange x{self._n_threads}"
        if self._n_threads > 1:
            return f"tiled-f32 x{self._n_threads} threads"
        return "tiled-f32"

    def _numba(self):
        if not self._numba_checked:
            self._numba_checked = True
            try:
                self._numba_matmul = _compile_numba_kernel(cache=True)
            except Exception:
                try:  # unwritable cache dir: recompile without persistence
                    self._numba_matmul = _compile_numba_kernel(cache=False)
                except Exception:
                    self._numba_matmul = None
        return self._numba_matmul

    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._n_threads,
                thread_name_prefix="repro-gemm",
            )
        return self._pool

    def close(self) -> None:
        """Shut the row-partition pool down (recreated lazily if the
        backend runs again); the registry calls this at interpreter exit
        so campaign workers never leak kernel threads."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -------------------------------------------------------------- compute
    def _sgemm(self, a32: np.ndarray, b32: np.ndarray) -> np.ndarray:
        """``(R, k) @ (k, n)`` in float32, row-partitioned across threads
        when the workload is large enough to amortize the pool."""
        rows = a32.shape[0]
        if self._n_threads <= 1 or rows < 2 * _MIN_ROWS_PER_THREAD:
            return a32 @ b32
        out = np.empty((rows, b32.shape[1]), dtype=np.float32)
        chunk = -(-rows // self._n_threads)
        bounds = [(lo, min(lo + chunk, rows)) for lo in range(0, rows, chunk)]
        list(
            self._thread_pool().map(
                lambda s: np.matmul(a32[s[0]:s[1]], b32, out=out[s[0]:s[1]]),
                bounds,
            )
        )
        return out

    def _product_f32(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        b_f64: np.ndarray | None,
        as_float: bool,
    ) -> np.ndarray:
        """Exact product of int8 operands via k-blocked float32 BLAS."""
        k = a_q.shape[-1]
        b_src = b_f64 if b_f64 is not None else b_q
        if b_f64 is not None:
            # The mirror's presence marks a long-lived weight buffer: cache
            # its float32 cast in the shared prepack cache (one conversion
            # per weight, not per call; invalidated on mutation).
            b32 = PREPACK.packed(
                b_q, "blocked-f32", lambda _b, src=b_src: src.astype(np.float32)
            )
        else:
            b32 = b_src.astype(np.float32)
        if k <= F32_K_BLOCK:
            if b32.ndim == 2 and a_q.ndim >= 2:
                lead = a_q.shape[:-1]
                rows = int(np.prod(lead))  # explicit: -1 is ambiguous at k=0
                flat = a_q.reshape(rows, k).astype(np.float32)
                prod = self._sgemm(flat, b32).reshape(lead + (b32.shape[-1],))
            else:
                prod = a_q.astype(np.float32) @ b32
            return prod.astype(np.float64) if as_float else prod.astype(np.int64)
        # Accumulate f32 blocks in float64: every block product is an exact
        # integer, and their running sum stays far below 2^53.
        a32 = a_q.astype(np.float32)
        acc: Optional[np.ndarray] = None
        for lo in range(0, k, F32_K_BLOCK):
            hi = min(lo + F32_K_BLOCK, k)
            block = (a32[..., lo:hi] @ b32[..., lo:hi, :]).astype(np.float64)
            acc = block if acc is None else acc + block
        return acc if as_float else acc.astype(np.int64)

    def product_int64(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        b_f64: np.ndarray | None = None,
    ) -> np.ndarray:
        if a_q.dtype == np.int8 and b_q.dtype == np.int8:
            nb = self._numba()
            if nb is not None and b_q.ndim == 2:
                lead = a_q.shape[:-1]
                rows = int(np.prod(lead))  # explicit: -1 is ambiguous at k=0
                flat = np.ascontiguousarray(a_q.reshape(rows, a_q.shape[-1]))
                out = nb(flat, np.ascontiguousarray(b_q))
                return out.reshape(lead + (b_q.shape[-1],))
            return self._product_f32(a_q, b_q, b_f64, as_float=False)
        return a_q.astype(np.int64) @ b_q.astype(np.int64)

    def matmul_f64(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        b_f64: np.ndarray | None = None,
    ) -> np.ndarray:
        if a_q.dtype == np.int8 and b_q.dtype == np.int8:
            return self._product_f32(a_q, b_q, b_f64, as_float=True)
        return super().matmul_f64(a_q, b_q, b_f64=b_f64)
