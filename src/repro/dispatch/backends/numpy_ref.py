"""The two NumPy reference backends (the seed engine's routes).

``numpy-f64`` is the oracle every other backend is differentially tested
against: int8 operands ride float64 BLAS (bit-exact — every partial sum
is bounded by ``k * 127^2``, far below 2^53), wider integer dtypes take
NumPy's int64 matmul. ``numpy-int`` is the seed engine's all-integer
route, previously selected by ``executor.fast_gemm = False``: always
materialize through int64 matmul, never bypass — kept as a benchmark
baseline and paranoia fallback.
"""

from __future__ import annotations

import numpy as np

from repro.dispatch.backends.base import GemmBackend


class NumpyF64Backend(GemmBackend):
    """Float64-BLAS route for int8 codes (the default, and the oracle)."""

    name = "numpy-f64"
    exact = True
    threaded = False
    bypass = True

    def kernel(self) -> str:
        return "f64-blas"

    def product_int64(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        b_f64: np.ndarray | None = None,
    ) -> np.ndarray:
        if a_q.dtype == np.int8 and b_q.dtype == np.int8:
            bf = b_f64 if b_f64 is not None else b_q.astype(np.float64)
            return (a_q.astype(np.float64) @ bf).astype(np.int64)
        return a_q.astype(np.int64) @ b_q.astype(np.int64)

    def matmul_f64(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        b_f64: np.ndarray | None = None,
    ) -> np.ndarray:
        bf = b_f64 if b_f64 is not None else b_q.astype(np.float64)
        return a_q.astype(np.float64) @ bf


class NumpyIntBackend(GemmBackend):
    """All-integer materialization (the old ``fast_gemm=False`` path)."""

    name = "numpy-int"
    exact = True
    threaded = False
    #: Never bypass: this backend exists to force the integer round trip
    #: on every call, exactly as ``fast_gemm=False`` did.
    bypass = False

    def kernel(self) -> str:
        return "int64-matmul"

    def product_int64(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        b_f64: np.ndarray | None = None,
    ) -> np.ndarray:
        return a_q.astype(np.int64) @ b_q.astype(np.int64)
