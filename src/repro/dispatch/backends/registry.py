"""Backend registry and selection (DESIGN.md section 11).

Selection order everywhere an executor is built::

    explicit argument > $REPRO_GEMM_BACKEND > "numpy-f64"

The environment variable is what reaches multiprocessing workers —
spawned children re-import this module and resolve it afresh, forked
children inherit both the variable and the parent's resolved executor.
Resolution *never* fails open with a wrong answer: an unknown or
unavailable backend falls back to the exact default with a WARNING
(``strict=True`` raises instead, for validation paths).
"""

from __future__ import annotations

import atexit
import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.dispatch.backends.base import GemmBackend
from repro.utils.logging import get_logger

logger = get_logger("dispatch.backends")

#: Environment variable naming the default backend for new executors.
ENV_VAR = "REPRO_GEMM_BACKEND"

#: The oracle backend: today's float64-BLAS route, always available.
DEFAULT_BACKEND = "numpy-f64"

_REGISTRY: dict[str, GemmBackend] = {}


def register_backend(backend: GemmBackend, replace: bool = False) -> GemmBackend:
    """Add ``backend`` to the registry under ``backend.name``.

    Registration is intentionally static (import-time); availability is a
    *runtime* probe so a registered-but-unavailable backend still shows up
    in ``repro backend list`` with its reason.
    """
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"GEMM backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend (test-only backends clean up after themselves),
    closing it so no resources outlive the registration."""
    backend = _REGISTRY.pop(name, None)
    if backend is not None:
        try:
            backend.close()
        except Exception:  # pragma: no cover - close must never mask exit
            logger.exception("closing GEMM backend %r failed", name)


@atexit.register
def close_all_backends() -> None:
    """Close every registered backend (thread pools, handles).

    Registered with :mod:`atexit` so campaign pool workers — forked or
    spawned — shut their kernel thread pools down instead of leaking
    them; safe to call any time, since backends recreate pools lazily.
    """
    for backend in list(_REGISTRY.values()):
        try:
            backend.close()
        except Exception:  # pragma: no cover - close must never mask exit
            logger.exception("closing GEMM backend %r failed", backend.name)


def backend_names() -> list[str]:
    """Registered names in registration order."""
    return list(_REGISTRY)


def list_backends() -> list[GemmBackend]:
    """Registered backend instances in registration order."""
    return list(_REGISTRY.values())


def get_backend(name: str) -> GemmBackend:
    """Strict lookup by name; raises ``KeyError`` with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown GEMM backend {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def resolve_backend(
    name: "str | GemmBackend | None" = None, strict: bool = False
) -> GemmBackend:
    """Resolve a backend selection to a usable instance.

    ``name`` may be a :class:`GemmBackend` instance (returned as-is when
    available), a registered name, or ``None`` — which falls through to
    ``$REPRO_GEMM_BACKEND`` and then the default. Unknown names and
    unavailable backends degrade to the exact default with a WARNING so a
    worker missing an optional dependency produces *slower* answers, never
    wrong ones. ``strict=True`` raises instead of falling back.
    """
    if isinstance(name, GemmBackend):
        if name.available():
            return name
        if strict:
            raise RuntimeError(
                f"GEMM backend {name.name!r} unavailable: {name.why_unavailable()}"
            )
        logger.warning(
            "GEMM backend %r unavailable (%s); falling back to %s",
            name.name, name.why_unavailable(), DEFAULT_BACKEND,
        )
        return _REGISTRY[DEFAULT_BACKEND]
    requested = name or os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    backend = _REGISTRY.get(requested)
    if backend is None:
        if strict:
            raise KeyError(
                f"unknown GEMM backend {requested!r}; "
                f"registered: {sorted(_REGISTRY)}"
            )
        logger.warning(
            "unknown GEMM backend %r; falling back to %s (registered: %s)",
            requested, DEFAULT_BACKEND, sorted(_REGISTRY),
        )
        return _REGISTRY[DEFAULT_BACKEND]
    if not backend.available():
        if strict:
            raise RuntimeError(
                f"GEMM backend {requested!r} unavailable: "
                f"{backend.why_unavailable()}"
            )
        logger.warning(
            "GEMM backend %r unavailable (%s); falling back to %s",
            requested, backend.why_unavailable(), DEFAULT_BACKEND,
        )
        return _REGISTRY[DEFAULT_BACKEND]
    return backend


@contextmanager
def use_backend(
    executor, name: "str | GemmBackend | None" = None
) -> Iterator[GemmBackend]:
    """Temporarily select a backend on ``executor`` (no-op for ``None``).

    The campaign layer runs trials through this so a per-spec or per-trial
    backend choice never leaks into the shared cached engine.
    """
    if name is None:
        yield executor.backend
        return
    saved = executor.backend
    executor.backend = resolve_backend(name)
    try:
        yield executor.backend
    finally:
        executor.backend = saved
