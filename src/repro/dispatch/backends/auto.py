"""``auto``: per-shape-class autotuned dispatch over the exact backends.

No single kernel wins every shape the campaign mix contains: float64
BLAS amortizes terribly on the tiny decode GEMMs but crushes a scalar
loop on wide prefill panels; the compiled ``native`` kernel is the other
way around. ``auto`` stops guessing — the first time a shape-class is
seen it **micro-times every available exact backend on the actual
operands** (interleaved best-of, same discipline as
``bench_trial_lanes``), routes the call to the winner, and persists the
winner table to disk (``$REPRO_CACHE/autotune/``, one file per repo
version) so the cost is paid once per host, not once per process.

Exactness argument (DESIGN.md section 13): candidates are restricted to
registered backends with ``exact = True``, and exact backends are —
by the PR 7 conformance contract — bit-identical on every input. A
router that only ever chooses among bit-identical kernels is itself
bit-identical to the oracle, so ``auto`` declares ``exact = True`` and
**trace keys, campaign dedup keys, and replay sharing are untouched**;
which kernel actually ran is a pure wall-clock detail.

A corrupt or unreadable winner table is ignored with a WARNING and
rebuilt (never fails open); a persisted winner that is no longer
registered or available re-tunes its class on next use.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro import __version__
from repro.dispatch.backends.base import GemmBackend
from repro.utils.logging import get_logger

logger = get_logger("dispatch.backends.auto")

#: Override the persisted winner-table path (tests, shared hosts).
ENV_TABLE = "REPRO_AUTOTUNE_CACHE"

#: Timing repeats per (class, candidate): first run warms (compile, pack
#: caches), the minimum of the rest is the score.
_REPEATS = 3


def _default_table_path() -> Path:
    override = os.environ.get(ENV_TABLE)
    if override:
        return Path(override)
    root = os.environ.get("REPRO_CACHE")
    base = Path(root) if root else Path.home() / ".cache" / "repro"
    return base / "autotune" / f"gemm-{__version__}.json"


def shape_class(kind: str, a_shape: tuple, b_shape: tuple) -> str:
    """Bucket a call for the winner table.

    (k, n) come from the weight/operand and are exact — the campaign mix
    reuses a handful of fixed weight shapes — while the row count (every
    leading axis of A flattened) varies with batch, lanes, and stage, so
    it buckets to the next power of two. ``kind`` separates the bypass
    (f64) and materialized (int32) routes, and stacked-B calls (QK^T/SV
    attention matmuls) tune apart from shared-weight panels.
    """
    k, n = int(b_shape[-2]), int(b_shape[-1])
    rows = 1
    for d in a_shape[:-1]:
        rows *= int(d)
    bucket = 1 << max(0, rows - 1).bit_length() if rows else 0
    stacked = ":stacked" if len(b_shape) > 2 else ""
    return f"{kind}:m{bucket}:k{k}:n{n}{stacked}"


class AutoBackend(GemmBackend):
    """Routes each call to the micro-timed winner for its shape-class."""

    name = "auto"
    exact = True
    bypass = True

    def __init__(self, table_path: "Path | str | None" = None) -> None:
        self._table_path = Path(table_path) if table_path else None
        self._classes: Optional[dict[str, dict]] = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------- the table
    @property
    def table_path(self) -> Path:
        return self._table_path or _default_table_path()

    def _load_table(self) -> dict[str, dict]:
        if self._classes is not None:
            return self._classes
        with self._lock:
            if self._classes is not None:
                return self._classes
            classes: dict[str, dict] = {}
            path = self.table_path
            if path.exists():
                try:
                    payload = json.loads(path.read_text())
                    if payload.get("abi") != 1:
                        raise ValueError(f"unknown table abi {payload.get('abi')!r}")
                    raw = payload["classes"]
                    if not isinstance(raw, dict):
                        raise ValueError("classes is not a mapping")
                    for cls, entry in raw.items():
                        if isinstance(entry, dict) and isinstance(
                            entry.get("winner"), str
                        ):
                            classes[cls] = entry
                except Exception as exc:
                    logger.warning(
                        "autotune table %s unreadable (%s); re-tuning from scratch",
                        path, exc,
                    )
                    classes = {}
            self._classes = classes
            return classes

    def _persist(self) -> None:
        """Atomically write the winner table (best effort: an unwritable
        cache dir costs re-tuning next process, never a wrong answer)."""
        path = self.table_path
        payload = {"abi": 1, "version": __version__, "classes": self._classes}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            os.replace(tmp, path)
        except OSError as exc:
            logger.warning("could not persist autotune table to %s: %s", path, exc)

    def classes(self) -> dict[str, dict]:
        """Snapshot of the winner table (class -> {winner, timings_us})."""
        return dict(self._load_table())

    def clear(self) -> None:
        """Drop the in-memory and on-disk winner table (tests)."""
        with self._lock:
            self._classes = {}
            self.table_path.unlink(missing_ok=True)

    # ------------------------------------------------------------ candidates
    def _candidates(self) -> list[GemmBackend]:
        from repro.dispatch.backends.registry import list_backends

        return [
            b
            for b in list_backends()
            if b.exact and b is not self and b.available()
        ]

    def _backend_by_name(self, name: str) -> Optional[GemmBackend]:
        from repro.dispatch.backends.registry import _REGISTRY

        backend = _REGISTRY.get(name)
        if backend is None or backend is self or not backend.exact:
            return None
        return backend if backend.available() else None

    # ---------------------------------------------------------------- tuning
    def _time_candidate(self, run) -> float:
        run()  # warm: first call may compile, spin up pools, fill caches
        best = float("inf")
        for _ in range(_REPEATS):
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
        return best

    def _tune_class(
        self,
        cls: str,
        kind: str,
        a_q: np.ndarray,
        b_q: np.ndarray,
        b_f64: np.ndarray | None,
    ) -> GemmBackend:
        candidates = self._candidates()
        timings: dict[str, float] = {}
        winner = None
        winner_t = float("inf")
        for backend in candidates:
            if kind == "f64":
                run = lambda b=backend: b.matmul_f64(a_q, b_q, b_f64=b_f64)
            else:
                run = lambda b=backend: b.matmul_int32(a_q, b_q, b_f64=b_f64)
            t = self._time_candidate(run)
            timings[backend.name] = t
            if t < winner_t:
                winner, winner_t = backend, t
        assert winner is not None, "numpy-f64 is always a candidate"
        with self._lock:
            self._classes[cls] = {
                "winner": winner.name,
                "timings_us": {
                    name: round(t * 1e6, 2) for name, t in timings.items()
                },
            }
            self._persist()
        logger.debug("autotuned %s -> %s", cls, winner.name)
        return winner

    def _route(
        self,
        kind: str,
        a_q: np.ndarray,
        b_q: np.ndarray,
        b_f64: np.ndarray | None,
    ) -> GemmBackend:
        classes = self._load_table()
        cls = shape_class(kind, a_q.shape, b_q.shape)
        entry = classes.get(cls)
        if entry is not None:
            backend = self._backend_by_name(entry["winner"])
            if backend is not None:
                return backend
            # Persisted winner vanished (uninstalled kernel, new host):
            # re-tune rather than degrade silently to a fixed choice.
        return self._tune_class(cls, kind, a_q, b_q, b_f64)

    def tune(self, ops: list[tuple]) -> dict[str, dict]:
        """Pre-tune every class in a harvested workload.

        ``ops`` is a list of ``(kind, a_q, b_q, b_f64)`` tuples — e.g.
        from :func:`harvest_workload` — with ``kind`` one of
        ``"f64"``/``"int32"``. Returns the resulting winner table.
        """
        for kind, a_q, b_q, b_f64 in ops:
            self._route(kind, a_q, b_q, b_f64)
        return self.classes()

    # --------------------------------------------------------------- probing
    def kernel(self) -> str:
        return f"auto({len(self._load_table())} tuned classes)"

    # --------------------------------------------------------------- compute
    def product_int64(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        b_f64: np.ndarray | None = None,
    ) -> np.ndarray:
        return self._route("int32", a_q, b_q, b_f64).product_int64(
            a_q, b_q, b_f64=b_f64
        )

    def matmul_int32(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        wraparound: bool = True,
        b_f64: np.ndarray | None = None,
    ) -> np.ndarray:
        # Delegate whole calls so the winner's fused paths (and the single
        # shared overflow contract in GemmBackend.matmul_int32) apply.
        return self._route("int32", a_q, b_q, b_f64).matmul_int32(
            a_q, b_q, wraparound=wraparound, b_f64=b_f64
        )

    def matmul_f64(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        b_f64: np.ndarray | None = None,
    ) -> np.ndarray:
        return self._route("f64", a_q, b_q, b_f64).matmul_f64(
            a_q, b_q, b_f64=b_f64
        )


class RecordingBackend:
    """Transparent proxy over a backend, harvesting one run's GEMM mix:
    the (route, operand shapes, mirror presence) of every kernel call that
    actually executes — replay-skipped calls never reach the backend, so
    the harvest is exactly the live campaign workload."""

    def __init__(self, inner: GemmBackend) -> None:
        self._inner = inner
        self.calls: list[tuple] = []

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def matmul_f64(self, a_q, b_q, b_f64=None):
        self.calls.append(("f64", a_q.shape, b_q.shape, b_f64 is not None))
        return self._inner.matmul_f64(a_q, b_q, b_f64=b_f64)

    def matmul_int32(self, a_q, b_q, wraparound=True, b_f64=None):
        self.calls.append(("int32", a_q.shape, b_q.shape, b_f64 is not None))
        return self._inner.matmul_int32(
            a_q, b_q, wraparound=wraparound, b_f64=b_f64
        )


def synthesize_ops(calls: list[tuple], seed: int = 0) -> list[tuple]:
    """Random int8 operands matching a harvested ``RecordingBackend`` log
    (the values don't affect kernel timing; the shapes and mirror
    presence do)."""
    rng = np.random.default_rng(seed)
    ops = []
    for kind, a_shape, b_shape, has_mirror in calls:
        a = rng.integers(-127, 128, size=a_shape, dtype=np.int8)
        b = rng.integers(-127, 128, size=b_shape, dtype=np.int8)
        ops.append((kind, a, b, b.astype(np.float64) if has_mirror else None))
    return ops


def harvest_workload(
    model: str = "opt-mini", lanes: int = 4, seed: int = 0
) -> list[tuple]:
    """The campaign GEMM mix of one lane-packed cell, as synthesized ops.

    Runs a small Q1.3-style cell (component O, prefill) of ``model``
    through the lane-packed executor with a :class:`RecordingBackend`
    proxy and synthesizes matching operands — the exact workload
    ``bench_trial_lanes`` measures ``backend_speedup`` on, reused by
    ``repro backend list --tune``. Imports are local: the evaluator stack
    depends on this package.
    """
    from repro.campaigns.lanes import evaluate_lane_pack
    from repro.campaigns.spec import ErrorSpec, SiteSpec, Trial
    from repro.characterization.evaluator import ModelEvaluator, TaskSizing
    from repro.training.zoo import get_pretrained

    evaluator = ModelEvaluator(
        get_pretrained(model),
        "perplexity",
        sizing=TaskSizing(lm_sequences=2, lm_seq_len=16),
        replay=True,
    )
    trials = [
        Trial(
            model=model,
            task="perplexity",
            site=SiteSpec.only(components=["O"], stages=["prefill"]),
            error=ErrorSpec.bitflip(1e-3, bits=(30,)),
            seed=s,
        )
        for s in range(lanes)
    ]
    _ = evaluator.clean_score  # property access: warm the fault-free baseline
    executor = evaluator.model.executor
    proxy = RecordingBackend(executor.backend)
    executor.backend = proxy
    try:
        evaluate_lane_pack(trials, evaluator)
    finally:
        executor.backend = proxy._inner
    return synthesize_ops(proxy.calls, seed=seed)
