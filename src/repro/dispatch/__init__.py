"""Unified GEMM dispatch pipeline (see DESIGN.md section 8).

Every GEMM of the quantized inference engine flows through one dispatch
layer as a :class:`GemmCall` visited by an ordered chain of
:class:`Instrument` objects — Quantize, Record, Inject, Protect, Cost —
with a uniform ``before`` / ``after`` / ``replay`` protocol. Accuracy
instrumentation (fault injection, ABFT protection) and hardware cost
accounting (:class:`CostInstrument`: systolic cycles, recovery work,
energy) therefore observe the *same* executed calls, instead of living in
disjoint code paths.
"""

from repro.dispatch.pipeline import (
    GemmCall,
    GemmCallRecord,
    Instrument,
    InjectInstrument,
    ProtectInstrument,
    QuantizeInstrument,
    RecordInstrument,
)
from repro.dispatch.cost import CostInstrument, CostSpec, LaneCostInstrument
from repro.dispatch.backends import (
    GemmBackend,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
    use_backend,
)

__all__ = [
    "GemmCall",
    "GemmCallRecord",
    "Instrument",
    "QuantizeInstrument",
    "RecordInstrument",
    "InjectInstrument",
    "ProtectInstrument",
    "CostInstrument",
    "CostSpec",
    "LaneCostInstrument",
    "GemmBackend",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_backend",
    "use_backend",
]
