"""Synthetic data substrate.

Stands in for the paper's evaluation corpora (WikiText-2, LAMBADA, X-Sum,
GSM8K, HellaSwag) with generator-built equivalents over a small integer
vocabulary; see DESIGN.md section 2 for the substitution rationale. All
generators are deterministic in (seed, parameters).
"""

from repro.data.markov import MarkovTextSource
from repro.data.tasks import (
    LanguageModelingData,
    LastTokenTask,
    SummarizationTask,
    ArithmeticTask,
    MultipleChoiceTask,
    build_lm_data,
    build_lambada_like,
    build_xsum_like,
    build_gsm8k_like,
    build_hellaswag_like,
)

__all__ = [
    "MarkovTextSource",
    "LanguageModelingData",
    "LastTokenTask",
    "SummarizationTask",
    "ArithmeticTask",
    "MultipleChoiceTask",
    "build_lm_data",
    "build_lambada_like",
    "build_xsum_like",
    "build_gsm8k_like",
    "build_hellaswag_like",
]
