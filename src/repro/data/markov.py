"""Synthetic text source: a sparse first-order Markov chain over token ids.

The WikiText-2 substitute. A random but *structured* transition matrix (each
token can be followed by only a few successors, with skewed probabilities)
yields sequences a small transformer can learn well below the uniform
entropy, so fault-injected perplexity has headroom to degrade — mirroring a
real LM on real text.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.seeding import derive_rng


@dataclass(frozen=True)
class MarkovSpec:
    """Parameters of the synthetic source."""

    vocab_size: int = 128
    branching: int = 4
    concentration: float = 0.35


class MarkovTextSource:
    """Deterministic sparse Markov chain text generator.

    Parameters
    ----------
    vocab_size:
        Token vocabulary size (token 0 is reserved as BOS).
    branching:
        Number of possible successors per token.
    concentration:
        Dirichlet concentration of successor probabilities; smaller values
        make transitions more deterministic (lower source entropy).
    seed:
        Generator seed; two sources with equal (spec, seed) are identical.
    """

    def __init__(
        self,
        vocab_size: int = 128,
        branching: int = 4,
        concentration: float = 0.35,
        seed: int = 0,
    ) -> None:
        if vocab_size < 4:
            raise ValueError("vocab_size must be at least 4")
        if not 1 <= branching < vocab_size:
            raise ValueError("branching must be in [1, vocab_size)")
        self.spec = MarkovSpec(vocab_size, branching, concentration)
        self.seed = seed
        rng = derive_rng(seed, "markov/structure")
        self.successors = np.stack(
            [
                rng.choice(vocab_size, size=branching, replace=False)
                for _ in range(vocab_size)
            ]
        )
        probs = rng.dirichlet([concentration] * branching, size=vocab_size)
        self.probs = probs / probs.sum(axis=1, keepdims=True)

    @property
    def vocab_size(self) -> int:
        return self.spec.vocab_size

    def sample_sequence(self, length: int, rng: np.random.Generator) -> np.ndarray:
        """One sequence of ``length`` tokens starting from BOS (token 0)."""
        seq = np.empty(length, dtype=np.int64)
        token = 0
        for i in range(length):
            seq[i] = token
            nxt = rng.choice(self.spec.branching, p=self.probs[token])
            token = int(self.successors[token, nxt])
        return seq

    def sample_batch(self, n: int, length: int, key: str = "batch") -> np.ndarray:
        """``n`` independent sequences, deterministic in (seed, key)."""
        rng = derive_rng(self.seed, f"markov/{key}")
        return np.stack([self.sample_sequence(length, rng) for _ in range(n)])

    def entropy_rate(self) -> float:
        """Stationary per-token entropy (nats) — the perplexity floor.

        Computed from the stationary distribution of the chain (power
        iteration) and the per-state transition entropies.
        """
        n = self.vocab_size
        transition = np.zeros((n, n))
        rows = np.repeat(np.arange(n), self.spec.branching)
        transition[rows, self.successors.reshape(-1)] += self.probs.reshape(-1)
        pi = np.full(n, 1.0 / n)
        for _ in range(500):
            nxt = pi @ transition
            if np.abs(nxt - pi).max() < 1e-12:
                pi = nxt
                break
            pi = nxt
        with np.errstate(divide="ignore", invalid="ignore"):
            log_p = np.where(self.probs > 0, np.log(self.probs), 0.0)
        per_state = -(self.probs * log_p).sum(axis=1)
        return float((pi * per_state).sum())
