"""Task builders standing in for the paper's benchmarks (Sec. III-C).

Every task is derived from the same Markov source the LM was trained on, so
a single trained model serves all benchmarks (as the paper's pretrained LLMs
do):

- **Language modeling** (WikiText-2 substitute): held-out sequences scored
  by perplexity.
- **Last-token prediction** (LAMBADA substitute): contexts whose final
  transition is near-deterministic in the source; accuracy of predicting
  the most likely successor.
- **Summarization** (X-Sum substitute): greedy generation from a prompt,
  scored by ROUGE-1 against the *fault-free* model's generation — the
  relative-degradation protocol the paper's Fig. 4(i)(k) uses.
- **Arithmetic-style exact match** (GSM8K substitute): greedy generation
  scored by exact sequence match against the fault-free generation, giving
  the same brittle all-or-nothing metric as GSM8K answer checking.
- **Multiple choice** (HellaSwag substitute): pick the true continuation of
  a context among distractors by total log-likelihood.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.markov import MarkovTextSource
from repro.utils.seeding import derive_rng


@dataclass
class LanguageModelingData:
    """Held-out sequences for perplexity evaluation."""

    sequences: list[np.ndarray]


@dataclass
class LastTokenTask:
    """Contexts plus the (near-deterministic) correct final token."""

    contexts: list[np.ndarray]
    targets: np.ndarray


@dataclass
class SummarizationTask:
    """Prompts for generation scored by ROUGE-1 vs. the clean model."""

    prompts: list[np.ndarray]
    gen_len: int


@dataclass
class ArithmeticTask:
    """Prompts for generation scored by exact match vs. the clean model."""

    prompts: list[np.ndarray]
    gen_len: int


@dataclass
class MultipleChoiceTask:
    """Contexts, candidate continuations, and the index of the true one."""

    contexts: list[np.ndarray]
    choices: list[list[np.ndarray]]
    labels: np.ndarray


def build_lm_data(
    source: MarkovTextSource, n_sequences: int = 8, seq_len: int = 48, key: str = "lm-eval"
) -> LanguageModelingData:
    """Held-out LM sequences (disjoint RNG stream from any training key)."""
    batch = source.sample_batch(n_sequences, seq_len, key=key)
    return LanguageModelingData(sequences=[row for row in batch])


def build_lambada_like(
    source: MarkovTextSource,
    n_examples: int = 32,
    context_len: int = 24,
    min_confidence: float = 0.6,
    key: str = "lambada",
) -> LastTokenTask:
    """Contexts ending in a state whose top successor dominates.

    The target is the argmax successor of the final context token; contexts
    whose final state is too uncertain (top transition probability below
    ``min_confidence``) are rejection-sampled away so that a fault-free
    model can score highly.
    """
    rng = derive_rng(source.seed, f"task/{key}")
    contexts: list[np.ndarray] = []
    targets: list[int] = []
    attempts = 0
    while len(contexts) < n_examples and attempts < n_examples * 200:
        attempts += 1
        seq = source.sample_sequence(context_len, rng)
        last = int(seq[-1])
        best = int(np.argmax(source.probs[last]))
        if source.probs[last, best] < min_confidence:
            continue
        contexts.append(seq)
        targets.append(int(source.successors[last, best]))
    if not contexts:
        raise RuntimeError(
            "no sufficiently deterministic states; lower min_confidence"
        )
    return LastTokenTask(contexts=contexts, targets=np.asarray(targets))


def build_xsum_like(
    source: MarkovTextSource,
    n_prompts: int = 8,
    prompt_len: int = 16,
    gen_len: int = 16,
    key: str = "xsum",
) -> SummarizationTask:
    batch = source.sample_batch(n_prompts, prompt_len, key=f"task/{key}")
    return SummarizationTask(prompts=[row for row in batch], gen_len=gen_len)


def build_gsm8k_like(
    source: MarkovTextSource,
    n_prompts: int = 12,
    prompt_len: int = 12,
    gen_len: int = 8,
    key: str = "gsm8k",
) -> ArithmeticTask:
    batch = source.sample_batch(n_prompts, prompt_len, key=f"task/{key}")
    return ArithmeticTask(prompts=[row for row in batch], gen_len=gen_len)


def build_hellaswag_like(
    source: MarkovTextSource,
    n_examples: int = 16,
    context_len: int = 16,
    cont_len: int = 8,
    n_choices: int = 4,
    key: str = "hellaswag",
) -> MultipleChoiceTask:
    """True continuation continues the chain; distractors restart it from
    random states, so only context-consistent scoring identifies the label."""
    rng = derive_rng(source.seed, f"task/{key}")
    contexts: list[np.ndarray] = []
    choices: list[list[np.ndarray]] = []
    labels: list[int] = []
    for _ in range(n_examples):
        seq = source.sample_sequence(context_len + cont_len, rng)
        context, true_cont = seq[:context_len], seq[context_len:]
        candidates = [true_cont]
        for _ in range(n_choices - 1):
            start = int(rng.integers(1, source.vocab_size))
            distractor = _continue_from(source, start, cont_len, rng)
            candidates.append(distractor)
        label = int(rng.integers(n_choices))
        candidates[0], candidates[label] = candidates[label], candidates[0]
        contexts.append(context)
        choices.append(candidates)
        labels.append(label)
    return MultipleChoiceTask(contexts=contexts, choices=choices, labels=np.asarray(labels))


def _continue_from(
    source: MarkovTextSource, start: int, length: int, rng: np.random.Generator
) -> np.ndarray:
    out = np.empty(length, dtype=np.int64)
    token = start
    for i in range(length):
        nxt = rng.choice(source.spec.branching, p=source.probs[token])
        token = int(source.successors[token, nxt])
        out[i] = token
    return out
