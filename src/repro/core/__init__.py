"""ReaLM core: the end-to-end algorithm/circuit co-design pipeline."""

from repro.core.methods import MethodSpec, METHODS, method_names
from repro.core.realm import ReaLMConfig, ReaLMPipeline, MethodRun, SweetSpotRow

__all__ = [
    "MethodSpec",
    "METHODS",
    "method_names",
    "ReaLMConfig",
    "ReaLMPipeline",
    "MethodRun",
    "SweetSpotRow",
]
