"""Method registry for the Fig. 9 comparison.

Each :class:`MethodSpec` couples a behavioral protector (for the ABFT
family) or an analytic recovery model (for the circuit-level baselines)
with its detection power overhead and compute-energy factor:

- **no-protection** — raw underscaled execution.
- **ThunderVolt** [13] — timing-speculation FFs; detected timing errors are
  replayed in place, so recovery charges a short per-error replay; the
  scheme corrects everything it detects (metric = fault-free).
- **DMR** [9], [10] — duplicate execution (compute x2); disagreement
  triggers re-execution of the affected output element (k MACs per error).
- **classical ABFT** [18], [46] — behavioral checksum protector; any
  discrepancy recovers the whole GEMM.
- **ApproxABFT** [45] — behavioral MSD-threshold protector, threshold
  calibrated from the characterization grid under the same budget.
- **statistical ABFT (ours)** — behavioral protector with fitted
  per-component critical regions.

Detection power overheads for the ABFT family come from the circuit model
(:mod:`repro.circuits`); for ThunderVolt/DMR they come from the Tab. I
profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abft.baselines import METHOD_PROFILES
from repro.circuits.area import ProtectionScheme
from repro.circuits.power import power_overhead
from repro.systolic.dataflow import Dataflow

#: MACs re-executed per detected error by the analytic baselines.
THUNDERVOLT_REPLAY_MACS = 8
#: DMR re-executes the faulty output element: one dot product of length k
#: (filled in at runtime with the model's d_model as the typical k).


@dataclass(frozen=True)
class MethodSpec:
    """Static description of one compared method."""

    key: str
    display: str
    behavioral: bool           # True: run with a checksum protector attached
    exact_correction: bool     # True: end metric equals the fault-free score
    compute_factor: float
    detection_overhead: float
    scheme: ProtectionScheme | None = None


def _abft_overhead(scheme: ProtectionScheme, n: int = 256) -> float:
    return power_overhead(n, Dataflow.WS, scheme)


METHODS: dict[str, MethodSpec] = {
    "no-protection": MethodSpec(
        key="no-protection",
        display="No protection",
        behavioral=False,
        exact_correction=False,
        compute_factor=1.0,
        detection_overhead=0.0,
        scheme=ProtectionScheme.NONE,
    ),
    "thundervolt": MethodSpec(
        key="thundervolt",
        display="ThunderVolt",
        behavioral=False,
        exact_correction=True,
        compute_factor=1.0,
        detection_overhead=METHOD_PROFILES["thundervolt"].power_overhead,
    ),
    "dmr": MethodSpec(
        key="dmr",
        display="DMR",
        behavioral=False,
        exact_correction=True,
        compute_factor=2.0,
        detection_overhead=0.0,
    ),
    "classical-abft": MethodSpec(
        key="classical-abft",
        display="Classical ABFT",
        behavioral=True,
        exact_correction=False,
        compute_factor=1.0,
        detection_overhead=_abft_overhead(ProtectionScheme.CLASSICAL),
        scheme=ProtectionScheme.CLASSICAL,
    ),
    "approx-abft": MethodSpec(
        key="approx-abft",
        display="ApproxABFT",
        behavioral=True,
        exact_correction=False,
        compute_factor=1.0,
        detection_overhead=_abft_overhead(ProtectionScheme.APPROX),
        scheme=ProtectionScheme.APPROX,
    ),
    "statistical-abft": MethodSpec(
        key="statistical-abft",
        display="Statistical ABFT (ours)",
        behavioral=True,
        exact_correction=False,
        compute_factor=1.0,
        detection_overhead=_abft_overhead(ProtectionScheme.STATISTICAL),
        scheme=ProtectionScheme.STATISTICAL,
    ),
}


def analytic_recovered_macs(method_key: str, injected_errors: int, d_model: int) -> int:
    """Replay MACs charged by the non-behavioral baselines per run.

    ThunderVolt replays a short fixed window per detected error; DMR
    re-executes the faulty output element — one dot product of length
    ``d_model`` (the model's typical reduction length). Behavioral methods
    measure recovery through their protector instead and charge nothing
    here. Single source of truth for ``ReaLMPipeline.evaluate_method_at``
    and the campaign executor's cost accounting.
    """
    spec = METHODS.get(method_key)
    if spec is None or spec.behavioral:
        return 0
    if method_key == "dmr":
        return injected_errors * d_model
    if method_key == "thundervolt":
        return injected_errors * THUNDERVOLT_REPLAY_MACS
    return 0


def method_names() -> list[str]:
    """Keys in the paper's Fig. 9 presentation order."""
    return [
        "no-protection",
        "thundervolt",
        "dmr",
        "classical-abft",
        "approx-abft",
        "statistical-abft",
    ]
