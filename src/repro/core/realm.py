"""The ReaLM pipeline: characterize -> calibrate -> protect -> save energy.

End-to-end reproduction of the paper's evaluation flow (Sec. VI):

1. **Characterize** each protected component with the Q1.4 magnitude/
   frequency grid under the acceptable-degradation budget.
2. **Calibrate** the statistical-ABFT critical regions (and the ApproxABFT
   MSD threshold) from the grid.
3. **Evaluate** every method across operating voltages: behavioral runs for
   the ABFT family (checksums, recovery decisions, surviving-error impact
   on the task metric), analytic recovery accounting for DMR/ThunderVolt.
4. **Search** the per-component sweet spot (min energy subject to budget)
   and report savings vs. the best prior-art method (Tab. II protocol).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.abft.protectors import (
    ApproxABFT,
    ClassicalABFT,
    Protector,
    StatisticalABFT,
)
from repro.abft.region import CriticalRegion, GridPoint, fit_critical_region
from repro.characterization.evaluator import ModelEvaluator, TaskSizing
from repro.characterization.fitting import fit_component_region, fit_msd_threshold
from repro.circuits.voltage import VoltageBerModel
from repro.dispatch.cost import CostInstrument
from repro.systolic.dataflow import Dataflow
from repro.core.methods import (
    METHODS,
    MethodSpec,
    analytic_recovered_macs,
    method_names,
)
from repro.energy.model import EnergyModel, EnergyParams
from repro.energy.sweetspot import VoltagePoint, find_sweet_spot
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel
from repro.errors.sites import Component, SiteFilter, component_kind
from repro.training.zoo import PretrainedBundle
from repro.utils.logging import get_logger

logger = get_logger("realm")

DEFAULT_VOLTAGES: tuple[float, ...] = (
    0.84, 0.82, 0.80, 0.78, 0.76, 0.74, 0.72, 0.70, 0.68, 0.66, 0.64, 0.62, 0.60,
)


@dataclass(frozen=True)
class ReaLMConfig:
    """Experiment configuration for one pipeline instance."""

    task: str = "perplexity"
    budget: float = 0.3  # paper: 0.3 perplexity increase / 0.5% accuracy drop
    voltages: tuple[float, ...] = DEFAULT_VOLTAGES
    seed: int = 0
    e_mac_pj: float = 0.30
    calib_mags: tuple[int, ...] = tuple(2**p for p in (4, 8, 12, 16, 20, 24))
    calib_freqs: tuple[int, ...] = (1, 4, 16, 64, 256)
    sizing: Optional[TaskSizing] = None
    #: Systolic-array geometry the cost instrument tiles every measured
    #: GEMM onto (cycles in :class:`MethodRun`; the paper synthesizes 256).
    array_size: int = 256
    dataflow: str = Dataflow.WS.value


@dataclass
class MethodRun:
    """One (method, component, voltage) evaluation result."""

    method: str
    component: str
    voltage: float
    ber: float
    metric: float
    degradation: float
    macs: int
    recovered_macs: int
    recovery_rate: float
    energy_j: float
    feasible: bool
    #: Measured systolic cycles of the protected components' GEMMs
    #: (compute + recovery), from the dispatch pipeline's cost instrument.
    cycles: int = 0

    def as_voltage_point(self) -> VoltagePoint:
        return VoltagePoint(
            voltage=self.voltage,
            ber=self.ber,
            metric=self.metric,
            degradation=self.degradation,
            recovery_rate=self.recovery_rate,
            energy_j=self.energy_j,
            feasible=self.feasible,
        )


@dataclass
class SweetSpotRow:
    """One row of the Tab. II reproduction."""

    component: str
    kind: str
    optimal_voltage: float
    energy_j: float
    baseline_energy_j: float
    baseline_method: str
    baseline_voltage: float
    saving_pct: float


class ReaLMPipeline:
    """Orchestrates calibration and method comparison for one model/task."""

    def __init__(
        self,
        bundle: PretrainedBundle,
        config: ReaLMConfig = ReaLMConfig(),
        evaluator: Optional[ModelEvaluator] = None,
    ) -> None:
        """``evaluator`` lets callers that already built one for this
        (bundle, task) share it instead of re-quantizing the model."""
        if evaluator is not None:
            if evaluator.task != config.task:
                raise ValueError(
                    f"evaluator task {evaluator.task!r} != config task {config.task!r}"
                )
            if evaluator.bundle is not bundle:
                raise ValueError(
                    "shared evaluator was built for a different model bundle"
                )
            if evaluator.sizing != (config.sizing or TaskSizing()):
                raise ValueError(
                    "shared evaluator was built with a different task sizing"
                )
        self.bundle = bundle
        self.config = config
        self.evaluator = evaluator or ModelEvaluator(bundle, config.task, sizing=config.sizing)
        self.voltage_model = VoltageBerModel()
        self.regions: dict[str, CriticalRegion] = {}
        self.grids: dict[str, list[GridPoint]] = {}
        self.msd_thresholds: dict[str, float] = {}

    # ----------------------------------------------------------- calibration
    def calibrate(self, components: Sequence[Component]) -> None:
        """Fit critical regions + ApproxABFT thresholds for ``components``."""
        for component in components:
            if component.value in self.regions:
                continue
            logger.info("calibrating %s (%s)...", component.value, self.config.task)
            region, points = fit_component_region(
                self.evaluator,
                component,
                budget=self.config.budget,
                mags=self.config.calib_mags,
                freqs=self.config.calib_freqs,
                seed=self.config.seed,
            )
            self.regions[component.value] = region
            self.grids[component.value] = points
            self.msd_thresholds[component.value] = fit_msd_threshold(
                points, self.config.budget
            )

    def approx_global_threshold(self) -> float:
        """The single MSD threshold ApproxABFT must deploy model-wide.

        ApproxABFT [45] assesses error significance per GEMM without any
        notion of component resilience, so one threshold serves the whole
        model and reliability forces it down to what the *most sensitive*
        component tolerates. We therefore calibrate the architecture's
        sensitive components and take the minimum threshold — on resilient
        components this conservatism causes exactly the unnecessary
        recoveries the paper criticizes (Sec. II-C).
        """
        sensitive = [
            c for c in self.bundle.config.components
            if component_kind(c) == "sensitive"
        ]
        self.calibrate(sensitive)
        candidates = [self.msd_thresholds[c.value] for c in sensitive]
        return min(candidates)

    def refit_for_budget(self, component: Component, budget: float) -> CriticalRegion:
        """Refit the component's region under a different budget using the
        cached grid (no new model runs) — the Fig. 10 trade-off knob."""
        if component.value not in self.grids:
            self.calibrate([component])
        return fit_critical_region(
            self.grids[component.value], budget, kind=component_kind(component)
        )

    # ------------------------------------------------------------ protectors
    def protector_for(
        self,
        method_key: str,
        components: Sequence[Component],
        region: Optional[CriticalRegion] = None,
    ) -> Optional[Protector]:
        """Fresh protector instance for a behavioral method."""
        spec = METHODS[method_key]
        if not spec.behavioral:
            return None
        if method_key == "classical-abft":
            return ClassicalABFT()
        if method_key == "approx-abft":
            return ApproxABFT(self.approx_global_threshold())
        if method_key == "statistical-abft":
            if region is not None and len(components) == 1:
                regions = {components[0].value: region}
            else:
                regions = {c.value: self.regions[c.value] for c in components}
            return StatisticalABFT(regions)
        raise KeyError(f"no protector for method {method_key!r}")

    # ------------------------------------------------------------ evaluation
    def _energy_model(self, spec: MethodSpec) -> EnergyModel:
        return EnergyModel(
            EnergyParams(
                e_mac_pj=self.config.e_mac_pj,
                detection_overhead=spec.detection_overhead,
                compute_factor=spec.compute_factor,
            )
        )

    def _as_components(
        self, component: Component | Sequence[Component] | None
    ) -> tuple[Component, ...]:
        """Normalize the protection scope: one component, a set, or the whole
        model (``None``)."""
        if component is None:
            return tuple(self.bundle.config.components)
        if isinstance(component, Component):
            return (component,)
        return tuple(component)

    def evaluate_method_at(
        self,
        method_key: str,
        component: Component | Sequence[Component] | None,
        voltage: float,
        region: Optional[CriticalRegion] = None,
    ) -> MethodRun:
        """Run one (method, protection scope, voltage) cell of Fig. 9."""
        components = self._as_components(component)
        spec = METHODS[method_key]
        if spec.behavioral and method_key != "classical-abft":
            self.calibrate(components)
        ber = self.voltage_model.ber(voltage)
        injector = ErrorInjector(
            BitFlipModel(ber),
            SiteFilter.only(components=components),
            seed=self.config.seed,
        )
        protector = (
            self.protector_for(method_key, components, region) if spec.behavioral else None
        )

        executor = self.evaluator.model.executor
        _ = self.evaluator.clean_score  # cache the baseline outside MAC accounting
        executor.reset_counters()
        # Hardware costs are *measured* on the run's actual GEMM dispatches
        # (DESIGN.md section 8), not reconstructed analytically: the cost
        # instrument tiles every executed/replayed call onto the configured
        # systolic array and keeps a per-site breakdown we scope to the
        # protected components.
        cost = CostInstrument(
            size=self.config.array_size, dataflow=Dataflow(self.config.dataflow)
        )
        score = self.evaluator.run(injector, protector, cost=cost)
        scoped = {c.value for c in components}
        in_scope = [
            site_cost
            for site, site_cost in cost.report.by_site.items()
            if site.component.value in scoped
        ]
        macs = sum(c.macs for c in in_scope)
        cycles = sum(c.total_cycles for c in in_scope)
        assert macs == sum(
            executor.macs_by_component.get(c.value, 0) for c in components
        ), "cost-instrument MACs diverged from the executor's counters"

        if spec.behavioral and protector is not None:
            recovered_macs = sum(c.recovered_macs for c in in_scope)
            recovery_rate = protector.stats.recovery_rate
        elif method_key in ("dmr", "thundervolt"):
            recovered_macs = analytic_recovered_macs(
                method_key, injector.stats.injected_errors, self.bundle.config.d_model
            )
            recovery_rate = min(injector.stats.corrupted_calls / max(injector.stats.targeted_calls, 1), 1.0)
        else:
            recovered_macs = 0
            recovery_rate = 0.0

        if spec.exact_correction:
            metric = self.evaluator.clean_score
        else:
            metric = score
        degradation = self.evaluator.degradation(metric)
        energy = self._energy_model(spec).total_j(macs, recovered_macs, voltage)
        scope = components[0].value if len(components) == 1 else "all"
        return MethodRun(
            method=method_key,
            component=scope,
            voltage=voltage,
            ber=ber,
            metric=metric,
            degradation=degradation,
            macs=macs,
            recovered_macs=recovered_macs,
            recovery_rate=recovery_rate,
            energy_j=energy,
            feasible=degradation <= self.config.budget,
            cycles=cycles,
        )

    def voltage_sweep(
        self,
        method_key: str,
        component: Component | Sequence[Component] | None,
        voltages: Optional[Sequence[float]] = None,
    ) -> list[MethodRun]:
        """One method across the voltage range (one Fig. 9 curve)."""
        voltages = voltages or self.config.voltages
        return [
            self.evaluate_method_at(method_key, component, v) for v in voltages
        ]

    def method_comparison(
        self,
        component: Component | Sequence[Component] | None,
        methods: Optional[Sequence[str]] = None,
        voltages: Optional[Sequence[float]] = None,
    ) -> dict[str, list[MethodRun]]:
        """All Fig. 9 curves for one protection scope."""
        methods = list(methods or method_names())
        return {m: self.voltage_sweep(m, component, voltages) for m in methods}

    # ------------------------------------------------------------ sweet spots
    def sweet_spot(
        self, component: Component, voltages: Optional[Sequence[float]] = None
    ) -> SweetSpotRow:
        """Tab. II row: our optimal voltage + savings vs. best prior art.

        The baseline is the best (minimum-energy feasible) point over the
        prior-art methods — classical ABFT and ApproxABFT — mirroring the
        paper's "compared to prior-art methods" accounting.
        """
        self.calibrate([component])
        ours = [r.as_voltage_point() for r in self.voltage_sweep("statistical-abft", component, voltages)]
        best_ours = find_sweet_spot(ours)

        baseline_best: Optional[tuple[str, VoltagePoint]] = None
        for method in ("classical-abft", "approx-abft"):
            points = [r.as_voltage_point() for r in self.voltage_sweep(method, component, voltages)]
            try:
                candidate = find_sweet_spot(points)
            except ValueError:
                continue
            if baseline_best is None or candidate.energy_j < baseline_best[1].energy_j:
                baseline_best = (method, candidate)
        if baseline_best is None:
            raise RuntimeError("no feasible baseline operating point")

        saving = 1.0 - best_ours.energy_j / baseline_best[1].energy_j
        return SweetSpotRow(
            component=component.value,
            kind=component_kind(component),
            optimal_voltage=best_ours.voltage,
            energy_j=best_ours.energy_j,
            baseline_energy_j=baseline_best[1].energy_j,
            baseline_method=baseline_best[0],
            baseline_voltage=baseline_best[1].voltage,
            saving_pct=100.0 * saving,
        )

    def sweet_spot_table(
        self, components: Sequence[Component], voltages: Optional[Sequence[float]] = None
    ) -> list[SweetSpotRow]:
        """The full Tab. II reproduction for this model."""
        return [self.sweet_spot(c, voltages) for c in components]

    # ------------------------------------------------------------- trade-off
    def tradeoff_curve(
        self,
        component: Component,
        budgets: Sequence[float],
        latency_voltage: float,
        voltages: Optional[Sequence[float]] = None,
    ) -> list[dict]:
        """Fig. 10: acceptable degradation vs. recovery cost and energy.

        For each budget the region is refit from the cached grid; recovery
        overhead is measured at ``latency_voltage`` and total energy at the
        budget's own optimal voltage.
        """
        self.calibrate([component])
        rows: list[dict] = []
        for budget in budgets:
            region = self.refit_for_budget(component, budget)
            at_v = self.evaluate_method_at(
                "statistical-abft", component, latency_voltage, region=region
            )
            sweep = [
                self.evaluate_method_at("statistical-abft", component, v, region=region)
                for v in (voltages or self.config.voltages)
            ]
            feasible = [
                r.as_voltage_point()
                for r in sweep
                if r.degradation <= budget
            ]
            best = min(feasible, key=lambda p: p.energy_j) if feasible else None
            rows.append(
                {
                    "budget": budget,
                    "recovery_rate_at_v": at_v.recovery_rate,
                    "recovery_macs_at_v": at_v.recovered_macs,
                    "recovery_overhead_at_v": (
                        at_v.recovered_macs / at_v.macs if at_v.macs else 0.0
                    ),
                    "optimal_voltage": best.voltage if best else float("nan"),
                    "total_energy_j": best.energy_j if best else float("nan"),
                }
            )
        return rows
