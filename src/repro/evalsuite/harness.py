"""Task harness running the quantized model over the benchmark suite.

The generation tasks (summarization / arithmetic) follow the paper's
degradation protocol: the *reference* output is produced once by the
fault-free model, cached by :class:`EvalHarness`, and every injected
configuration is scored against it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.data.tasks import (
    ArithmeticTask,
    LanguageModelingData,
    LastTokenTask,
    MultipleChoiceTask,
    SummarizationTask,
)
from repro.evalsuite.metrics import exact_match, perplexity_from_nll, rouge1
from repro.models.quantized import QuantizedTransformerLM


def evaluate_perplexity(model: QuantizedTransformerLM, data: LanguageModelingData) -> float:
    """Corpus perplexity (paper's WikiText-2 metric, lower is better)."""
    nlls = [model.sequence_nll(seq) for seq in data.sequences]
    return perplexity_from_nll(nlls)


def evaluate_last_token_accuracy(model: QuantizedTransformerLM, task: LastTokenTask) -> float:
    """LAMBADA-style final-token accuracy in percent (higher is better)."""
    correct = 0
    for context, target in zip(task.contexts, task.targets):
        logits = model.forward_full(context)
        if int(np.argmax(logits[-1])) == int(target):
            correct += 1
    return 100.0 * correct / len(task.contexts)


def evaluate_multiple_choice(model: QuantizedTransformerLM, task: MultipleChoiceTask) -> float:
    """HellaSwag-style accuracy by per-choice log-likelihood, in percent."""
    correct = 0
    for context, choices, label in zip(task.contexts, task.choices, task.labels):
        scores = [model.choice_logprob(context, cont) for cont in choices]
        if int(np.argmax(scores)) == int(label):
            correct += 1
    return 100.0 * correct / len(task.contexts)


@dataclass
class EvalHarness:
    """Caches fault-free reference generations for the generation tasks.

    Create one harness per (clean model, task suite); then call the
    ``*_score`` methods with injected/protected model configurations.
    """

    clean_model: QuantizedTransformerLM
    _ref_cache: dict[str, list[np.ndarray]] = field(default_factory=dict)

    @staticmethod
    def _prompt_digest(prompts: list[np.ndarray], gen_len: int) -> str:
        """Content key for a prompt set (``id()`` can be reused after GC)."""
        digest = hashlib.sha256(str(gen_len).encode())
        for prompt in prompts:
            arr = np.ascontiguousarray(prompt)
            digest.update(str((arr.shape, str(arr.dtype))).encode())
            digest.update(arr.tobytes())
        return digest.hexdigest()

    def _references(
        self, prompts: list[np.ndarray], gen_len: int
    ) -> list[np.ndarray]:
        key = self._prompt_digest(prompts, gen_len)
        if key not in self._ref_cache:
            saved_injector = self.clean_model.injector
            saved_protector = self.clean_model.protector
            self.clean_model.attach(None, None)
            try:
                self._ref_cache[key] = [
                    self.clean_model.generate(p, gen_len) for p in prompts
                ]
            finally:
                self.clean_model.attach(saved_injector, saved_protector)
        return self._ref_cache[key]

    def summarization_score(
        self, model: QuantizedTransformerLM, task: SummarizationTask
    ) -> float:
        """Mean ROUGE-1 vs. the clean model's generations (X-Sum metric)."""
        refs = self._references(task.prompts, task.gen_len)
        scores = [
            rouge1(model.generate(p, task.gen_len), ref)
            for p, ref in zip(task.prompts, refs)
        ]
        return float(np.mean(scores))

    def arithmetic_score(
        self, model: QuantizedTransformerLM, task: ArithmeticTask
    ) -> float:
        """Exact-match accuracy (%) vs. clean generations (GSM8K metric)."""
        refs = self._references(task.prompts, task.gen_len)
        matches = [
            exact_match(model.generate(p, task.gen_len), ref)
            for p, ref in zip(task.prompts, refs)
        ]
        return float(100.0 * np.mean(matches))
