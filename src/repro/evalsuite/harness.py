"""Task harness running the quantized model over the benchmark suite.

All evaluation functions feed the engine whole batches: sequences, prompts
and (example, choice) rows of a task are grouped by length and scored in
single batched forwards / lock-step generations instead of Python loops —
the tight loop the batched engine exists for. ``batched=False`` keeps the
per-sequence path available (benchmark baseline and debugging); both paths
produce bit-identical fault-free scores.

The generation tasks (summarization / arithmetic) follow the paper's
degradation protocol: the *reference* output is produced once by the
fault-free model, cached by :class:`EvalHarness`, and every injected
configuration is scored against it.

Every batched evaluation additionally accepts ``lanes=K`` (DESIGN.md
section 9): the task's batches are tiled K times along the batch axis — one
lane per packed trial — and scored in single lane-packed forwards, returning
one score per lane. Per-lane scores are assembled through exactly the same
Python arithmetic as the solo path (same float conversions, same ordering),
so a lane's score is bit-identical to scoring its trial alone.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.data.tasks import (
    ArithmeticTask,
    LanguageModelingData,
    LastTokenTask,
    MultipleChoiceTask,
    SummarizationTask,
)
from repro.evalsuite.metrics import exact_match, perplexity_from_nll, rouge1
from repro.models.quantized import QuantizedTransformerLM, batch_groups
from repro.telemetry.spans import span as _span


def _require_batched_lanes(batched: bool, lanes: int) -> None:
    if lanes < 1:
        raise ValueError("lane count must be >= 1")
    if lanes > 1 and not batched:
        raise ValueError("lane-packed scoring requires the batched path")


def evaluate_perplexity(
    model: QuantizedTransformerLM,
    data: LanguageModelingData,
    batched: bool = True,
    lanes: int = 1,
) -> float | np.ndarray:
    """Corpus perplexity (paper's WikiText-2 metric, lower is better).

    ``lanes > 1`` scores K packed trial lanes at once and returns one
    perplexity per lane (shape ``(lanes,)``).
    """
    _require_batched_lanes(batched, lanes)
    if not batched:
        nlls = [model.sequence_nll(seq) for seq in data.sequences]
        return perplexity_from_nll(nlls)
    per_lane = [[0.0] * len(data.sequences) for _ in range(lanes)]
    for idxs, batch in batch_groups(data.sequences):
        stacked = model.sequence_nll_batch(
            np.tile(batch, (lanes, 1)) if lanes > 1 else batch
        ).reshape(lanes, len(idxs))
        for j in range(lanes):
            for i, nll in zip(idxs, stacked[j]):
                per_lane[j][i] = float(nll)
    if lanes == 1:
        return perplexity_from_nll(per_lane[0])
    return np.array([perplexity_from_nll(row) for row in per_lane])


def evaluate_last_token_accuracy(
    model: QuantizedTransformerLM,
    task: LastTokenTask,
    batched: bool = True,
    lanes: int = 1,
) -> float | np.ndarray:
    """LAMBADA-style final-token accuracy in percent (higher is better)."""
    _require_batched_lanes(batched, lanes)
    targets = np.asarray(task.targets)
    if not batched:
        correct = 0
        for context, target in zip(task.contexts, task.targets):
            logits = model.forward_full(context)
            if int(np.argmax(logits[-1])) == int(target):
                correct += 1
        return 100.0 * correct / len(task.contexts)
    correct_by_lane = [0] * lanes
    for idxs, batch in batch_groups(task.contexts):
        logits = model.forward_full(
            np.tile(batch, (lanes, 1)) if lanes > 1 else batch
        )
        preds = np.argmax(logits[:, -1, :], axis=-1).reshape(lanes, len(idxs))
        for j in range(lanes):
            correct_by_lane[j] += int(np.sum(preds[j] == targets[np.asarray(idxs)]))
    if lanes == 1:
        return 100.0 * correct_by_lane[0] / len(task.contexts)
    return np.array([100.0 * c / len(task.contexts) for c in correct_by_lane])


def evaluate_multiple_choice(
    model: QuantizedTransformerLM,
    task: MultipleChoiceTask,
    batched: bool = True,
    lanes: int = 1,
) -> float | np.ndarray:
    """HellaSwag-style accuracy by per-choice log-likelihood, in percent."""
    _require_batched_lanes(batched, lanes)
    if not batched:
        correct = 0
        for context, choices, label in zip(task.contexts, task.choices, task.labels):
            scores = [model.choice_logprob(context, cont) for cont in choices]
            if int(np.argmax(scores)) == int(label):
                correct += 1
        return 100.0 * correct / len(task.contexts)
    # Flatten every (example, choice) pair into one row set, batch rows of
    # equal (context, continuation) shape, then regroup scores per example.
    rows: list[tuple[int, int, np.ndarray, np.ndarray]] = []
    for ei, (context, choices) in enumerate(zip(task.contexts, task.choices)):
        for ci, cont in enumerate(choices):
            rows.append((ei, ci, np.asarray(context), np.asarray(cont)))
    scores: list[dict[tuple[int, int], float]] = [{} for _ in range(lanes)]
    by_shape: dict[tuple[int, int], list[int]] = {}
    for ri, (_, _, context, cont) in enumerate(rows):
        by_shape.setdefault((context.shape[0], cont.shape[0]), []).append(ri)
    for row_idxs in by_shape.values():
        contexts = np.stack([rows[ri][2] for ri in row_idxs])
        conts = np.stack([rows[ri][3] for ri in row_idxs])
        if lanes > 1:
            contexts = np.tile(contexts, (lanes, 1))
            conts = np.tile(conts, (lanes, 1))
        logprobs = model.choice_logprob_batch(contexts, conts).reshape(
            lanes, len(row_idxs)
        )
        for j in range(lanes):
            for ri, lp in zip(row_idxs, logprobs[j]):
                scores[j][(rows[ri][0], rows[ri][1])] = float(lp)
    accuracy = []
    for lane_scores in scores:
        correct = 0
        for ei, (choices, label) in enumerate(zip(task.choices, task.labels)):
            per_choice = [lane_scores[(ei, ci)] for ci in range(len(choices))]
            if int(np.argmax(per_choice)) == int(label):
                correct += 1
        accuracy.append(100.0 * correct / len(task.contexts))
    return accuracy[0] if lanes == 1 else np.array(accuracy)


def _generate_all(
    model: QuantizedTransformerLM,
    prompts: list[np.ndarray],
    gen_len: int,
    batched: bool,
    lanes: int = 1,
) -> list[np.ndarray] | list[list[np.ndarray]]:
    """Generate continuations for every prompt, preserving input order.

    ``lanes > 1`` generates for K packed trial lanes in lock-step and
    returns one continuation list per lane.
    """
    _require_batched_lanes(batched, lanes)
    if not batched:
        return [model.generate(p, gen_len) for p in prompts]
    out: list[list[np.ndarray]] = [[None] * len(prompts) for _ in range(lanes)]  # type: ignore[list-item]
    for idxs, batch in batch_groups(prompts):
        gen = model.generate_batch(
            np.tile(batch, (lanes, 1)) if lanes > 1 else batch, gen_len
        ).reshape(lanes, len(idxs), -1)
        for j in range(lanes):
            for i, row in zip(idxs, gen[j]):
                out[j][i] = row
    return out[0] if lanes == 1 else out


@dataclass
class EvalHarness:
    """Caches fault-free reference generations for the generation tasks.

    Create one harness per (clean model, task suite); then call the
    ``*_score`` methods with injected/protected model configurations.

    Replay-transparent: generations run under whatever clean-trace replay
    session the model currently carries (DESIGN.md section 7) — the
    reference pass records the generation traces that injected scoring
    passes then resume from. ``ModelEvaluator`` scopes the session around
    ``score()``; without one, every forward runs the full route.
    """

    clean_model: QuantizedTransformerLM
    batched: bool = True
    _ref_cache: dict[str, list[np.ndarray]] = field(default_factory=dict)

    @staticmethod
    def _prompt_digest(prompts: list[np.ndarray], gen_len: int) -> str:
        """Content key for a prompt set (``id()`` can be reused after GC)."""
        digest = hashlib.sha256(str(gen_len).encode())
        for prompt in prompts:
            arr = np.ascontiguousarray(prompt)
            digest.update(str((arr.shape, str(arr.dtype))).encode())
            digest.update(arr.tobytes())
        return digest.hexdigest()

    def _references(
        self, prompts: list[np.ndarray], gen_len: int
    ) -> list[np.ndarray]:
        key = self._prompt_digest(prompts, gen_len)
        if key not in self._ref_cache:
            # Fault-free reference generations run with every instrument
            # detached — injector, protector, *and* cost: the reference
            # pass is part of the metric's definition, not of the trial
            # being measured, so its GEMMs must not be charged to an
            # attached CostInstrument (DESIGN.md section 8).
            executor = self.clean_model.executor
            saved_injector = self.clean_model.injector
            saved_protector = self.clean_model.protector
            saved_cost = executor.cost
            saved_trace = executor.trace
            self.clean_model.attach(None, None)
            executor.cost = None
            executor.trace = None
            try:
                with _span("harness.reference", prompts=len(prompts), gen_len=gen_len):
                    self._ref_cache[key] = _generate_all(
                        self.clean_model, prompts, gen_len, self.batched
                    )
            finally:
                self.clean_model.attach(saved_injector, saved_protector)
                executor.cost = saved_cost
                executor.trace = saved_trace
        return self._ref_cache[key]

    def summarization_score(
        self, model: QuantizedTransformerLM, task: SummarizationTask, lanes: int = 1
    ) -> float | np.ndarray:
        """Mean ROUGE-1 vs. the clean model's generations (X-Sum metric)."""
        refs = self._references(task.prompts, task.gen_len)
        if lanes == 1:
            outputs = _generate_all(model, task.prompts, task.gen_len, self.batched)
            scores = [rouge1(out, ref) for out, ref in zip(outputs, refs)]
            return float(np.mean(scores))
        by_lane = _generate_all(model, task.prompts, task.gen_len, self.batched, lanes)
        return np.array(
            [
                float(np.mean([rouge1(out, ref) for out, ref in zip(outputs, refs)]))
                for outputs in by_lane
            ]
        )

    def arithmetic_score(
        self, model: QuantizedTransformerLM, task: ArithmeticTask, lanes: int = 1
    ) -> float | np.ndarray:
        """Exact-match accuracy (%) vs. clean generations (GSM8K metric)."""
        refs = self._references(task.prompts, task.gen_len)
        if lanes == 1:
            outputs = _generate_all(model, task.prompts, task.gen_len, self.batched)
            matches = [exact_match(out, ref) for out, ref in zip(outputs, refs)]
            return float(100.0 * np.mean(matches))
        by_lane = _generate_all(model, task.prompts, task.gen_len, self.batched, lanes)
        return np.array(
            [
                float(100.0 * np.mean([exact_match(out, ref) for out, ref in zip(outputs, refs)]))
                for outputs in by_lane
            ]
        )
