"""Task harness running the quantized model over the benchmark suite.

All evaluation functions feed the engine whole batches: sequences, prompts
and (example, choice) rows of a task are grouped by length and scored in
single batched forwards / lock-step generations instead of Python loops —
the tight loop the batched engine exists for. ``batched=False`` keeps the
per-sequence path available (benchmark baseline and debugging); both paths
produce bit-identical fault-free scores.

The generation tasks (summarization / arithmetic) follow the paper's
degradation protocol: the *reference* output is produced once by the
fault-free model, cached by :class:`EvalHarness`, and every injected
configuration is scored against it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.data.tasks import (
    ArithmeticTask,
    LanguageModelingData,
    LastTokenTask,
    MultipleChoiceTask,
    SummarizationTask,
)
from repro.evalsuite.metrics import exact_match, perplexity_from_nll, rouge1
from repro.models.quantized import QuantizedTransformerLM, batch_groups


def evaluate_perplexity(
    model: QuantizedTransformerLM, data: LanguageModelingData, batched: bool = True
) -> float:
    """Corpus perplexity (paper's WikiText-2 metric, lower is better)."""
    if not batched:
        nlls = [model.sequence_nll(seq) for seq in data.sequences]
        return perplexity_from_nll(nlls)
    nlls = [0.0] * len(data.sequences)
    for idxs, batch in batch_groups(data.sequences):
        for i, nll in zip(idxs, model.sequence_nll_batch(batch)):
            nlls[i] = float(nll)
    return perplexity_from_nll(nlls)


def evaluate_last_token_accuracy(
    model: QuantizedTransformerLM, task: LastTokenTask, batched: bool = True
) -> float:
    """LAMBADA-style final-token accuracy in percent (higher is better)."""
    targets = np.asarray(task.targets)
    correct = 0
    if not batched:
        for context, target in zip(task.contexts, task.targets):
            logits = model.forward_full(context)
            if int(np.argmax(logits[-1])) == int(target):
                correct += 1
        return 100.0 * correct / len(task.contexts)
    for idxs, batch in batch_groups(task.contexts):
        logits = model.forward_full(batch)
        preds = np.argmax(logits[:, -1, :], axis=-1)
        correct += int(np.sum(preds == targets[np.asarray(idxs)]))
    return 100.0 * correct / len(task.contexts)


def evaluate_multiple_choice(
    model: QuantizedTransformerLM, task: MultipleChoiceTask, batched: bool = True
) -> float:
    """HellaSwag-style accuracy by per-choice log-likelihood, in percent."""
    if not batched:
        correct = 0
        for context, choices, label in zip(task.contexts, task.choices, task.labels):
            scores = [model.choice_logprob(context, cont) for cont in choices]
            if int(np.argmax(scores)) == int(label):
                correct += 1
        return 100.0 * correct / len(task.contexts)
    # Flatten every (example, choice) pair into one row set, batch rows of
    # equal (context, continuation) shape, then regroup scores per example.
    rows: list[tuple[int, int, np.ndarray, np.ndarray]] = []
    for ei, (context, choices) in enumerate(zip(task.contexts, task.choices)):
        for ci, cont in enumerate(choices):
            rows.append((ei, ci, np.asarray(context), np.asarray(cont)))
    scores: dict[tuple[int, int], float] = {}
    by_shape: dict[tuple[int, int], list[int]] = {}
    for ri, (_, _, context, cont) in enumerate(rows):
        by_shape.setdefault((context.shape[0], cont.shape[0]), []).append(ri)
    for row_idxs in by_shape.values():
        contexts = np.stack([rows[ri][2] for ri in row_idxs])
        conts = np.stack([rows[ri][3] for ri in row_idxs])
        logprobs = model.choice_logprob_batch(contexts, conts)
        for ri, lp in zip(row_idxs, logprobs):
            scores[(rows[ri][0], rows[ri][1])] = float(lp)
    correct = 0
    for ei, (choices, label) in enumerate(zip(task.choices, task.labels)):
        per_choice = [scores[(ei, ci)] for ci in range(len(choices))]
        if int(np.argmax(per_choice)) == int(label):
            correct += 1
    return 100.0 * correct / len(task.contexts)


def _generate_all(
    model: QuantizedTransformerLM,
    prompts: list[np.ndarray],
    gen_len: int,
    batched: bool,
) -> list[np.ndarray]:
    """Generate continuations for every prompt, preserving input order."""
    if not batched:
        return [model.generate(p, gen_len) for p in prompts]
    out: list[np.ndarray] = [None] * len(prompts)  # type: ignore[list-item]
    for idxs, batch in batch_groups(prompts):
        for i, row in zip(idxs, model.generate_batch(batch, gen_len)):
            out[i] = row
    return out


@dataclass
class EvalHarness:
    """Caches fault-free reference generations for the generation tasks.

    Create one harness per (clean model, task suite); then call the
    ``*_score`` methods with injected/protected model configurations.

    Replay-transparent: generations run under whatever clean-trace replay
    session the model currently carries (DESIGN.md section 7) — the
    reference pass records the generation traces that injected scoring
    passes then resume from. ``ModelEvaluator`` scopes the session around
    ``score()``; without one, every forward runs the full route.
    """

    clean_model: QuantizedTransformerLM
    batched: bool = True
    _ref_cache: dict[str, list[np.ndarray]] = field(default_factory=dict)

    @staticmethod
    def _prompt_digest(prompts: list[np.ndarray], gen_len: int) -> str:
        """Content key for a prompt set (``id()`` can be reused after GC)."""
        digest = hashlib.sha256(str(gen_len).encode())
        for prompt in prompts:
            arr = np.ascontiguousarray(prompt)
            digest.update(str((arr.shape, str(arr.dtype))).encode())
            digest.update(arr.tobytes())
        return digest.hexdigest()

    def _references(
        self, prompts: list[np.ndarray], gen_len: int
    ) -> list[np.ndarray]:
        key = self._prompt_digest(prompts, gen_len)
        if key not in self._ref_cache:
            # Fault-free reference generations run with every instrument
            # detached — injector, protector, *and* cost: the reference
            # pass is part of the metric's definition, not of the trial
            # being measured, so its GEMMs must not be charged to an
            # attached CostInstrument (DESIGN.md section 8).
            executor = self.clean_model.executor
            saved_injector = self.clean_model.injector
            saved_protector = self.clean_model.protector
            saved_cost = executor.cost
            self.clean_model.attach(None, None)
            executor.cost = None
            try:
                self._ref_cache[key] = _generate_all(
                    self.clean_model, prompts, gen_len, self.batched
                )
            finally:
                self.clean_model.attach(saved_injector, saved_protector)
                executor.cost = saved_cost
        return self._ref_cache[key]

    def summarization_score(
        self, model: QuantizedTransformerLM, task: SummarizationTask
    ) -> float:
        """Mean ROUGE-1 vs. the clean model's generations (X-Sum metric)."""
        refs = self._references(task.prompts, task.gen_len)
        outputs = _generate_all(model, task.prompts, task.gen_len, self.batched)
        scores = [rouge1(out, ref) for out, ref in zip(outputs, refs)]
        return float(np.mean(scores))

    def arithmetic_score(
        self, model: QuantizedTransformerLM, task: ArithmeticTask
    ) -> float:
        """Exact-match accuracy (%) vs. clean generations (GSM8K metric)."""
        refs = self._references(task.prompts, task.gen_len)
        outputs = _generate_all(model, task.prompts, task.gen_len, self.batched)
        matches = [exact_match(out, ref) for out, ref in zip(outputs, refs)]
        return float(100.0 * np.mean(matches))
