"""Scalar metrics: perplexity, accuracy, ROUGE-1, exact match.

ROUGE-1 is implemented from scratch (unigram-overlap F1 over token ids),
since no external evaluation package is available offline; for the
degradation-vs-reference protocol used here it is the exact analogue of the
paper's ROUGE-1 on X-Sum.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np

#: Perplexities are clipped here: with a tiny vocabulary, a destroyed model
#: cannot exceed vocab-sized perplexity anyway, and the cap keeps tables
#: readable (the paper similarly reports saturated values like 1e5).
PPL_CAP = 1e9


def perplexity_from_nll(nlls: Iterable[float]) -> float:
    """Perplexity = exp(mean per-token NLL), capped at :data:`PPL_CAP`."""
    values = np.asarray(list(nlls), dtype=np.float64)
    if values.size == 0:
        raise ValueError("no NLL values supplied")
    mean_nll = min(values.mean(), np.log(PPL_CAP))  # avoid exp overflow
    return float(min(np.exp(mean_nll), PPL_CAP))


def accuracy(predictions: Sequence[int], targets: Sequence[int]) -> float:
    """Fraction of exact scalar matches, in percent (paper reports %)."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.shape != targets.shape:
        raise ValueError("prediction/target shape mismatch")
    if predictions.size == 0:
        raise ValueError("empty prediction set")
    return float(100.0 * np.mean(predictions == targets))


def rouge1(candidate: Sequence[int], reference: Sequence[int]) -> float:
    """Unigram-overlap F1 between two token sequences, in [0, 100]."""
    cand = Counter(int(t) for t in candidate)
    ref = Counter(int(t) for t in reference)
    if not cand or not ref:
        return 0.0
    overlap = sum((cand & ref).values())
    if overlap == 0:
        return 0.0
    precision = overlap / sum(cand.values())
    recall = overlap / sum(ref.values())
    return 100.0 * 2.0 * precision * recall / (precision + recall)


def exact_match(candidate: Sequence[int], reference: Sequence[int]) -> bool:
    """True iff the two token sequences are identical."""
    candidate = np.asarray(candidate)
    reference = np.asarray(reference)
    return candidate.shape == reference.shape and bool(np.all(candidate == reference))
