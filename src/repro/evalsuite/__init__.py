"""Evaluation suite: metrics and the task harness (paper Sec. III-C)."""

from repro.evalsuite.metrics import perplexity_from_nll, rouge1, exact_match, accuracy
from repro.evalsuite.harness import (
    EvalHarness,
    evaluate_perplexity,
    evaluate_last_token_accuracy,
    evaluate_multiple_choice,
)

__all__ = [
    "perplexity_from_nll",
    "rouge1",
    "exact_match",
    "accuracy",
    "EvalHarness",
    "evaluate_perplexity",
    "evaluate_last_token_accuracy",
    "evaluate_multiple_choice",
]
