"""Float (training-time) transformer language model.

Implements both block variants of paper Fig. 2 on the autograd substrate:

- **OPT block**: pre-LayerNorm attention and a ReLU MLP (FC1 -> ReLU -> FC2),
  learned absolute positional embeddings.
- **LLaMA block**: pre-RMSNorm attention with rotary positions and a SiLU
  gated MLP (Down(SiLU(Gate(x)) * Up(x))).

The model is trained with :mod:`repro.training` and exported to the
quantized inference engine via :func:`repro.models.export.quantize_model`.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.nn import (
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    RMSNorm,
)
from repro.autograd.tensor import Tensor
from repro.models.config import ModelConfig
from repro.models.rope import rope_tables
from repro.utils.seeding import derive_rng


def outlier_gain(config: ModelConfig) -> np.ndarray:
    """Fixed per-channel gain reproducing LLM outlier channels (Fig. 5).

    The first ``outlier_channels`` embedding channels are amplified by
    ``outlier_scale``; the gain is constant (not trained) and applied
    identically by both execution paths right after the token embedding.
    """
    gain = np.ones(config.d_model)
    if config.outlier_channels:
        gain[: config.outlier_channels] = config.outlier_scale
    return gain


class MultiHeadAttention(Module):
    """Causal multi-head self-attention with separate Q/K/V/O projections.

    Projections are bias-free to match the quantized engine's GEMM-only
    view of each component.
    """

    def __init__(self, config: ModelConfig, rng: np.random.Generator) -> None:
        d = config.d_model
        self.config = config
        self.wq = Linear(d, d, rng, bias=False)
        self.wk = Linear(d, d, rng, bias=False)
        self.wv = Linear(d, d, rng, bias=False)
        self.wo = Linear(d, d, rng, bias=False)
        self.wo.weight.data = init.scaled_residual(rng, (d, d), config.n_layers)

    def forward(self, x: Tensor) -> Tensor:
        cfg = self.config
        seq_len = x.shape[-2]
        q = self._split_heads(self.wq(x), seq_len)
        k = self._split_heads(self.wk(x), seq_len)
        v = self._split_heads(self.wv(x), seq_len)
        if cfg.arch == "llama":
            cos, sin = rope_tables(seq_len, cfg.head_dim, cfg.rope_base)
            q = q * cos + self._rotate_half(q) * sin
            k = k * cos + self._rotate_half(k) * sin
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(cfg.head_dim))
        mask = np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)
        scores = scores.masked_fill(mask, -1e30)
        attn = F.softmax(scores, axis=-1)
        context = attn @ v
        return self.wo(self._merge_heads(context, seq_len))

    def _split_heads(self, x: Tensor, seq_len: int) -> Tensor:
        cfg = self.config
        batched = x.ndim == 3
        if batched:
            batch = x.shape[0]
            x = x.reshape(batch, seq_len, cfg.n_heads, cfg.head_dim)
            return x.transpose(0, 2, 1, 3)
        x = x.reshape(seq_len, cfg.n_heads, cfg.head_dim)
        return x.transpose(1, 0, 2)

    def _merge_heads(self, x: Tensor, seq_len: int) -> Tensor:
        cfg = self.config
        if x.ndim == 4:
            batch = x.shape[0]
            return x.transpose(0, 2, 1, 3).reshape(batch, seq_len, cfg.d_model)
        return x.transpose(1, 0, 2).reshape(seq_len, cfg.d_model)

    @staticmethod
    def _rotate_half(x: Tensor) -> Tensor:
        half = x.shape[-1] // 2
        lead = (slice(None),) * (x.ndim - 1)
        return Tensor.concatenate(
            [-x[lead + (slice(half, None),)], x[lead + (slice(None, half),)]],
            axis=x.ndim - 1,
        )


class OptMLP(Module):
    """FC1 -> ReLU -> FC2 (paper Fig. 2a)."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator) -> None:
        self.fc1 = Linear(config.d_model, config.d_ff, rng, bias=False)
        self.fc2 = Linear(config.d_ff, config.d_model, rng, bias=False)
        self.fc2.weight.data = init.scaled_residual(
            rng, (config.d_ff, config.d_model), config.n_layers
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(F.relu(self.fc1(x)))


class LlamaMLP(Module):
    """Down(SiLU(Gate(x)) * Up(x)) (paper Fig. 2b)."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator) -> None:
        self.gate = Linear(config.d_model, config.d_ff, rng, bias=False)
        self.up = Linear(config.d_model, config.d_ff, rng, bias=False)
        self.down = Linear(config.d_ff, config.d_model, rng, bias=False)
        self.down.weight.data = init.scaled_residual(
            rng, (config.d_ff, config.d_model), config.n_layers
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.down(F.silu(self.gate(x)) * self.up(x))


class TransformerBlock(Module):
    """One pre-norm residual block of either architecture."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator) -> None:
        self.config = config
        if config.arch == "opt":
            self.norm1 = LayerNorm(config.d_model, config.norm_eps)
            self.norm2 = LayerNorm(config.d_model, config.norm_eps)
            self.mlp: Module = OptMLP(config, rng)
        else:
            self.norm1 = RMSNorm(config.d_model, config.norm_eps)
            self.norm2 = RMSNorm(config.d_model, config.norm_eps)
            self.mlp = LlamaMLP(config, rng)
        self.attn = MultiHeadAttention(config, rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x


class FloatTransformerLM(Module):
    """Trainable tiny LM with tied input/output embeddings."""

    def __init__(self, config: ModelConfig, seed: int = 0) -> None:
        self.config = config
        rng = derive_rng(seed, "float-model")
        self.embed = Embedding(config.vocab_size, config.d_model, rng)
        if config.arch == "opt":
            self.pos_embed = Embedding(config.max_seq_len, config.d_model, rng)
        else:
            self.pos_embed = None
        self.blocks = ModuleList(
            TransformerBlock(config, derive_rng(seed, f"block/{i}"))
            for i in range(config.n_layers)
        )
        if config.arch == "opt":
            self.final_norm: Module = LayerNorm(config.d_model, config.norm_eps)
        else:
            self.final_norm = RMSNorm(config.d_model, config.norm_eps)
        self.lm_head = Linear(config.d_model, config.vocab_size, rng, bias=False)
        self._gain = outlier_gain(config)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """Logits of shape ``token_ids.shape + (vocab,)`` (causal LM)."""
        token_ids = np.asarray(token_ids)
        seq_len = token_ids.shape[-1]
        if seq_len > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {seq_len} exceeds max {self.config.max_seq_len}"
            )
        h = self.embed(token_ids)
        if self.pos_embed is not None:
            h = h + self.pos_embed(np.arange(seq_len))
        h = h * self._gain
        for block in self.blocks:
            h = block(h)
        h = self.final_norm(h)
        return self.lm_head(h)

    def loss(self, token_ids: np.ndarray) -> Tensor:
        """Next-token cross entropy over the sequence (shift by one)."""
        token_ids = np.asarray(token_ids)
        logits = self.forward(token_ids[..., :-1])
        return F.cross_entropy(logits, token_ids[..., 1:])
