"""W8A8 quantized inference engine with fault injection and ABFT hooks.

This is the device-under-test of the whole reproduction. Every matrix
multiplication of the transformer (paper Fig. 2 components Q, K, V, QK^T,
SV, O and the MLP GEMMs) executes as INT8 x INT8 -> INT32 through
:class:`GemmExecutor` — since the dispatch-pipeline refactor a thin
orchestrator over the ``repro.dispatch`` instrument chain (DESIGN.md
section 8) — which:

1. quantizes activations per-matrix (weights are pre-quantized per-channel),
2. computes the INT32 result with wraparound accumulators,
3. lets the attached :class:`~repro.errors.injector.ErrorInjector` corrupt
   the accumulators (transient timing faults),
4. lets the attached :class:`~repro.abft.protectors.Protector` inspect the
   checksum report and, if recovery is requested, replaces the output with a
   clean recomputation (charged to recovery cost), and
5. dequantizes back to float for the nonlinear functions (softmax, norms,
   activations), which stay in floating point per paper Sec. II-A.

The engine is batched end-to-end: every public entry point accepts either a
single token sequence or a ``(batch, seq)`` stack, hidden states carry a
leading batch axis, attention runs as head-batched stacked GEMMs, and the KV
cache decodes all sequences of a batch in lock-step. Exactly one injector
call is issued per (GemmSite, forward) regardless of batch size, and the
batched path is bit-identical to the single-sequence path on fault-free
inference — see DESIGN.md section 4 for the representation change and its
RNG-stream consequences.

The LM head and embeddings run in float: the paper's component taxonomy
covers only the block GEMMs, and vocabulary projection is typically executed
on protected vector units.
"""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.abft.protectors import Protector
from repro.dispatch.backends import GemmBackend, get_backend, resolve_backend
from repro.dispatch.pipeline import (
    GemmCall as DispatchCall,
    GemmCallRecord,
    InjectInstrument,
    Instrument,
    ProtectInstrument,
    QuantizeInstrument,
    RecordInstrument,
)
from repro.errors.injector import ErrorInjector
from repro.errors.sites import Component, GemmSite, Stage
from repro.models.config import ModelConfig
from repro.models.float_model import outlier_gain
from repro.models.kv_cache import KVCache, LayerKV
from repro.models.replay import (
    CleanTrace,
    ReplaySession,
    check_trace_backend,
    replay_skipped_calls,
    resume_layer,
)
from repro.models.rope import apply_rope_np, rope_tables
from repro.quant.gemm import INT32_MAX
from repro.quant.quantizer import (
    QuantParams,
    quantize_activation_blockwise,
    quantize_weight_per_channel,
    quantize_with_scale,
)
from repro.telemetry.spans import span as _span


def softmax_np(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax on plain arrays (inference path)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax_np(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def layer_norm_np(x: np.ndarray, weight: np.ndarray, bias: np.ndarray, eps: float) -> np.ndarray:
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    var = np.mean(centered * centered, axis=-1, keepdims=True)
    return centered / np.sqrt(var + eps) * weight + bias


def rms_norm_np(x: np.ndarray, weight: np.ndarray, eps: float) -> np.ndarray:
    ms = np.mean(x * x, axis=-1, keepdims=True)
    return x / np.sqrt(ms + eps) * weight


def silu_np(x: np.ndarray) -> np.ndarray:
    # overflow-safe sigmoid: exp of a non-positive argument only
    positive = x >= 0
    exp_neg = np.exp(np.where(positive, -x, x))
    sigmoid = np.where(positive, 1.0 / (1.0 + exp_neg), exp_neg / (1.0 + exp_neg))
    return x * sigmoid


def batch_groups(
    sequences: Sequence[np.ndarray],
) -> list[tuple[list[int], np.ndarray]]:
    """Group equal-length sequences into stackable batches.

    Returns ``(original_indices, stacked_batch)`` pairs covering every input
    sequence exactly once, grouped by length in first-seen order. Lock-step
    batched inference needs rectangular batches; callers scatter the batched
    results back through ``original_indices`` so output order never depends
    on the grouping.
    """
    by_length: dict[int, list[int]] = {}
    arrays = [np.asarray(seq) for seq in sequences]
    for idx, arr in enumerate(arrays):
        if arr.ndim != 1:
            raise ValueError("batch_groups expects 1-D token sequences")
        by_length.setdefault(arr.shape[0], []).append(idx)
    return [
        (idxs, np.stack([arrays[i] for i in idxs]))
        for idxs in by_length.values()
    ]


@dataclass
class QuantizedWeight:
    """Pre-quantized weight: int8 codes ``(in, out)`` + per-column scales.

    ``q_f64`` caches the codes as float64 for the executor's BLAS fast path
    (the codes are exact integers either way).
    """

    q: np.ndarray
    params: QuantParams

    def __post_init__(self) -> None:
        self.q_f64 = self.q.astype(np.float64)

    @classmethod
    def from_float(cls, w: np.ndarray) -> "QuantizedWeight":
        q, params = quantize_weight_per_channel(w)
        return cls(q=q, params=params)

    @classmethod
    def from_parts(
        cls, q: np.ndarray, params: QuantParams, q_f64: Optional[np.ndarray] = None
    ) -> "QuantizedWeight":
        """Rebuild from already-quantized parts (shared-memory attach path):
        skips ``__post_init__`` when ``q_f64`` is supplied so the float64
        cache stays a zero-copy view instead of being re-materialized."""
        obj = object.__new__(cls)
        obj.q = q
        obj.params = params
        obj.q_f64 = q_f64 if q_f64 is not None else q.astype(np.float64)
        return obj


class GemmExecutor:
    """Runs every protected/injectable GEMM of the quantized model.

    Since the dispatch-pipeline refactor (DESIGN.md section 8) the executor
    is a thin orchestrator: each ``linear``/``matmul`` builds a
    :class:`~repro.dispatch.pipeline.GemmCall` and pushes it through an
    ordered chain of instruments (Quantize, Record, Inject, Protect, Cost)
    rebuilt on every :meth:`attach`. The executor itself owns only the MAC
    accounting, the materialize-vs-bypass route decision, and the integer
    GEMM kernel; the chain with nothing attached is bit-identical to the
    pre-pipeline inline route (asserted in ``tests/test_dispatch.py``).

    Operands may carry leading batch/head axes: a weight GEMM takes
    ``(batch, m, k) @ (k, n)`` and an activation-activation GEMM takes
    ``(batch, heads, m, k) @ (batch, heads, k, n)``; either way the whole
    stack executes as **one** GEMM call — one injector consultation, one
    checksum report (broadcast over the leading axes), one recovery
    decision.

    Activation quantization modes:

    - ``"dynamic"`` — per-matrix scale from each stacked matrix's own
      max-abs, so a batch row quantizes exactly as it would alone (no
      calibration required; an ablation — a single large injected error
      inflates its matrix's scale and washes out every other value).
    - ``"calibrate"`` — transparent float pass that records per-site
      activation max-abs into ``scale_store``.
    - ``"static"`` — calibrated per-site scales; out-of-range values
      (e.g. injected faults flowing through) saturate at the int8 boundary,
      as deployed W8A8 inference does. This is the default experimental
      setting, matching the paper's SmoothQuant-style quantization.
    """

    def __init__(
        self,
        wraparound: bool = True,
        backend: "GemmBackend | str | None" = None,
    ) -> None:
        self.injector: Optional[ErrorInjector] = None
        self.protector: Optional[Protector] = None
        self.wraparound = wraparound
        #: The GEMM kernel strategy (DESIGN.md section 11). Resolution
        #: order: explicit argument > $REPRO_GEMM_BACKEND > "numpy-f64".
        #: Exact backends are bit-identical to each other; a non-exact one
        #: additionally segregates replay-trace keys and trial provenance.
        self.backend: GemmBackend = resolve_backend(backend)
        self.total_macs = 0
        self.macs_by_component: dict[str, int] = {}
        self.mode = "dynamic"
        self.scale_store: dict[str, float] = {}
        #: When set (trace recording), every executed GEMM appends a
        #: :class:`~repro.dispatch.pipeline.GemmCallRecord` so a later
        #: resumed forward can replay the skipped prefix's bookkeeping
        #: (DESIGN.md section 7).
        self.call_log: Optional[list[GemmCallRecord]] = None
        self._cost: Optional[Instrument] = None
        self._trace: Optional[Instrument] = None
        self._rebuild_chain()

    def _rebuild_chain(self) -> None:
        """Instrument chain in pipeline order (DESIGN.md section 8):
        Quantize, Record, Inject, Protect, Cost, Trace — each present only
        while its subject is attached."""
        chain: list[Instrument] = [QuantizeInstrument(self), RecordInstrument(self)]
        if self.injector is not None:
            chain.append(InjectInstrument(self.injector))
        if self.protector is not None:
            chain.append(ProtectInstrument(self.protector))
        if self._cost is not None:
            chain.append(self._cost)
        if self._trace is not None:
            chain.append(self._trace)
        self.instruments: tuple[Instrument, ...] = tuple(chain)

    @property
    def cost(self) -> Optional[Instrument]:
        """Hardware cost instrument (``None`` — the default — disables cost
        accounting entirely; the hot path never consults it)."""
        return self._cost

    @cost.setter
    def cost(self, instrument: Optional[Instrument]) -> None:
        self._cost = instrument
        self._rebuild_chain()

    @property
    def fast_gemm(self) -> bool:
        """Deprecated alias for the backend choice: ``True`` for any
        BLAS-routed backend, ``False`` for the all-integer ``numpy-int``
        route. Setting it maps onto ``numpy-f64``/``numpy-int``."""
        return self.backend.name != "numpy-int"

    @fast_gemm.setter
    def fast_gemm(self, value: bool) -> None:
        warnings.warn(
            "executor.fast_gemm is deprecated; select a GEMM backend instead "
            '(GemmExecutor(backend="numpy-f64"/"numpy-int") or executor.backend)',
            DeprecationWarning,
            stacklevel=2,
        )
        self.backend = get_backend("numpy-f64" if value else "numpy-int")

    @property
    def trace(self) -> Optional[Instrument]:
        """Wall-time trace instrument (DESIGN.md section 10; ``None`` — the
        default — means :meth:`dispatch` pays one ``is None`` test and the
        chain is exactly the pre-telemetry chain)."""
        return self._trace

    @trace.setter
    def trace(self, instrument: Optional[Instrument]) -> None:
        self._trace = instrument
        self._rebuild_chain()

    @staticmethod
    def _scale_key(site: GemmSite, operand: str) -> str:
        # Stage-independent: decode reuses the scales calibrated in prefill.
        return f"L{site.layer}/{site.component.value}/{operand}"

    def _quantize(
        self, x: np.ndarray, site: GemmSite, operand: str
    ) -> tuple[np.ndarray, QuantParams]:
        if self.mode == "static":
            key = self._scale_key(site, operand)
            scale = self.scale_store.get(key)
            if scale is None:
                raise RuntimeError(
                    f"no calibrated scale for {key}; run calibration first"
                )
            return quantize_with_scale(x, scale)
        if self.mode == "calibrate":
            key = self._scale_key(site, operand)
            observed = float(np.max(np.abs(x))) / 127.0
            self.scale_store[key] = max(self.scale_store.get(key, 0.0), observed, 1e-12)
        return quantize_activation_blockwise(x)

    def attach(
        self,
        injector: Optional[ErrorInjector] = None,
        protector: Optional[Protector] = None,
    ) -> None:
        self.injector = injector
        self.protector = protector
        self._rebuild_chain()

    def reset_counters(self) -> None:
        """Zero the MAC accounting (fresh energy measurement)."""
        self.total_macs = 0
        self.macs_by_component = {}

    def dispatch(self, call: DispatchCall) -> np.ndarray:
        """Run one GEMM call through the instrument chain.

        With a trace instrument attached the whole call is timed here —
        the only boundary both the materialized and bypass routes cross
        (the bypass kernel runs *after* the ``after`` hooks, so hook-level
        timing would miss it).
        """
        trace = self._trace
        if trace is None:
            return self._dispatch(call)
        t0 = time.perf_counter()
        out = self._dispatch(call)
        trace.observe(call, time.perf_counter() - t0)
        return out

    def _dispatch(self, call: DispatchCall) -> np.ndarray:
        """The untimed dispatch route.

        ``before`` hooks quantize/log the call and vote on materialization;
        the executor charges the MACs and picks the route; ``after`` hooks
        then corrupt, protect, and cost-account the result. The bypass
        route (nothing needs integer accumulators and the int8 reduction
        cannot leave int32 range) runs the GEMM on the BLAS pipeline and
        dequantizes directly — bit-identical to the integer route.
        """
        for instrument in self.instruments:
            instrument.before(call)
        self.total_macs += call.macs
        key = call.site.component.value
        self.macs_by_component[key] = self.macs_by_component.get(key, 0) + call.macs
        a_q, b_q = call.a_q, call.b_q
        backend = call.backend if call.backend is not None else self.backend
        no_overflow = (
            backend.bypass
            and a_q.dtype == np.int8
            and b_q.dtype == np.int8
            and a_q.shape[-1] * 127 * 127 <= INT32_MAX
        )
        if no_overflow and not call.need_int:
            for instrument in self.instruments:
                instrument.after(call)  # bookkeeping only: call.acc is None
            return backend.matmul_f64(a_q, b_q, b_f64=call.b_f64) * call.out_scale
        call.clean = backend.matmul_int32(
            a_q, b_q, wraparound=self.wraparound, b_f64=call.b_f64
        )
        call.acc = call.clean
        for instrument in self.instruments:
            instrument.after(call)
        return call.acc.astype(np.float64) * call.out_scale

    def replay_call(self, site: GemmSite, macs: int, shape: tuple[int, ...]) -> None:
        """Replay the bookkeeping of one skipped clean GEMM (DESIGN.md
        section 7): charge the MACs and hand every instrument its
        ``replay`` hook — RNG-counter advance, zero-discrepancy protector
        inspections, hardware cost — so a resumed forward is
        indistinguishable from a full one."""
        call = DispatchCall(site=site, macs=macs, out_shape=shape, replayed=True)
        self.total_macs += macs
        key = site.component.value
        self.macs_by_component[key] = self.macs_by_component.get(key, 0) + macs
        trace = self._trace
        if trace is None:
            for instrument in self.instruments:
                instrument.replay(call)
            return
        t0 = time.perf_counter()
        for instrument in self.instruments:
            instrument.replay(call)
        trace.observe_replay(call, time.perf_counter() - t0)

    def linear(self, x: np.ndarray, weight: QuantizedWeight, site: GemmSite) -> np.ndarray:
        """Weight GEMM ``x @ W`` with ``x`` of shape ``(..., m, in)``."""
        return self.dispatch(DispatchCall(site=site, kind="linear", a=x, weight=weight))

    def matmul(self, a: np.ndarray, b: np.ndarray, site: GemmSite) -> np.ndarray:
        """Activation-activation GEMM (QK^T, SV) with stacked operands."""
        return self.dispatch(DispatchCall(site=site, kind="matmul", a=a, b=b))


class QuantizedTransformerLM:
    """Quantized inference engine built from trained float weights.

    Token inputs may be a single 1-D sequence or a 2-D ``(batch, seq)``
    stack; outputs mirror the input rank. Internally everything runs
    batched (a single sequence is a batch of one), and fault-free results
    are bit-identical either way.

    Parameters
    ----------
    config:
        Shared :class:`ModelConfig`.
    state:
        ``FloatTransformerLM.state_dict()`` arrays.
    """

    def __init__(self, config: ModelConfig, state: dict[str, np.ndarray]) -> None:
        self._init_runtime(config)
        self.embed = state["embed.weight"]
        self.pos_embed = state.get("pos_embed.weight")
        self.lm_head = state["lm_head.weight"]
        self.final_norm_w = state["final_norm.weight"]
        self.final_norm_b = state.get("final_norm.bias")
        self.layers: list[dict[str, object]] = []
        for i in range(config.n_layers):
            prefix = f"blocks.{i}"
            layer: dict[str, object] = {
                "norm1_w": state[f"{prefix}.norm1.weight"],
                "norm2_w": state[f"{prefix}.norm2.weight"],
                "wq": QuantizedWeight.from_float(state[f"{prefix}.attn.wq.weight"]),
                "wk": QuantizedWeight.from_float(state[f"{prefix}.attn.wk.weight"]),
                "wv": QuantizedWeight.from_float(state[f"{prefix}.attn.wv.weight"]),
                "wo": QuantizedWeight.from_float(state[f"{prefix}.attn.wo.weight"]),
            }
            if config.arch == "opt":
                layer["norm1_b"] = state[f"{prefix}.norm1.bias"]
                layer["norm2_b"] = state[f"{prefix}.norm2.bias"]
                layer["fc1"] = QuantizedWeight.from_float(state[f"{prefix}.mlp.fc1.weight"])
                layer["fc2"] = QuantizedWeight.from_float(state[f"{prefix}.mlp.fc2.weight"])
            else:
                layer["gate"] = QuantizedWeight.from_float(state[f"{prefix}.mlp.gate.weight"])
                layer["up"] = QuantizedWeight.from_float(state[f"{prefix}.mlp.up.weight"])
                layer["down"] = QuantizedWeight.from_float(state[f"{prefix}.mlp.down.weight"])
            self.layers.append(layer)

    # ------------------------------------------------------------- plumbing
    def attach(
        self,
        injector: Optional[ErrorInjector] = None,
        protector: Optional[Protector] = None,
    ) -> None:
        """Attach/replace the error injector and ABFT protector."""
        self.executor.attach(injector, protector)

    @property
    def injector(self) -> Optional[ErrorInjector]:
        return self.executor.injector

    @property
    def protector(self) -> Optional[Protector]:
        return self.executor.protector

    def _init_runtime(self, config: ModelConfig) -> None:
        """Non-weight runtime state, shared with the shared-memory attach
        path (``repro.models.sharing.attach_model``) so a worker-rebuilt
        engine can never silently miss an attribute added here."""
        self.config = config
        self.executor = GemmExecutor()
        #: Active clean-trace replay session (see DESIGN.md section 7);
        #: managed by :meth:`replay_into`, ``None`` disables replay.
        self.replay: Optional[ReplaySession] = None
        #: Lane-packed execution width (see DESIGN.md section 9): token
        #: batches are ``lane_split`` stacked trial lanes sharing one
        #: forward. Managed by :meth:`lanes`; ``1`` means normal execution.
        self.lane_split: int = 1
        self._gain = outlier_gain(config)

    def _empty_cache(self, batch: int) -> KVCache:
        """A zero-length KV cache for ``batch`` sequences (prefill start)."""
        return KVCache(
            layers=[
                LayerKV(
                    k=np.empty((batch, self.config.n_heads, 0, self.config.head_dim)),
                    v=np.empty((batch, self.config.n_heads, 0, self.config.head_dim)),
                )
                for _ in self.layers
            ]
        )

    @contextmanager
    def replay_into(self, session: Optional[ReplaySession]):
        """Scope a clean-trace replay session onto this (possibly shared)
        engine; restores the previous session on exit. ``None`` scopes
        replay *off* — the seed-equivalent full-forward route."""
        saved = self.replay
        self.replay = session
        try:
            yield self
        finally:
            self.replay = saved

    @contextmanager
    def lanes(self, n: int):
        """Scope lane-packed execution onto this (possibly shared) engine.

        While active, token batches are interpreted as ``n`` stacked trial
        lanes (lane j owns the j-th contiguous block of batch rows), which
        lets the replay engine resume a packed forward from the per-lane
        clean trace (see DESIGN.md section 9). The caller is responsible
        for attaching matching lane-aware instruments
        (:class:`~repro.errors.injector.LaneInjector`, ...).
        """
        if n < 1:
            raise ValueError("lane count must be >= 1")
        saved = self.lane_split
        self.lane_split = n
        try:
            yield self
        finally:
            self.lane_split = saved

    @staticmethod
    def _as_batch(token_ids: np.ndarray) -> tuple[np.ndarray, bool]:
        """Promote tokens to ``(batch, seq)``; report whether input was batched."""
        arr = np.asarray(token_ids)
        if arr.ndim == 1:
            return arr[None, :], False
        if arr.ndim == 2:
            return arr, True
        raise ValueError(f"expected 1-D or 2-D token ids, got shape {arr.shape}")

    def _norm(self, x: np.ndarray, w: np.ndarray, b: Optional[np.ndarray]) -> np.ndarray:
        if self.config.arch == "opt":
            assert b is not None
            return layer_norm_np(x, w, b, self.config.norm_eps)
        return rms_norm_np(x, w, self.config.norm_eps)

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch, seq, d_model) -> (batch, n_heads, seq, head_dim)."""
        batch, seq, _ = x.shape
        cfg = self.config
        return x.reshape(batch, seq, cfg.n_heads, cfg.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch, n_heads, seq, head_dim) -> (batch, seq, d_model)."""
        batch, n_heads, seq, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, n_heads * head_dim)

    # ------------------------------------------------------------- attention
    def _attention(
        self,
        layer: dict[str, object],
        layer_idx: int,
        h_norm: np.ndarray,
        stage: Stage,
        cache: Optional[LayerKV],
        position: int,
    ) -> np.ndarray:
        cfg = self.config
        ex = self.executor

        def site(component: Component) -> GemmSite:
            return GemmSite(layer=layer_idx, component=component, stage=stage)

        q = ex.linear(h_norm, layer["wq"], site(Component.Q))
        k = ex.linear(h_norm, layer["wk"], site(Component.K))
        v = ex.linear(h_norm, layer["wv"], site(Component.V))
        q = self._split_heads(q)
        k = self._split_heads(k)
        v = self._split_heads(v)
        if cfg.arch == "llama":
            cos, sin = rope_tables(q.shape[-2], cfg.head_dim, cfg.rope_base, offset=position)
            q = apply_rope_np(q, cos, sin)
            k = apply_rope_np(k, cos, sin)

        if cache is not None:
            cache.append(k, v)
            k_all, v_all = cache.k, cache.v
        else:
            k_all, v_all = k, v

        seq_q = q.shape[-2]
        seq_k = k_all.shape[-2]
        scale = 1.0 / np.sqrt(cfg.head_dim)
        # Head-batched stacked GEMMs: all (batch, head) score/context
        # matrices in one call each — one injector/protector consultation
        # per component per forward, whatever the batch size.
        scores = ex.matmul(q, np.swapaxes(k_all, -1, -2), site(Component.QKT)) * scale
        if stage is Stage.PREFILL and seq_q > 1:
            mask = np.triu(np.ones((seq_q, seq_k), dtype=bool), k=1 + (seq_k - seq_q))
            scores = np.where(mask, -1e30, scores)
        attn = softmax_np(scores, axis=-1)
        context = ex.matmul(attn, v_all, site(Component.SV))
        merged = self._merge_heads(context)
        return ex.linear(merged, layer["wo"], site(Component.O))

    def _mlp(
        self,
        layer: dict[str, object],
        layer_idx: int,
        h_norm: np.ndarray,
        stage: Stage,
    ) -> np.ndarray:
        ex = self.executor

        def site(component: Component) -> GemmSite:
            return GemmSite(layer=layer_idx, component=component, stage=stage)

        if self.config.arch == "opt":
            hidden = ex.linear(h_norm, layer["fc1"], site(Component.FC1))
            hidden = np.maximum(hidden, 0.0)
            return ex.linear(hidden, layer["fc2"], site(Component.FC2))
        gate = ex.linear(h_norm, layer["gate"], site(Component.GATE))
        up = ex.linear(h_norm, layer["up"], site(Component.UP))
        return ex.linear(silu_np(gate) * up, layer["down"], site(Component.DOWN))

    def _block(
        self,
        layer: dict[str, object],
        layer_idx: int,
        h: np.ndarray,
        stage: Stage,
        cache: Optional[LayerKV],
        position: int,
    ) -> np.ndarray:
        h_norm = self._norm(h, layer["norm1_w"], layer.get("norm1_b"))
        h = h + self._attention(layer, layer_idx, h_norm, stage, cache, position)
        h_norm = self._norm(h, layer["norm2_w"], layer.get("norm2_b"))
        return h + self._mlp(layer, layer_idx, h_norm, stage)

    def _embed_tokens(self, token_ids: np.ndarray, position: int) -> np.ndarray:
        """``(batch, seq)`` token ids -> ``(batch, seq, d_model)`` states."""
        h = self.embed[token_ids]
        if self.pos_embed is not None:
            h = h + self.pos_embed[position : position + token_ids.shape[-1]]
        return h * self._gain

    def _logits(self, h: np.ndarray) -> np.ndarray:
        h = self._norm(h, self.final_norm_w, self.final_norm_b)
        return h @ self.lm_head

    def calibrate_activations(self, token_batches: list[np.ndarray]) -> None:
        """Calibrate static per-site activation scales from clean runs.

        Runs the supplied sequences fault-free in calibration mode, covering
        both prefill (full-sequence scoring) and decode (a short greedy
        generation), then switches the executor to static quantization —
        the deployed-inference configuration used by all experiments.
        Equal-length sequences are batched; per-matrix dynamic quantization
        makes the recorded scales independent of the grouping.
        """
        saved = (self.executor.injector, self.executor.protector)
        self.attach(None, None)
        self.executor.mode = "calibrate"
        try:
            for _, batch in batch_groups([np.asarray(seq) for seq in token_batches]):
                self.forward_full(batch)
                prompt_len = max(2, batch.shape[1] // 2)
                gen_budget = min(4, self.config.max_seq_len - prompt_len)
                if gen_budget > 0:
                    self.generate_batch(batch[:, :prompt_len], gen_budget)
        finally:
            self.executor.mode = "static"
            self.attach(*saved)

    # ------------------------------------------------------------- inference
    def forward_full(self, token_ids: np.ndarray, stage: Stage = Stage.PREFILL) -> np.ndarray:
        """Full-sequence forward (scoring/perplexity path).

        Returns logits of shape ``(seq, vocab)`` for a 1-D sequence or
        ``(batch, seq, vocab)`` for a ``(batch, seq)`` stack. With a replay
        session attached, the clean forward per token content is recorded
        once and every injected repeat resumes from the earliest layer the
        injector's filter can touch — bit-identical logits, RNG streams,
        and statistics (see DESIGN.md section 7). Replayed logits are
        returned as read-only arrays.
        """
        tokens, batched = self._as_batch(token_ids)
        if self.replay is not None and self.executor.mode != "calibrate":
            logits = self._replay_full(tokens, stage)
            if logits is not None:
                return logits if batched else logits[0]
        h = self._embed_tokens(tokens, position=0)
        for i, layer in enumerate(self.layers):
            h = self._block(layer, i, h, stage, cache=None, position=0)
        logits = self._logits(h)
        return logits if batched else logits[0]

    # ----------------------------------------------------- clean-trace replay
    def _lane_base(self, tokens: np.ndarray) -> Optional[np.ndarray]:
        """Per-lane token block of a lane-packed batch, or ``None`` when the
        batch is not ``lane_split`` stacked copies of one block (each lane
        of a pack scores the same task content, so packed tokens tile)."""
        lanes = self.lane_split
        if tokens.ndim != 2 or tokens.shape[0] % lanes:
            return None
        base = tokens[: tokens.shape[0] // lanes]
        return base if np.array_equal(tokens, np.tile(base, (lanes, 1))) else None

    def _replay_full(self, tokens: np.ndarray, stage: Stage) -> Optional[np.ndarray]:
        """Record-or-resume a ``forward_full``; ``None`` falls back to the
        full route (no trace yet and a fault configuration is attached).

        A lane-packed call (``lane_split > 1``, DESIGN.md section 9) looks
        up the trace of its *per-lane* token block and resumes with every
        restored array tiled across lanes — the packed equivalent of each
        lane resuming alone.
        """
        ex = self.executor
        session = self.replay
        if self.lane_split > 1:
            base = self._lane_base(tokens)
            if base is None:
                return None
            trace = session.store.get(session.key_full(base, stage, ex))
            if trace is None:
                return None  # no per-lane trace: packed full route
            check_trace_backend(trace, ex)
            return self._resume_full(trace, stage, self.lane_split)
        key = session.key_full(tokens, stage, ex)
        trace = session.store.get(key)
        if trace is None:
            if ex.injector is not None or ex.protector is not None:
                return None  # traces are recorded fault-free only
            logits, trace = self._record_full(tokens, stage)
            session.store.put(key, trace)
            return logits
        check_trace_backend(trace, ex)
        return self._resume_full(trace, stage, 1)

    def _resume_full(
        self, trace: CleanTrace, stage: Stage, lanes: int
    ) -> np.ndarray:
        """Resume a ``forward_full`` from ``trace``, tiled across ``lanes``."""
        ex = self.executor
        with _span("replay.resume", kind="full", stage=stage.value, lanes=lanes) as sp:
            start = resume_layer(
                ex.injector, self.config.n_layers, self.config.components, stage
            )
            sp.set(start=-1 if start is None else start)
            end = self.config.n_layers if start is None else start
            for i in range(end):
                replay_skipped_calls(ex, trace.calls_by_layer[i], lanes=lanes)
            if start is None:
                if lanes == 1:
                    return trace.logits
                return np.tile(trace.logits, (lanes, 1, 1))
            h = trace.boundaries[start]
            if lanes > 1:
                h = np.tile(h, (lanes, 1, 1))
            for i in range(start, self.config.n_layers):
                h = self._block(self.layers[i], i, h, stage, cache=None, position=0)
            return self._logits(h)

    def _record_full(
        self, tokens: np.ndarray, stage: Stage
    ) -> tuple[np.ndarray, CleanTrace]:
        """Run a clean full forward while capturing layer boundaries and the
        per-layer GEMM call log."""
        ex = self.executor
        saved_log = ex.call_log
        boundaries: list[np.ndarray] = []
        calls: list[list[GemmCallRecord]] = []
        with _span("replay.record", kind="full", stage=stage.value):
            try:
                h = self._embed_tokens(tokens, position=0)
                for i, layer in enumerate(self.layers):
                    boundaries.append(h)
                    ex.call_log = layer_log = []
                    h = self._block(layer, i, h, stage, cache=None, position=0)
                    calls.append(layer_log)
            finally:
                ex.call_log = saved_log
            logits = self._logits(h)
        trace = CleanTrace(
            kind="full",
            boundaries=boundaries,
            calls_by_layer=calls,
            logits=logits,
            backend=ex.backend.name,
            backend_exact=ex.backend.exact,
        )
        return trace.logits, trace

    def prefill(self, token_ids: np.ndarray) -> tuple[np.ndarray, KVCache]:
        """Prefill stage: consume the prompt(s), build the KV cache, return
        the logits of the final position — ``(vocab,)`` for one sequence,
        ``(batch, vocab)`` for a batch."""
        tokens, batched = self._as_batch(token_ids)
        cache = self._empty_cache(tokens.shape[0])
        h = self._embed_tokens(tokens, position=0)
        for i, layer in enumerate(self.layers):
            h = self._block(layer, i, h, Stage.PREFILL, cache.layers[i], position=0)
        logits = self._logits(h[:, -1:, :])[:, 0, :]
        return (logits if batched else logits[0]), cache

    def decode_step(self, token_ids, cache: KVCache) -> np.ndarray:
        """Decode stage: one token per sequence in, next-token logits out.

        Accepts a scalar token (single-sequence cache) or a ``(batch,)``
        array matching the cache's batch; the return shape mirrors the
        input: ``(vocab,)`` or ``(batch, vocab)``.
        """
        tokens = np.asarray(token_ids)
        batched = tokens.ndim == 1
        if tokens.ndim == 0:
            tokens = tokens[None]
        if tokens.ndim != 1 or tokens.shape[0] != cache.batch:
            raise ValueError(
                f"decode_step got {tokens.shape[0] if tokens.ndim else 1} token(s) "
                f"for a batch-{cache.batch} cache"
            )
        position = cache.seq_len
        h = self._embed_tokens(tokens[:, None], position=position)
        for i, layer in enumerate(self.layers):
            h = self._block(layer, i, h, Stage.DECODE, cache.layers[i], position=position)
        logits = self._logits(h)[:, 0, :]
        return logits if batched else logits[0]

    def generate(self, prompt: np.ndarray, max_new_tokens: int) -> np.ndarray:
        """Greedy autoregressive generation; returns the new tokens only."""
        prompt = np.asarray(prompt)
        if prompt.ndim != 1:
            raise ValueError("generate expects a 1-D prompt; use generate_batch")
        return self.generate_batch(prompt[None, :], max_new_tokens)[0]

    def generate_batch(self, prompts: np.ndarray, max_new_tokens: int) -> np.ndarray:
        """Greedy lock-step generation for a ``(batch, prompt_len)`` stack of
        equal-length prompts; returns the ``(batch, max_new_tokens)`` new
        tokens. All sequences decode together through one shared-shape KV
        cache — one forward per step for the whole batch."""
        prompts = np.asarray(prompts)
        if prompts.ndim != 2:
            raise ValueError("generate_batch expects (batch, prompt_len) prompts")
        if prompts.shape[1] + max_new_tokens > self.config.max_seq_len:
            raise ValueError("prompt + generation exceeds max_seq_len")
        if max_new_tokens <= 0:
            return np.empty((prompts.shape[0], 0), dtype=np.int64)
        if self.replay is not None and self.executor.mode != "calibrate":
            replayed = self._replay_generate(prompts, max_new_tokens)
            if replayed is not None:
                return replayed
        logits, cache = self.prefill(prompts)
        return self._decode_loop(logits, cache, max_new_tokens)

    def _decode_loop(
        self, logits: np.ndarray, cache: KVCache, max_new_tokens: int
    ) -> np.ndarray:
        """Greedy lock-step decode shared by the full and resumed routes."""
        out = []
        tokens = np.argmax(logits, axis=-1)
        for _ in range(max_new_tokens):
            out.append(tokens)
            if len(out) == max_new_tokens:
                break
            logits = self.decode_step(tokens, cache)
            tokens = np.argmax(logits, axis=-1)
        return np.stack(out, axis=1).astype(np.int64)

    def _replay_generate(
        self, prompts: np.ndarray, max_new_tokens: int
    ) -> Optional[np.ndarray]:
        """Record-or-resume a ``generate_batch``.

        Only the *prefill* is restored from the trace — the stage the
        paper's workloads are dominated by. Decode steps recompute in full
        whenever any fault configuration is attached: a corrupted decode
        GEMM changes the greedy token stream, so downstream decode work is
        never provably clean. A fully fault-free repeat short-circuits to
        the recorded continuation.
        """
        ex = self.executor
        session = self.replay
        if self.lane_split > 1:
            base = self._lane_base(prompts)
            if base is None:
                return None
            trace = session.store.get(session.key_generate(base, max_new_tokens, ex))
            if trace is None:
                return None  # no per-lane trace: packed full route
            check_trace_backend(trace, ex)
            return self._resume_generate(trace, prompts, max_new_tokens, self.lane_split)
        key = session.key_generate(prompts, max_new_tokens, ex)
        trace = session.store.get(key)
        if trace is None:
            if ex.injector is not None or ex.protector is not None:
                return None
            tokens, trace = self._record_generate(prompts, max_new_tokens)
            session.store.put(key, trace)
            return tokens
        check_trace_backend(trace, ex)
        return self._resume_generate(trace, prompts, max_new_tokens, 1)

    def _resume_generate(
        self,
        trace: CleanTrace,
        prompts: np.ndarray,
        max_new_tokens: int,
        lanes: int,
    ) -> np.ndarray:
        """Resume a ``generate_batch`` from ``trace``, tiled across ``lanes``."""
        ex = self.executor
        n_layers = self.config.n_layers
        with _span("replay.resume", kind="generate", lanes=lanes) as sp:
            start = resume_layer(
                ex.injector, n_layers, self.config.components, Stage.PREFILL
            )
            sp.set(start=-1 if start is None else start)
            if (
                lanes == 1
                and start is None
                and ex.injector is None
                and ex.protector is None
            ):
                # Fault-free repeat: charge the recorded MACs, return the trace.
                for i in range(n_layers):
                    replay_skipped_calls(ex, trace.calls_by_layer[i])
                replay_skipped_calls(ex, trace.decode_calls)
                return trace.new_tokens
            end = n_layers if start is None else start
            for i in range(end):
                replay_skipped_calls(ex, trace.calls_by_layer[i], lanes=lanes)
            cache = self._empty_cache(prompts.shape[0])
            for i in range(end):  # layers restored from the trace, not recomputed
                k, v = trace.kv[i]
                if lanes > 1:
                    k = np.tile(k, (lanes, 1, 1, 1))
                    v = np.tile(v, (lanes, 1, 1, 1))
                cache.layers[i] = LayerKV(k=k, v=v)
            if start is None:
                logits = trace.logits if lanes == 1 else np.tile(trace.logits, (lanes, 1))
            else:
                h = trace.boundaries[start]
                if lanes > 1:
                    h = np.tile(h, (lanes, 1, 1))
                for i in range(start, n_layers):
                    h = self._block(
                        self.layers[i], i, h, Stage.PREFILL, cache.layers[i], position=0
                    )
                logits = self._logits(h[:, -1:, :])[:, 0, :]
            return self._decode_loop(logits, cache, max_new_tokens)

    def _record_generate(
        self, prompts: np.ndarray, max_new_tokens: int
    ) -> tuple[np.ndarray, CleanTrace]:
        """Run a clean prefill + decode while capturing prefill boundaries,
        the post-prefill KV segments, and both stages' GEMM call logs."""
        ex = self.executor
        saved_log = ex.call_log
        cache = self._empty_cache(prompts.shape[0])
        boundaries: list[np.ndarray] = []
        calls: list[list[GemmCallRecord]] = []
        with _span("replay.record", kind="generate"):
            try:
                h = self._embed_tokens(prompts, position=0)
                for i, layer in enumerate(self.layers):
                    boundaries.append(h)
                    ex.call_log = layer_log = []
                    h = self._block(
                        layer, i, h, Stage.PREFILL, cache.layers[i], position=0
                    )
                    calls.append(layer_log)
                logits = self._logits(h[:, -1:, :])[:, 0, :]
                # KV arrays are never mutated in place (``append`` concatenates),
                # so the post-prefill snapshot is a zero-copy set of references.
                kv = [(lkv.k, lkv.v) for lkv in cache.layers]
                ex.call_log = decode_log = []
                new_tokens = self._decode_loop(logits, cache, max_new_tokens)
            finally:
                ex.call_log = saved_log
        trace = CleanTrace(
            kind="generate",
            boundaries=boundaries,
            calls_by_layer=calls,
            logits=logits,
            kv=kv,
            new_tokens=new_tokens,
            decode_calls=decode_log,
            backend=ex.backend.name,
            backend_exact=ex.backend.exact,
        )
        return trace.new_tokens, trace

    def sequence_nll(self, token_ids: np.ndarray) -> float:
        """Mean next-token negative log likelihood (perplexity = exp(nll))."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 1:
            raise ValueError("sequence_nll expects one sequence; use sequence_nll_batch")
        return float(self.sequence_nll_batch(token_ids[None, :])[0])

    def sequence_nll_batch(self, token_ids: np.ndarray) -> np.ndarray:
        """Per-sequence mean next-token NLL for a ``(batch, seq)`` stack of
        equal-length sequences; returns shape ``(batch,)``."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError("sequence_nll_batch expects (batch, seq) token ids")
        logits = self.forward_full(token_ids[:, :-1])
        log_probs = log_softmax_np(logits, axis=-1)
        picked = np.take_along_axis(log_probs, token_ids[:, 1:, None], axis=2)[..., 0]
        return -picked.mean(axis=1)

    def choice_logprob(self, context: np.ndarray, continuation: np.ndarray) -> float:
        """Total log-probability of ``continuation`` given ``context``
        (HellaSwag-style multiple-choice scoring)."""
        return float(
            self.choice_logprob_batch(
                np.asarray(context)[None, :], np.asarray(continuation)[None, :]
            )[0]
        )

    def choice_logprob_batch(
        self, contexts: np.ndarray, continuations: np.ndarray
    ) -> np.ndarray:
        """Per-row continuation log-probability for stacked equal-length
        ``(batch, ctx_len)`` contexts and ``(batch, cont_len)``
        continuations; returns shape ``(batch,)``."""
        contexts = np.asarray(contexts)
        continuations = np.asarray(continuations)
        if contexts.ndim != 2 or continuations.ndim != 2:
            raise ValueError("choice_logprob_batch expects 2-D stacks")
        full = np.concatenate([contexts, continuations], axis=1)
        logits = self.forward_full(full[:, :-1])
        log_probs = log_softmax_np(logits, axis=-1)
        start = contexts.shape[1] - 1
        idx = np.arange(start, full.shape[1] - 1)
        picked = np.take_along_axis(
            log_probs[:, idx, :], full[:, idx + 1, None], axis=2
        )[..., 0]
        return picked.sum(axis=1)
