"""W8A8 quantized inference engine with fault injection and ABFT hooks.

This is the device-under-test of the whole reproduction. Every matrix
multiplication of the transformer (paper Fig. 2 components Q, K, V, QK^T,
SV, O and the MLP GEMMs) executes as INT8 x INT8 -> INT32 through
:class:`GemmExecutor`, which:

1. quantizes activations per-tensor (weights are pre-quantized per-channel),
2. computes the INT32 result with wraparound accumulators,
3. lets the attached :class:`~repro.errors.injector.ErrorInjector` corrupt
   the accumulators (transient timing faults),
4. lets the attached :class:`~repro.abft.protectors.Protector` inspect the
   checksum report and, if recovery is requested, replaces the output with a
   clean recomputation (charged to recovery cost), and
5. dequantizes back to float for the nonlinear functions (softmax, norms,
   activations), which stay in floating point per paper Sec. II-A.

The LM head and embeddings run in float: the paper's component taxonomy
covers only the block GEMMs, and vocabulary projection is typically executed
on protected vector units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.abft.checksums import checksum_report
from repro.abft.protectors import Protector
from repro.errors.injector import ErrorInjector
from repro.errors.sites import Component, GemmSite, Stage
from repro.models.config import ModelConfig
from repro.models.float_model import outlier_gain
from repro.models.kv_cache import KVCache, LayerKV
from repro.models.rope import apply_rope_np, rope_tables
from repro.quant.gemm import gemm_int32
from repro.quant.quantizer import (
    QuantParams,
    quantize_activation,
    quantize_weight_per_channel,
    quantize_with_scale,
)


def softmax_np(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax on plain arrays (inference path)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax_np(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def layer_norm_np(x: np.ndarray, weight: np.ndarray, bias: np.ndarray, eps: float) -> np.ndarray:
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + eps) * weight + bias


def rms_norm_np(x: np.ndarray, weight: np.ndarray, eps: float) -> np.ndarray:
    ms = np.mean(x * x, axis=-1, keepdims=True)
    return x / np.sqrt(ms + eps) * weight


def silu_np(x: np.ndarray) -> np.ndarray:
    # overflow-safe sigmoid: exp of a non-positive argument only
    positive = x >= 0
    exp_neg = np.exp(np.where(positive, -x, x))
    sigmoid = np.where(positive, 1.0 / (1.0 + exp_neg), exp_neg / (1.0 + exp_neg))
    return x * sigmoid


@dataclass
class QuantizedWeight:
    """Pre-quantized weight: int8 codes ``(in, out)`` + per-column scales."""

    q: np.ndarray
    params: QuantParams

    @classmethod
    def from_float(cls, w: np.ndarray) -> "QuantizedWeight":
        q, params = quantize_weight_per_channel(w)
        return cls(q=q, params=params)


class GemmExecutor:
    """Runs every protected/injectable GEMM of the quantized model.

    Activation quantization modes:

    - ``"dynamic"`` — per-tensor scale from the tensor's own max-abs (no
      calibration required; an ablation — a single large injected error
      inflates the scale and washes out every other value).
    - ``"calibrate"`` — transparent float pass that records per-site
      activation max-abs into ``scale_store``.
    - ``"static"`` — calibrated per-site scales; out-of-range values
      (e.g. injected faults flowing through) saturate at the int8 boundary,
      as deployed W8A8 inference does. This is the default experimental
      setting, matching the paper's SmoothQuant-style quantization.
    """

    def __init__(self, wraparound: bool = True) -> None:
        self.injector: Optional[ErrorInjector] = None
        self.protector: Optional[Protector] = None
        self.wraparound = wraparound
        self.total_macs = 0
        self.macs_by_component: dict[str, int] = {}
        self.mode = "dynamic"
        self.scale_store: dict[str, float] = {}

    @staticmethod
    def _scale_key(site: GemmSite, operand: str) -> str:
        # Stage-independent: decode reuses the scales calibrated in prefill.
        return f"L{site.layer}/{site.component.value}/{operand}"

    def _quantize(
        self, x: np.ndarray, site: GemmSite, operand: str
    ) -> tuple[np.ndarray, QuantParams]:
        if self.mode == "static":
            key = self._scale_key(site, operand)
            scale = self.scale_store.get(key)
            if scale is None:
                raise RuntimeError(
                    f"no calibrated scale for {key}; run calibration first"
                )
            return quantize_with_scale(x, scale)
        if self.mode == "calibrate":
            key = self._scale_key(site, operand)
            observed = float(np.max(np.abs(x))) / 127.0
            self.scale_store[key] = max(self.scale_store.get(key, 0.0), observed, 1e-12)
        return quantize_activation(x)

    def attach(
        self,
        injector: Optional[ErrorInjector] = None,
        protector: Optional[Protector] = None,
    ) -> None:
        self.injector = injector
        self.protector = protector

    def reset_counters(self) -> None:
        """Zero the MAC accounting (fresh energy measurement)."""
        self.total_macs = 0
        self.macs_by_component = {}

    def _execute(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        out_scale: np.ndarray,
        site: GemmSite,
    ) -> np.ndarray:
        macs = a_q.shape[0] * a_q.shape[1] * b_q.shape[1]
        self.total_macs += macs
        key = site.component.value
        self.macs_by_component[key] = self.macs_by_component.get(key, 0) + macs
        clean = gemm_int32(a_q, b_q, wraparound=self.wraparound)
        acc = clean
        if self.injector is not None:
            acc = self.injector.corrupt(clean, site)
        if self.protector is not None:
            report = checksum_report(a_q, b_q, acc)
            if self.protector.inspect(report, site, macs):
                acc = clean  # recovery: recompute at nominal voltage
        return acc.astype(np.float64) * out_scale

    def linear(self, x: np.ndarray, weight: QuantizedWeight, site: GemmSite) -> np.ndarray:
        """Weight GEMM ``x @ W`` with 2-D ``x`` of shape ``(m, in)``."""
        a_q, a_params = self._quantize(x, site, "a")
        out_scale = a_params.scale * weight.params.scale
        return self._execute(a_q, weight.q, out_scale, site)

    def matmul(self, a: np.ndarray, b: np.ndarray, site: GemmSite) -> np.ndarray:
        """Activation-activation GEMM (QK^T, SV) with 2-D operands."""
        a_q, a_params = self._quantize(a, site, "a")
        b_q, b_params = self._quantize(b, site, "b")
        out_scale = np.asarray(a_params.scale * b_params.scale)
        return self._execute(a_q, b_q, out_scale, site)


class QuantizedTransformerLM:
    """Quantized inference engine built from trained float weights.

    Parameters
    ----------
    config:
        Shared :class:`ModelConfig`.
    state:
        ``FloatTransformerLM.state_dict()`` arrays.
    """

    def __init__(self, config: ModelConfig, state: dict[str, np.ndarray]) -> None:
        self.config = config
        self.executor = GemmExecutor()
        self._gain = outlier_gain(config)
        self.embed = state["embed.weight"]
        self.pos_embed = state.get("pos_embed.weight")
        self.lm_head = state["lm_head.weight"]
        self.final_norm_w = state["final_norm.weight"]
        self.final_norm_b = state.get("final_norm.bias")
        self.layers: list[dict[str, object]] = []
        for i in range(config.n_layers):
            prefix = f"blocks.{i}"
            layer: dict[str, object] = {
                "norm1_w": state[f"{prefix}.norm1.weight"],
                "norm2_w": state[f"{prefix}.norm2.weight"],
                "wq": QuantizedWeight.from_float(state[f"{prefix}.attn.wq.weight"]),
                "wk": QuantizedWeight.from_float(state[f"{prefix}.attn.wk.weight"]),
                "wv": QuantizedWeight.from_float(state[f"{prefix}.attn.wv.weight"]),
                "wo": QuantizedWeight.from_float(state[f"{prefix}.attn.wo.weight"]),
            }
            if config.arch == "opt":
                layer["norm1_b"] = state[f"{prefix}.norm1.bias"]
                layer["norm2_b"] = state[f"{prefix}.norm2.bias"]
                layer["fc1"] = QuantizedWeight.from_float(state[f"{prefix}.mlp.fc1.weight"])
                layer["fc2"] = QuantizedWeight.from_float(state[f"{prefix}.mlp.fc2.weight"])
            else:
                layer["gate"] = QuantizedWeight.from_float(state[f"{prefix}.mlp.gate.weight"])
                layer["up"] = QuantizedWeight.from_float(state[f"{prefix}.mlp.up.weight"])
                layer["down"] = QuantizedWeight.from_float(state[f"{prefix}.mlp.down.weight"])
            self.layers.append(layer)

    # ------------------------------------------------------------- plumbing
    def attach(
        self,
        injector: Optional[ErrorInjector] = None,
        protector: Optional[Protector] = None,
    ) -> None:
        """Attach/replace the error injector and ABFT protector."""
        self.executor.attach(injector, protector)

    @property
    def injector(self) -> Optional[ErrorInjector]:
        return self.executor.injector

    @property
    def protector(self) -> Optional[Protector]:
        return self.executor.protector

    def _norm(self, x: np.ndarray, w: np.ndarray, b: Optional[np.ndarray]) -> np.ndarray:
        if self.config.arch == "opt":
            assert b is not None
            return layer_norm_np(x, w, b, self.config.norm_eps)
        return rms_norm_np(x, w, self.config.norm_eps)

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(seq, d_model) -> (n_heads, seq, head_dim)."""
        seq = x.shape[0]
        cfg = self.config
        return x.reshape(seq, cfg.n_heads, cfg.head_dim).transpose(1, 0, 2)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(n_heads, seq, head_dim) -> (seq, d_model)."""
        n_heads, seq, head_dim = x.shape
        return x.transpose(1, 0, 2).reshape(seq, n_heads * head_dim)

    # ------------------------------------------------------------- attention
    def _attention(
        self,
        layer: dict[str, object],
        layer_idx: int,
        h_norm: np.ndarray,
        stage: Stage,
        cache: Optional[LayerKV],
        position: int,
    ) -> np.ndarray:
        cfg = self.config
        ex = self.executor

        def site(component: Component) -> GemmSite:
            return GemmSite(layer=layer_idx, component=component, stage=stage)

        q = ex.linear(h_norm, layer["wq"], site(Component.Q))
        k = ex.linear(h_norm, layer["wk"], site(Component.K))
        v = ex.linear(h_norm, layer["wv"], site(Component.V))
        q = self._split_heads(q)
        k = self._split_heads(k)
        v = self._split_heads(v)
        if cfg.arch == "llama":
            cos, sin = rope_tables(q.shape[1], cfg.head_dim, cfg.rope_base, offset=position)
            q = apply_rope_np(q, cos, sin)
            k = apply_rope_np(k, cos, sin)

        if cache is not None:
            cache.append(k, v)
            k_all, v_all = cache.k, cache.v
        else:
            k_all, v_all = k, v

        seq_q = q.shape[1]
        seq_k = k_all.shape[1]
        scale = 1.0 / np.sqrt(cfg.head_dim)
        context = np.empty((cfg.n_heads, seq_q, cfg.head_dim))
        causal = stage is Stage.PREFILL and seq_q > 1
        if causal:
            mask = np.triu(np.ones((seq_q, seq_k), dtype=bool), k=1 + (seq_k - seq_q))
        for head in range(cfg.n_heads):
            scores = ex.matmul(q[head], k_all[head].T, site(Component.QKT)) * scale
            if causal:
                scores = np.where(mask, -1e30, scores)
            attn = softmax_np(scores, axis=-1)
            context[head] = ex.matmul(attn, v_all[head], site(Component.SV))
        merged = self._merge_heads(context)
        return ex.linear(merged, layer["wo"], site(Component.O))

    def _mlp(
        self,
        layer: dict[str, object],
        layer_idx: int,
        h_norm: np.ndarray,
        stage: Stage,
    ) -> np.ndarray:
        ex = self.executor

        def site(component: Component) -> GemmSite:
            return GemmSite(layer=layer_idx, component=component, stage=stage)

        if self.config.arch == "opt":
            hidden = ex.linear(h_norm, layer["fc1"], site(Component.FC1))
            hidden = np.maximum(hidden, 0.0)
            return ex.linear(hidden, layer["fc2"], site(Component.FC2))
        gate = ex.linear(h_norm, layer["gate"], site(Component.GATE))
        up = ex.linear(h_norm, layer["up"], site(Component.UP))
        return ex.linear(silu_np(gate) * up, layer["down"], site(Component.DOWN))

    def _block(
        self,
        layer: dict[str, object],
        layer_idx: int,
        h: np.ndarray,
        stage: Stage,
        cache: Optional[LayerKV],
        position: int,
    ) -> np.ndarray:
        h_norm = self._norm(h, layer["norm1_w"], layer.get("norm1_b"))
        h = h + self._attention(layer, layer_idx, h_norm, stage, cache, position)
        h_norm = self._norm(h, layer["norm2_w"], layer.get("norm2_b"))
        return h + self._mlp(layer, layer_idx, h_norm, stage)

    def _embed_tokens(self, token_ids: np.ndarray, position: int) -> np.ndarray:
        h = self.embed[token_ids]
        if self.pos_embed is not None:
            h = h + self.pos_embed[position : position + token_ids.shape[0]]
        return h * self._gain

    def _logits(self, h: np.ndarray) -> np.ndarray:
        h = self._norm(h, self.final_norm_w, self.final_norm_b)
        return h @ self.lm_head

    def calibrate_activations(self, token_batches: list[np.ndarray]) -> None:
        """Calibrate static per-site activation scales from clean runs.

        Runs the supplied sequences fault-free in calibration mode, covering
        both prefill (full-sequence scoring) and decode (a short greedy
        generation), then switches the executor to static quantization —
        the deployed-inference configuration used by all experiments.
        """
        saved = (self.executor.injector, self.executor.protector)
        self.attach(None, None)
        self.executor.mode = "calibrate"
        try:
            for seq in token_batches:
                seq = np.asarray(seq)
                self.forward_full(seq)
                prompt_len = max(2, seq.size // 2)
                gen_budget = min(4, self.config.max_seq_len - prompt_len)
                if gen_budget > 0:
                    self.generate(seq[:prompt_len], gen_budget)
        finally:
            self.executor.mode = "static"
            self.attach(*saved)

    # ------------------------------------------------------------- inference
    def forward_full(self, token_ids: np.ndarray, stage: Stage = Stage.PREFILL) -> np.ndarray:
        """Full-sequence forward (scoring/perplexity path); returns logits
        of shape ``(seq, vocab)``."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 1:
            raise ValueError("forward_full expects a 1-D token sequence")
        h = self._embed_tokens(token_ids, position=0)
        for i, layer in enumerate(self.layers):
            h = self._block(layer, i, h, stage, cache=None, position=0)
        return self._logits(h)

    def prefill(self, token_ids: np.ndarray) -> tuple[np.ndarray, KVCache]:
        """Prefill stage: consume the prompt, build the KV cache, return the
        logits of the final position."""
        token_ids = np.asarray(token_ids)
        cache = KVCache(
            layers=[
                LayerKV(
                    k=np.empty((self.config.n_heads, 0, self.config.head_dim)),
                    v=np.empty((self.config.n_heads, 0, self.config.head_dim)),
                )
                for _ in self.layers
            ]
        )
        h = self._embed_tokens(token_ids, position=0)
        for i, layer in enumerate(self.layers):
            h = self._block(layer, i, h, Stage.PREFILL, cache.layers[i], position=0)
        return self._logits(h[-1:])[0], cache

    def decode_step(self, token_id: int, cache: KVCache) -> np.ndarray:
        """Decode stage: one token in, next-token logits out."""
        position = cache.seq_len
        h = self._embed_tokens(np.array([token_id]), position=position)
        for i, layer in enumerate(self.layers):
            h = self._block(layer, i, h, Stage.DECODE, cache.layers[i], position=position)
        return self._logits(h)[0]

    def generate(self, prompt: np.ndarray, max_new_tokens: int) -> np.ndarray:
        """Greedy autoregressive generation; returns the new tokens only."""
        prompt = np.asarray(prompt)
        if prompt.size + max_new_tokens > self.config.max_seq_len:
            raise ValueError("prompt + generation exceeds max_seq_len")
        logits, cache = self.prefill(prompt)
        out = []
        token = int(np.argmax(logits))
        for _ in range(max_new_tokens):
            out.append(token)
            if len(out) == max_new_tokens:
                break
            logits = self.decode_step(token, cache)
            token = int(np.argmax(logits))
        return np.asarray(out, dtype=np.int64)

    def sequence_nll(self, token_ids: np.ndarray) -> float:
        """Mean next-token negative log likelihood (perplexity = exp(nll))."""
        token_ids = np.asarray(token_ids)
        logits = self.forward_full(token_ids[:-1])
        log_probs = log_softmax_np(logits, axis=-1)
        picked = log_probs[np.arange(token_ids.size - 1), token_ids[1:]]
        return float(-picked.mean())

    def choice_logprob(self, context: np.ndarray, continuation: np.ndarray) -> float:
        """Total log-probability of ``continuation`` given ``context``
        (HellaSwag-style multiple-choice scoring)."""
        full = np.concatenate([context, continuation])
        logits = self.forward_full(full[:-1])
        log_probs = log_softmax_np(logits, axis=-1)
        start = context.size - 1
        idx = np.arange(start, full.size - 1)
        return float(log_probs[idx, full[idx + 1]].sum())
