"""Transformer LM substrate: OPT-style and LLaMA-style blocks (paper Fig. 2).

Two execution paths share one configuration and one set of weights:

- :class:`FloatTransformerLM` — float64 autograd model used for *training*
  the tiny LLMs on synthetic corpora (substitute for pretrained OPT/LLaMA
  checkpoints, see DESIGN.md section 3).
- :class:`QuantizedTransformerLM` — plain-NumPy W8A8 inference engine whose
  every GEMM routes through the error injector and ABFT protector; this is
  the device-under-test for all experiments.
"""

from repro.models.config import ModelConfig, OPT_COMPONENTS, LLAMA_COMPONENTS
from repro.models.float_model import FloatTransformerLM
from repro.models.quantized import QuantizedTransformerLM, GemmExecutor
from repro.models.kv_cache import KVCache
from repro.models.export import quantize_model
from repro.models.replay import CleanTrace, ReplaySession, TraceStore, TRACES

__all__ = [
    "ModelConfig",
    "OPT_COMPONENTS",
    "LLAMA_COMPONENTS",
    "FloatTransformerLM",
    "QuantizedTransformerLM",
    "GemmExecutor",
    "KVCache",
    "quantize_model",
    "CleanTrace",
    "ReplaySession",
    "TraceStore",
    "TRACES",
]
