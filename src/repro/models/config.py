"""Model configuration shared by the float and quantized execution paths."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors.sites import Component

#: Matmul components of one OPT block (paper Fig. 2a), plus attention matmuls.
OPT_COMPONENTS: tuple[Component, ...] = (
    Component.Q,
    Component.K,
    Component.V,
    Component.QKT,
    Component.SV,
    Component.O,
    Component.FC1,
    Component.FC2,
)

#: Matmul components of one LLaMA block (paper Fig. 2b).
LLAMA_COMPONENTS: tuple[Component, ...] = (
    Component.Q,
    Component.K,
    Component.V,
    Component.QKT,
    Component.SV,
    Component.O,
    Component.GATE,
    Component.UP,
    Component.DOWN,
)


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyperparameters for a tiny OPT-style or LLaMA-style LM.

    Attributes
    ----------
    arch:
        ``"opt"`` (LayerNorm + ReLU FC1/FC2, learned positions) or
        ``"llama"`` (RMSNorm + SiLU Gate/Up/Down, rotary positions).
    outlier_channels / outlier_scale:
        Number of embedding channels amplified by a fixed gain, reproducing
        the outlier-dominated hidden-state statistics of real LLMs that the
        paper's Fig. 5 mechanism rests on. The gain is a fixed (untrained)
        elementwise multiplier applied identically in both execution paths.
    """

    arch: str
    vocab_size: int
    d_model: int
    n_heads: int
    n_layers: int
    d_ff: int
    max_seq_len: int
    norm_eps: float = 1e-5
    outlier_channels: int = 0
    outlier_scale: float = 8.0
    rope_base: float = 10000.0

    def __post_init__(self) -> None:
        if self.arch not in ("opt", "llama"):
            raise ValueError(f"arch must be 'opt' or 'llama', got {self.arch!r}")
        if self.d_model % self.n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        if self.arch == "llama" and (self.d_model // self.n_heads) % 2 != 0:
            raise ValueError("llama arch needs an even head dimension for RoPE")
        if self.outlier_channels > self.d_model:
            raise ValueError("outlier_channels cannot exceed d_model")
        if self.outlier_channels < 0 or self.outlier_scale <= 0:
            raise ValueError("invalid outlier configuration")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def components(self) -> tuple[Component, ...]:
        """Injectable matmul components of this architecture."""
        return OPT_COMPONENTS if self.arch == "opt" else LLAMA_COMPONENTS

    @property
    def mlp_components(self) -> tuple[Component, ...]:
        if self.arch == "opt":
            return (Component.FC1, Component.FC2)
        return (Component.GATE, Component.UP, Component.DOWN)

    def macs_per_token(self) -> int:
        """Multiply-accumulate count per token per forward pass (one layer
        stack, excluding the LM head, at full context ``max_seq_len`` for
        attention matmuls)."""
        d, f, s = self.d_model, self.d_ff, self.max_seq_len
        attn_proj = 4 * d * d  # Q, K, V, O
        attn_mm = 2 * s * d  # QK^T and SV at full context
        mlp = 2 * d * f if self.arch == "opt" else 3 * d * f
        return self.n_layers * (attn_proj + attn_mm + mlp)


def tiny_opt_config(vocab_size: int = 128, outliers: bool = True) -> ModelConfig:
    """A fast OPT-style config used across tests and examples."""
    return ModelConfig(
        arch="opt",
        vocab_size=vocab_size,
        d_model=64,
        n_heads=4,
        n_layers=2,
        d_ff=128,
        max_seq_len=64,
        outlier_channels=4 if outliers else 0,
    )


def tiny_llama_config(vocab_size: int = 128, outliers: bool = True) -> ModelConfig:
    """A fast LLaMA-style config used across tests and examples."""
    return ModelConfig(
        arch="llama",
        vocab_size=vocab_size,
        d_model=64,
        n_heads=4,
        n_layers=2,
        d_ff=96,
        max_seq_len=64,
        outlier_channels=4 if outliers else 0,
    )
