"""Conversion from the trained float model to the quantized engine."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.models.config import ModelConfig
from repro.models.float_model import FloatTransformerLM
from repro.models.quantized import QuantizedTransformerLM


def quantize_model(
    model_or_state: Union[FloatTransformerLM, dict[str, np.ndarray]],
    config: ModelConfig | None = None,
    calibration: Optional[list[np.ndarray]] = None,
) -> QuantizedTransformerLM:
    """Build a :class:`QuantizedTransformerLM` from a trained float model
    (or its exported ``state_dict``).

    When ``calibration`` sequences are supplied, static per-site activation
    scales are calibrated immediately (the deployed W8A8 configuration);
    otherwise the engine starts in dynamic-quantization mode and
    ``calibrate_activations`` can be called later.
    """
    if isinstance(model_or_state, FloatTransformerLM):
        state = model_or_state.state_dict()
        config = model_or_state.config
    else:
        state = model_or_state
        if config is None:
            raise ValueError("config is required when passing a raw state dict")
    model = QuantizedTransformerLM(config, state)
    if calibration is not None:
        model.calibrate_activations(calibration)
    return model
