"""Rotary positional embeddings (RoPE) used by the LLaMA-style architecture.

Implemented once over plain NumPy cos/sin tables; the float (autograd) path
applies them through differentiable elementwise ops and the quantized path
through direct array math, guaranteeing the two paths agree.
"""

from __future__ import annotations

import numpy as np


def rope_tables(
    seq_len: int, head_dim: int, base: float = 10000.0, offset: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Cos/sin tables of shape ``(seq_len, head_dim)``.

    ``offset`` shifts absolute positions, which is how the decode stage
    rotates a single new token at position ``t``.
    """
    if head_dim % 2 != 0:
        raise ValueError("RoPE requires an even head dimension")
    half = head_dim // 2
    inv_freq = base ** (-np.arange(half) / half)
    positions = np.arange(offset, offset + seq_len)[:, None]
    angles = positions * inv_freq[None, :]
    # Duplicate the angle for the (x1, x2) pair layout: [a0..a_{h-1}, a0..].
    angles = np.concatenate([angles, angles], axis=-1)
    return np.cos(angles), np.sin(angles)


def rotate_half_np(x: np.ndarray) -> np.ndarray:
    """``(-x2, x1)`` pairing over the last dimension (NumPy arrays)."""
    half = x.shape[-1] // 2
    return np.concatenate([-x[..., half:], x[..., :half]], axis=-1)


def apply_rope_np(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Apply rotary embedding to ``x`` with shape ``(..., seq, head_dim)``."""
    return x * cos + rotate_half_np(x) * sin
