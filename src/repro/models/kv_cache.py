"""Per-layer key/value cache for autoregressive decoding.

The cache stores dequantized (float) K/V tensors in batched, head-split
layout ``(batch, n_heads, seq, head_dim)`` — all sequences of a batch decode
in lock-step, so they share one sequence axis. Following the paper's error
model (Sec. III-A), memory — including this cache — is assumed
ECC-protected: faults are injected only into GEMM computations, but
corrupted *prefill* outputs enter the cache and keep harming every later
decode step, which is exactly the KV-cache mechanism behind paper Insight 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class LayerKV:
    """Keys/values of one layer, shape ``(batch, n_heads, seq, head_dim)``."""

    k: np.ndarray
    v: np.ndarray

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        self.k = np.concatenate([self.k, k_new], axis=-2)
        self.v = np.concatenate([self.v, v_new], axis=-2)

    @property
    def seq_len(self) -> int:
        return self.k.shape[-2]

    @property
    def batch(self) -> int:
        return self.k.shape[0]


@dataclass
class KVCache:
    """KV cache across layers."""

    layers: list[LayerKV] = field(default_factory=list)

    @property
    def seq_len(self) -> int:
        return self.layers[0].seq_len if self.layers else 0

    @property
    def batch(self) -> int:
        """Number of sequences decoding in lock-step through this cache."""
        return self.layers[0].batch if self.layers else 0

    def __len__(self) -> int:
        return len(self.layers)
