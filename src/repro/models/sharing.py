"""Zero-copy sharing of quantized engines and clean traces across workers.

A campaign pool worker used to re-materialize everything per process: load
the bundle, quantize the weights, run calibration forwards, and score one
clean pass per (model, task) cell. All of that state is immutable during a
campaign, so the parent now publishes it once into
``multiprocessing.shared_memory`` and workers *attach*:

- :func:`publish_bundle` packs a calibrated :class:`QuantizedTransformerLM`
  (int8 codes, the float64 BLAS mirror, per-channel scales, norm/embed/head
  weights, calibrated activation scales) plus every recorded
  :class:`~repro.models.replay.CleanTrace` of that model into one shared
  segment, returning a picklable manifest;
- :func:`attach_bundle` (called from the pool initializer) maps the segment
  and rebuilds the engine and traces as **read-only views** — no weight
  copies, no calibration forwards, no clean re-scoring — then registers
  them with the evaluator cache and the process trace store.

The arrays are marked non-writeable so a worker cannot corrupt its
siblings; anything mutable (injector, protector, MAC counters, KV caches)
stays per-process. See DESIGN.md section 7.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dispatch.backends import resolve_backend
from repro.errors.sites import Component, GemmSite, Stage
from repro.models.config import ModelConfig
from repro.models.quantized import QuantizedTransformerLM, QuantizedWeight
from repro.models.replay import TRACES, CleanTrace, GemmCall
from repro.quant.quantizer import QuantParams
from repro.telemetry.spans import span as _span
from repro.utils.logging import get_logger

logger = get_logger("sharing")

_ALIGN = 16

#: Keep attached segments alive for the lifetime of the worker process —
#: dropping the SharedMemory object would invalidate every view into it.
_ATTACHED: list = []


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


# ----------------------------------------------------------- array packing
def _collect_model_arrays(model: QuantizedTransformerLM) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {
        "embed": model.embed,
        "lm_head": model.lm_head,
        "final_norm_w": model.final_norm_w,
    }
    if model.pos_embed is not None:
        arrays["pos_embed"] = model.pos_embed
    if model.final_norm_b is not None:
        arrays["final_norm_b"] = model.final_norm_b
    for i, layer in enumerate(model.layers):
        for name, value in layer.items():
            if isinstance(value, QuantizedWeight):
                arrays[f"L{i}/{name}.q"] = value.q
                arrays[f"L{i}/{name}.qf"] = value.q_f64
                arrays[f"L{i}/{name}.scale"] = np.asarray(value.params.scale)
            else:
                arrays[f"L{i}/{name}"] = np.asarray(value)
    return arrays


def _collect_trace_arrays(
    traces: dict[str, CleanTrace]
) -> tuple[dict[str, np.ndarray], list[dict]]:
    arrays: dict[str, np.ndarray] = {}
    metas: list[dict] = []
    for t, (key, trace) in enumerate(sorted(traces.items())):
        prefix = f"T{t}"
        for i, boundary in enumerate(trace.boundaries):
            arrays[f"{prefix}/b{i}"] = boundary
        arrays[f"{prefix}/logits"] = trace.logits
        if trace.kv is not None:
            for i, (k, v) in enumerate(trace.kv):
                arrays[f"{prefix}/kv{i}/k"] = k
                arrays[f"{prefix}/kv{i}/v"] = v
        if trace.new_tokens is not None:
            arrays[f"{prefix}/tokens"] = trace.new_tokens
        metas.append(
            {
                "key": key,
                "prefix": prefix,
                "kind": trace.kind,
                "n_layers": len(trace.boundaries),
                "has_kv": trace.kv is not None,
                "has_tokens": trace.new_tokens is not None,
                "calls": [
                    [_call_meta(c) for c in layer_calls]
                    for layer_calls in trace.calls_by_layer
                ],
                "decode_calls": [_call_meta(c) for c in trace.decode_calls]
                if trace.decode_calls is not None
                else None,
                "backend": trace.backend,
                "backend_exact": trace.backend_exact,
            }
        )
    return arrays, metas


def _call_meta(call: GemmCall) -> list:
    return [
        call.site.layer,
        call.site.component.value,
        call.site.stage.value,
        call.macs,
        list(call.shape),
    ]


def _call_from_meta(meta: list) -> GemmCall:
    layer, component, stage, macs, shape = meta
    return GemmCall(
        site=GemmSite(layer=layer, component=Component(component), stage=Stage(stage)),
        macs=macs,
        shape=tuple(shape),
    )


def _pack_arrays(arrays: dict[str, np.ndarray]):
    """Copy ``arrays`` into one shared segment; returns (shm, descriptors)."""
    from multiprocessing import shared_memory

    descriptors: dict[str, dict] = {}
    offset = 0
    for key, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        arrays[key] = arr
        if arr.size == 0:
            descriptors[key] = {"dtype": arr.dtype.str, "shape": list(arr.shape), "offset": -1}
            continue
        offset = _align(offset)
        descriptors[key] = {"dtype": arr.dtype.str, "shape": list(arr.shape), "offset": offset}
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for key, arr in arrays.items():
        desc = descriptors[key]
        if desc["offset"] < 0:
            continue
        view = np.frombuffer(
            shm.buf, dtype=arr.dtype, count=arr.size, offset=desc["offset"]
        )
        view[:] = arr.ravel()
    return shm, descriptors


def _attach_array(shm, desc: dict) -> np.ndarray:
    dtype = np.dtype(desc["dtype"])
    shape = tuple(desc["shape"])
    if desc["offset"] < 0:
        arr = np.zeros(shape, dtype=dtype)
    else:
        count = int(np.prod(shape)) if shape else 1
        arr = np.frombuffer(
            shm.buf, dtype=dtype, count=count, offset=desc["offset"]
        ).reshape(shape)
    arr.flags.writeable = False
    return arr


# --------------------------------------------------------------- parent side
@dataclass
class BundlePack:
    """A published (engine + traces) segment and its picklable manifest."""

    manifest: dict
    shm: object

    def close(self) -> None:
        """Release and unlink the segment (parent-side, after the pool)."""
        try:
            self.shm.close()
            self.shm.unlink()
        except Exception:  # pragma: no cover - already gone
            pass


def publish_bundle(
    fingerprint: str,
    model: QuantizedTransformerLM,
    traces: Optional[dict[str, CleanTrace]] = None,
) -> BundlePack:
    """Publish a calibrated engine (and its clean traces) for worker attach."""
    with _span("shm.publish", fingerprint=fingerprint[:12]) as sp:
        arrays = _collect_model_arrays(model)
        trace_metas: list[dict] = []
        if traces:
            trace_arrays, trace_metas = _collect_trace_arrays(traces)
            arrays.update(trace_arrays)
        shm, descriptors = _pack_arrays(arrays)
        sp.set(nbytes=shm.size, arrays=len(descriptors), traces=len(trace_metas))
        manifest = {
            "fingerprint": fingerprint,
            "shm_name": shm.name,
            "config": dataclasses.asdict(model.config),
            "mode": model.executor.mode,
            "wraparound": model.executor.wraparound,
            "backend": model.executor.backend.name,
            "scale_store": dict(model.executor.scale_store),
            "arrays": descriptors,
            "traces": trace_metas,
        }
        return BundlePack(manifest=manifest, shm=shm)


# --------------------------------------------------------------- worker side
def _open_segment(name: str):
    from multiprocessing import shared_memory

    # Attach without resource tracking: only the creating parent owns the
    # segment's lifetime; an attacher's tracker must never unlink it out
    # from under the other workers (nor, under fork, poison the shared
    # tracker's registry with duplicate entries). 3.13+ supports this
    # directly via ``track=False``; on 3.10-3.12 the POSIX attach path
    # registers unconditionally (bpo-38119), so suppress the registration
    # for the duration of the attach — a process-local patch, invisible to
    # the tracker and to other segments.
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - interpreter-version dependent
        from multiprocessing import resource_tracker

        saved_register = resource_tracker.register
        resource_tracker.register = lambda *a, **kw: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = saved_register
    _ATTACHED.append(shm)
    return shm


def attach_model(manifest: dict, shm=None) -> QuantizedTransformerLM:
    """Rebuild the engine from a manifest as zero-copy read-only views."""
    if shm is None:
        shm = _open_segment(manifest["shm_name"])
    get = lambda key: _attach_array(shm, manifest["arrays"][key])  # noqa: E731
    config = ModelConfig(**manifest["config"])
    model = object.__new__(QuantizedTransformerLM)
    # Runtime state comes from the same initializer __init__ uses, so an
    # attribute added there can never be silently absent on a worker.
    model._init_runtime(config)
    model.executor.wraparound = manifest["wraparound"]
    model.executor.mode = manifest["mode"]
    # Backend provenance travels with the published engine; resolve_backend
    # degrades to the exact default with a WARNING when the worker lacks the
    # parent's backend (mixed-availability pools must never compute wrong).
    model.executor.backend = resolve_backend(manifest.get("backend"))
    model.executor.scale_store = dict(manifest["scale_store"])
    model.embed = get("embed")
    model.pos_embed = get("pos_embed") if "pos_embed" in manifest["arrays"] else None
    model.lm_head = get("lm_head")
    model.final_norm_w = get("final_norm_w")
    model.final_norm_b = (
        get("final_norm_b") if "final_norm_b" in manifest["arrays"] else None
    )
    layers: list[dict[str, object]] = [{} for _ in range(config.n_layers)]
    for key in manifest["arrays"]:
        if not key.startswith("L"):
            continue
        layer_tag, name = key.split("/", 1)
        idx = int(layer_tag[1:])
        if name.endswith(".q"):
            base = name[:-2]
            layers[idx][base] = QuantizedWeight.from_parts(
                q=get(f"{layer_tag}/{base}.q"),
                params=QuantParams(scale=get(f"{layer_tag}/{base}.scale")),
                q_f64=get(f"{layer_tag}/{base}.qf"),
            )
        elif name.endswith(".qf") or name.endswith(".scale"):
            continue  # consumed alongside ".q"
        else:
            layers[idx][name] = get(key)
    model.layers = layers
    return model


def attach_traces(manifest: dict, shm=None) -> dict[str, CleanTrace]:
    """Rebuild the manifest's clean traces as zero-copy read-only views."""
    if shm is None:
        shm = _open_segment(manifest["shm_name"])
    get = lambda key: _attach_array(shm, manifest["arrays"][key])  # noqa: E731
    traces: dict[str, CleanTrace] = {}
    for meta in manifest["traces"]:
        prefix = meta["prefix"]
        kv = None
        if meta["has_kv"]:
            kv = [
                (get(f"{prefix}/kv{i}/k"), get(f"{prefix}/kv{i}/v"))
                for i in range(meta["n_layers"])
            ]
        traces[meta["key"]] = CleanTrace(
            kind=meta["kind"],
            boundaries=[get(f"{prefix}/b{i}") for i in range(meta["n_layers"])],
            calls_by_layer=[
                [_call_from_meta(c) for c in layer_calls]
                for layer_calls in meta["calls"]
            ],
            logits=get(f"{prefix}/logits"),
            kv=kv,
            new_tokens=get(f"{prefix}/tokens") if meta["has_tokens"] else None,
            decode_calls=[_call_from_meta(c) for c in meta["decode_calls"]]
            if meta["decode_calls"] is not None
            else None,
            backend=meta.get("backend", "numpy-f64"),
            backend_exact=meta.get("backend_exact", True),
        )
    return traces


def attach_bundle(manifest: dict) -> QuantizedTransformerLM:
    """Worker-side entry point: attach the segment, register the engine in
    the evaluator cache and the traces in the process trace store."""
    from repro.campaigns import chaos
    from repro.characterization.evaluator import register_quantized_model

    # Chaos fault point: an injected attach failure exercises the same
    # degrade path as a real /dev/shm problem (worker rebuilds its own).
    chaos.maybe_fail_shm_attach()
    with _span("shm.attach", fingerprint=manifest["fingerprint"][:12]):
        shm = _open_segment(manifest["shm_name"])
        model = attach_model(manifest, shm)
        register_quantized_model(manifest["fingerprint"], model)
        for key, trace in attach_traces(manifest, shm).items():
            TRACES.put(key, trace)
        return model
