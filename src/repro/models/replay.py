"""Clean-trace replay engine: resume injected forwards from the first
targeted layer boundary.

Every campaign trial corrupts a small subset of GEMM sites (one layer band,
one component, one stage), yet the seed engine re-ran the *entire* forward
per trial. All computation upstream of the first targeted site is
bit-identical to the fault-free run, so one clean forward per (model,
token-content) cell can be recorded once and reused by every trial of that
cell:

- :class:`CleanTrace` stores the per-layer boundary activations, the final
  logits, the post-prefill KV segments (generation traces), and a per-call
  :class:`GemmCall` log of the skipped work (site, MACs, output shape);
- :class:`TraceStore` keys traces by model fingerprint + token digest +
  quantization mode, so traces are shared across evaluators, campaign
  trials, and (via ``repro.models.sharing``) worker processes;
- :func:`replay_skipped_calls` replays the *bookkeeping* of the skipped
  prefix — injector call-counter advances, protector zero-discrepancy
  inspections, MAC accounting — so a resumed forward is indistinguishable
  from a full one: identical logits, identical RNG streams at every
  downstream targeted site, identical injector/protector statistics, and
  identical energy counters.

See DESIGN.md section 7 for the invariants and the invalidation rules.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.dispatch.pipeline import GemmCallRecord
from repro.errors.sites import Stage

#: Backwards-compatible alias: the per-call record now lives in the
#: dispatch pipeline (see DESIGN.md section 8), since live dispatch and
#: replayed bookkeeping share one instrument protocol.
GemmCall = GemmCallRecord


def _freeze(arr: np.ndarray) -> np.ndarray:
    """Mark a trace array read-only: traces are shared across trials (and
    processes), so accidental in-place mutation must raise, not corrupt."""
    arr = np.ascontiguousarray(arr)
    arr.flags.writeable = False
    return arr


@dataclass
class CleanTrace:
    """Recorded state of one fault-free forward (see DESIGN.md section 7).

    ``kind`` is ``"full"`` (a ``forward_full`` scoring pass) or
    ``"generate"`` (a prefill + lock-step decode). ``boundaries[i]`` is the
    hidden state *entering* layer ``i``; ``logits`` is the forward's output
    (full logits for ``"full"``, last-position prefill logits for
    ``"generate"``). Generation traces additionally carry the post-prefill
    KV segments per layer and the clean greedy continuation.
    """

    kind: str
    boundaries: list[np.ndarray]
    calls_by_layer: list[list[GemmCall]]
    logits: np.ndarray
    kv: Optional[list[tuple[np.ndarray, np.ndarray]]] = None
    new_tokens: Optional[np.ndarray] = None
    decode_calls: Optional[list[GemmCall]] = None
    #: Provenance: which GEMM backend produced this trace, and whether it
    #: is exact (bit-identical to the numpy-f64 oracle). Exact traces
    #: interchange freely across exact backends; anything else is refused
    #: by :func:`check_trace_backend` (DESIGN.md section 11).
    backend: str = "numpy-f64"
    backend_exact: bool = True

    def __post_init__(self) -> None:
        self.boundaries = [_freeze(b) for b in self.boundaries]
        self.logits = _freeze(self.logits)
        if self.kv is not None:
            self.kv = [(_freeze(k), _freeze(v)) for k, v in self.kv]
        if self.new_tokens is not None:
            self.new_tokens = _freeze(self.new_tokens)

    @property
    def nbytes(self) -> int:
        total = sum(b.nbytes for b in self.boundaries) + self.logits.nbytes
        if self.kv is not None:
            total += sum(k.nbytes + v.nbytes for k, v in self.kv)
        if self.new_tokens is not None:
            total += self.new_tokens.nbytes
        return total


class TraceStore:
    """Process-wide clean-trace cache keyed by content, not identity.

    A key bakes in everything a trace's bit-exactness depends on: the model
    fingerprint (weights + calibration recipe), the exact token content, the
    forward kind/stage/generation length, and the executor's quantization
    mode and accumulator semantics. Anything else (injector, protector, the
    choice among *exact* GEMM backends) cannot change a clean forward's
    bits, so it is *not* part of the key — that is what makes one trace
    serve every trial of a cell. A non-exact backend is the exception: its
    name is appended to the key (see :meth:`ReplaySession.key_full`), so
    its traces never collide with the exact ones.

    The store is a byte-capped LRU (``max_bytes``, default from
    ``REPRO_TRACE_CACHE_MB``, 512 MB): a long-lived process sweeping many
    (model, task, sizing) cells evicts the least-recently-used traces
    instead of growing without bound. Eviction only costs speed — a missing
    trace re-records on the next fault-free forward, or the trial falls
    back to the full route.
    """

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        #: ``None`` resolves ``REPRO_TRACE_CACHE_MB`` lazily at each put, so
        #: the knob works whenever it is set — the global ``TRACES`` store is
        #: constructed at import time, long before user code runs.
        self.max_bytes = max_bytes
        self._traces: OrderedDict[str, CleanTrace] = OrderedDict()
        self._nbytes = 0
        #: Plain-int hit/miss tallies; ``repro.telemetry`` mirrors them into
        #: gauges at snapshot time rather than importing a registry here.
        self.hits = 0
        self.misses = 0

    def _cap(self) -> int:
        if self.max_bytes is not None:
            return self.max_bytes
        try:
            return int(os.environ.get("REPRO_TRACE_CACHE_MB", "512")) << 20
        except ValueError:  # malformed value: fall back, don't crash scoring
            return 512 << 20

    def get(self, key: str) -> Optional[CleanTrace]:
        trace = self._traces.get(key)
        if trace is None:
            self.misses += 1
            return None
        self.hits += 1
        self._traces.move_to_end(key)
        return trace

    def put(self, key: str, trace: CleanTrace) -> None:
        old = self._traces.pop(key, None)
        if old is not None:
            self._nbytes -= old.nbytes
        self._traces[key] = trace
        self._nbytes += trace.nbytes
        # Never evict the trace just inserted: one oversized trace must
        # still be usable for the trials that immediately follow it.
        cap = self._cap()
        while self._nbytes > cap and len(self._traces) > 1:
            _, evicted = self._traces.popitem(last=False)
            self._nbytes -= evicted.nbytes

    def clear(self) -> None:
        self._traces.clear()
        self._nbytes = 0

    def items(self):
        return self._traces.items()

    def __len__(self) -> int:
        return len(self._traces)

    @property
    def nbytes(self) -> int:
        return self._nbytes


#: The shared per-process store. Campaign workers attach shared-memory
#: traces into this store at pool-init time (see repro.models.sharing).
TRACES = TraceStore()


def _token_digest(tokens: np.ndarray) -> str:
    arr = np.ascontiguousarray(tokens)
    digest = hashlib.sha256(str((arr.shape, str(arr.dtype))).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()[:24]


@dataclass
class ReplaySession:
    """Binds a model's trace identity (its fingerprint) to a trace store.

    Attach to an engine via ``model.replay_into(session)``; the engine then
    records a clean trace on the first fault-free forward per token content
    and resumes every later injected forward from the earliest targeted
    layer boundary.
    """

    fingerprint: str
    store: TraceStore = field(default_factory=lambda: TRACES)

    @staticmethod
    def _backend_tag(executor) -> str:
        """Key suffix quarantining non-exact backends' traces; empty for
        exact backends, whose traces are interchangeable by construction."""
        backend = executor.backend
        return "" if backend.exact else f"/{backend.name}"

    def key_full(self, tokens: np.ndarray, stage: Stage, executor) -> str:
        return (
            f"{self.fingerprint}/full/{stage.value}/{executor.mode}/"
            f"w{int(executor.wraparound)}/{_token_digest(tokens)}"
            f"{self._backend_tag(executor)}"
        )

    def key_generate(self, prompts: np.ndarray, max_new_tokens: int, executor) -> str:
        return (
            f"{self.fingerprint}/gen{max_new_tokens}/{executor.mode}/"
            f"w{int(executor.wraparound)}/{_token_digest(prompts)}"
            f"{self._backend_tag(executor)}"
        )


def check_trace_backend(trace: CleanTrace, executor) -> None:
    """Refuse a cross-backend trace resume unless it is provably bit-safe.

    Two exact backends produce identical traces, so resuming one's trace
    under the other is safe by construction; any pairing involving a
    non-exact backend is not, and raises instead of silently mixing
    numerics (DESIGN.md section 11).
    """
    backend = executor.backend
    t_name = getattr(trace, "backend", "numpy-f64")
    t_exact = getattr(trace, "backend_exact", True)
    if t_name == backend.name:
        return
    if t_exact and backend.exact:
        return
    raise RuntimeError(
        f"clean trace recorded under GEMM backend {t_name!r} "
        f"(exact={t_exact}) cannot be resumed under {backend.name!r} "
        f"(exact={backend.exact}); only exact<->exact reuse is bit-safe"
    )


def resume_layer(
    injector,
    n_layers: int,
    components: Sequence,
    stage: Stage,
) -> Optional[int]:
    """First layer an attached injector could touch in ``stage``.

    ``None`` means no site of this forward is targeted (disabled injector,
    stage filtered out, disjoint components, out-of-range layers) and the
    whole forward can be restored from the trace; ``0`` means resume from
    the first layer (the only saving is the embedding). A missing injector
    targets nothing.
    """
    if injector is None or not injector.enabled:
        return None
    return injector.site_filter.earliest_layer(
        n_layers, components=components, stage=stage
    )


def replay_skipped_calls(
    executor, calls: Sequence[GemmCallRecord], lanes: int = 1
) -> None:
    """Replay the bookkeeping of skipped clean GEMMs on ``executor``.

    Each record dispatches through the executor's instrument chain
    (``GemmExecutor.replay_call``), mirroring what a full forward would
    have done at each untargeted site: charge the MACs, advance the
    injector's per-call RNG counter (``register_untargeted``), hand the
    protector the zero-discrepancy checksum inspections it would have
    performed (sliced and charged by the same
    :func:`~repro.abft.checksums.slice_inspections` protocol as the live
    protect instrument), and charge the hardware cost instrument — so
    recovery statistics, charged recovery MACs, and measured cycles are
    identical whether or not the prefix was recomputed.

    ``lanes > 1`` replays a *lane-packed* forward (DESIGN.md section 9)
    against a trace recorded on the per-lane token block: each record's
    leading batch dimension and MAC count scale by the lane count, exactly
    matching the calls a packed clean forward would have logged. The
    lane-aware instruments then split the bookkeeping back per lane, so
    every lane's counters equal its solo run's.
    """
    if lanes == 1:
        for call in calls:
            executor.replay_call(call.site, call.macs, call.shape)
        return
    for call in calls:
        shape = (call.shape[0] * lanes,) + tuple(call.shape[1:])
        executor.replay_call(call.site, call.macs * lanes, shape)
