"""Plain-text table rendering for benchmark and characterization reports.

The benchmark harness reproduces the paper's tables as text; this module
renders aligned ASCII tables without any third-party dependency.
"""

from __future__ import annotations

from typing import Any, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted compactly; every other value is ``str()``-ed.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(sep))
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
