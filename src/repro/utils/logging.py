"""Minimal logging setup shared across the library."""

from __future__ import annotations

import logging
import os


def _env_level() -> int | None:
    """Level from ``REPRO_LOG_LEVEL`` (name or number), ``None`` if unset
    or unparseable — a typo must not crash whatever imported us."""
    raw = os.environ.get("REPRO_LOG_LEVEL", "").strip()
    if not raw:
        return None
    if raw.lstrip("-").isdigit():
        return int(raw)
    level = logging.getLevelName(raw.upper())
    return level if isinstance(level, int) else None


def get_logger(name: str) -> logging.Logger:
    """Return a namespaced logger configured once with a terse format.

    ``hasHandlers()`` (not ``handlers``) guards the handler install: it
    walks the ancestor chain, so when the application — or, for forked
    campaign workers, the parent process — already configured logging, we
    emit through that configuration instead of adding a second handler
    that would print every record twice. ``REPRO_LOG_LEVEL`` (a name like
    ``DEBUG``/``WARNING`` or a number) sets the library's level and, being
    an environment variable, reaches spawned multiprocessing workers that
    re-import this module with no memory of the parent's setup.
    """
    logger = logging.getLogger(f"repro.{name}")
    root = logging.getLogger("repro")
    if not root.hasHandlers():
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
        root.addHandler(handler)
        if root.level == logging.NOTSET:
            root.setLevel(logging.INFO)  # inherited config keeps its level
    level = _env_level()
    if level is not None:
        root.setLevel(level)
    return logger
