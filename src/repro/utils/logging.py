"""Minimal logging setup shared across the library."""

from __future__ import annotations

import logging


def get_logger(name: str) -> logging.Logger:
    """Return a namespaced logger configured once with a terse format."""
    logger = logging.getLogger(f"repro.{name}")
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
        root.addHandler(handler)
        root.setLevel(logging.INFO)
    return logger
