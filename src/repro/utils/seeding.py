"""Deterministic random-number-generator management.

Every stochastic subsystem (weight init, corpus generation, error injection)
receives its own :class:`numpy.random.Generator` derived from a root seed plus
a string key, so experiments are reproducible and subsystems are independent:
changing the error-injection draw count never perturbs the corpus.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np


def _key_to_ints(key: str) -> list[int]:
    """Hash a string key into a list of 32-bit integers for SeedSequence."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


def derive_rng(seed: int, key: str = "") -> np.random.Generator:
    """Return a Generator deterministically derived from ``seed`` and ``key``.

    Parameters
    ----------
    seed:
        Root experiment seed.
    key:
        Subsystem label, e.g. ``"weights/layer3"`` or ``"errors/prefill"``.
    """
    entropy = [seed & 0xFFFFFFFF, (seed >> 32) & 0xFFFFFFFF] + _key_to_ints(key)
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_rngs(seed: int, keys: Iterable[str]) -> dict[str, np.random.Generator]:
    """Derive one independent Generator per key."""
    return {key: derive_rng(seed, key) for key in keys}
