"""Shared utilities: seeding, table formatting, lightweight logging."""

from repro.utils.seeding import derive_rng, spawn_rngs
from repro.utils.tables import format_table
from repro.utils.logging import get_logger

__all__ = ["derive_rng", "spawn_rngs", "format_table", "get_logger"]
