"""Command-line interface: run the reproduction experiments from a shell.

Examples
--------
::

    python -m repro zoo                                  # list/train models
    python -m repro characterize --model opt-mini        # Q1.3 sweep
    python -m repro magfreq --model opt-mini --component O
    python -m repro sweep --model opt-mini --method statistical-abft
    python -m repro sweetspots --model opt-mini
    python -m repro overhead --size 256                  # Fig. 8
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.characterization.evaluator import ModelEvaluator
from repro.characterization.questions import q13_components, q14_magfreq
from repro.circuits.synthesis import overhead_report
from repro.core.methods import method_names
from repro.core.realm import ReaLMConfig, ReaLMPipeline
from repro.errors.sites import Component, component_kind
from repro.training.zoo import ZOO_SPECS, get_pretrained
from repro.utils.tables import format_table


def _add_model_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model", default="opt-mini", choices=sorted(ZOO_SPECS),
        help="zoo model to use (trained and cached on first use)",
    )


def _pipeline(args: argparse.Namespace) -> ReaLMPipeline:
    bundle = get_pretrained(args.model)
    return ReaLMPipeline(
        bundle, ReaLMConfig(task=args.task, budget=args.budget)
    )


def cmd_zoo(args: argparse.Namespace) -> str:
    rows = []
    for name, spec in sorted(ZOO_SPECS.items()):
        cfg = spec["config"]
        rows.append(
            [name, cfg["arch"], cfg["n_layers"], cfg["d_model"], cfg["vocab_size"]]
        )
    out = format_table(
        ["name", "arch", "layers", "d_model", "vocab"], rows, title="Model zoo"
    )
    if args.train:
        for name in sorted(ZOO_SPECS):
            bundle = get_pretrained(name)
            out += f"\ntrained {name}: final loss {bundle.final_loss:.4f}"
    return out


def cmd_characterize(args: argparse.Namespace) -> str:
    evaluator = ModelEvaluator(get_pretrained(args.model), args.task)
    bers = [float(b) for b in args.bers.split(",")]
    records = q13_components(evaluator, bers=bers)
    rows = [
        [r.label, component_kind(Component(r.label)), f"{r.ber:.0e}",
         r.score, r.degradation]
        for r in records
    ]
    return format_table(
        ["component", "kind", "BER", "score", "degradation"], rows,
        title=f"Q1.3 component resilience — {args.model} / {args.task} "
              f"(clean={evaluator.clean_score:.4g})",
    )


def cmd_magfreq(args: argparse.Namespace) -> str:
    evaluator = ModelEvaluator(get_pretrained(args.model), args.task)
    component = Component(args.component)
    records = q14_magfreq(evaluator, component)
    rows = [
        [r.extra["mag"], r.extra["freq"], r.extra["msd"], r.degradation]
        for r in records
    ]
    return format_table(
        ["mag", "freq", "MSD", "degradation"], rows,
        title=f"Q1.4 magnitude/frequency grid — {component.value} "
              f"({component_kind(component)})",
    )


def cmd_sweep(args: argparse.Namespace) -> str:
    pipe = _pipeline(args)
    runs = pipe.voltage_sweep(args.method, None)
    rows = [
        [f"{r.voltage:.2f}", f"{r.ber:.1e}", r.metric, r.degradation,
         f"{100*r.recovery_rate:.1f}%", r.energy_j * 1e6,
         "yes" if r.feasible else "NO"]
        for r in runs
    ]
    return format_table(
        ["V", "BER", "metric", "degradation", "recovery", "energy (uJ)", "feasible"],
        rows,
        title=f"voltage sweep — {args.method} on {args.model} (whole model)",
    )


def cmd_sweetspots(args: argparse.Namespace) -> str:
    pipe = _pipeline(args)
    rows_raw = pipe.sweet_spot_table(list(pipe.bundle.config.components))
    rows = [
        [r.component, r.kind, f"{r.optimal_voltage:.2f}", r.energy_j * 1e9,
         r.baseline_method, f"{r.saving_pct:.2f}%"]
        for r in rows_raw
    ]
    return format_table(
        ["component", "kind", "our V*", "our E (nJ)", "baseline", "saving"],
        rows,
        title=f"Tab. II sweet spots — {args.model}",
    )


def cmd_overhead(args: argparse.Namespace) -> str:
    rows = [
        [r.dataflow, r.scheme, r.area_mm2, f"{r.area_overhead_pct:.3f}%",
         r.power_mw, f"{r.power_overhead_pct:.3f}%"]
        for r in overhead_report(args.size)
    ]
    return format_table(
        ["dataflow", "scheme", "area (mm^2)", "area ovh", "power (mW)", "power ovh"],
        rows,
        title=f"Fig. 8 circuit overhead at {args.size}x{args.size}",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ReaLM (DAC 2025) reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("zoo", help="list (and optionally pre-train) zoo models")
    p.add_argument("--train", action="store_true", help="train every model now")
    p.set_defaults(func=cmd_zoo)

    p = sub.add_parser("characterize", help="Q1.3 per-component BER sweep")
    _add_model_arg(p)
    p.add_argument("--task", default="perplexity")
    p.add_argument("--bers", default="1e-4,1e-3,1e-2", help="comma-separated BERs")
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("magfreq", help="Q1.4 magnitude/frequency grid")
    _add_model_arg(p)
    p.add_argument("--task", default="perplexity")
    p.add_argument("--component", default="O",
                   choices=[c.value for c in Component])
    p.set_defaults(func=cmd_magfreq)

    p = sub.add_parser("sweep", help="Fig. 9 voltage sweep for one method")
    _add_model_arg(p)
    p.add_argument("--task", default="perplexity")
    p.add_argument("--budget", type=float, default=0.3)
    p.add_argument("--method", default="statistical-abft", choices=method_names())
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("sweetspots", help="Tab. II per-component sweet spots")
    _add_model_arg(p)
    p.add_argument("--task", default="perplexity")
    p.add_argument("--budget", type=float, default=0.3)
    p.set_defaults(func=cmd_sweetspots)

    p = sub.add_parser("overhead", help="Fig. 8 circuit overhead report")
    p.add_argument("--size", type=int, default=256)
    p.set_defaults(func=cmd_overhead)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    print(args.func(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
