"""Command-line interface: run the reproduction experiments from a shell.

Examples
--------
::

    python -m repro zoo                                  # list/train models
    python -m repro characterize --model opt-mini        # Q1.3 sweep
    python -m repro characterize --seeds 5 --workers 4   # Monte-Carlo fan-out
    python -m repro magfreq --model opt-mini --component O
    python -m repro sweep --model opt-mini --method statistical-abft
    python -m repro sweetspots --model opt-mini
    python -m repro overhead --size 256                  # Fig. 8
    python -m repro campaign example > grid.json         # campaign engine
    python -m repro campaign run --spec grid.json --workers 4
    python -m repro campaign status --spec grid.json
    python -m repro campaign report --spec grid.json --csv results.csv
    python -m repro campaign report --spec grid.json --costs
    python -m repro backend list                         # GEMM backends
    python -m repro campaign run --spec grid.json --backend blocked
    python -m repro campaign run --spec grid.json --workers 4 \\
        --trial-timeout 60 --max-retries 3               # supervision knobs
    python -m repro campaign run --spec grid.json --chaos "seed=1,kill=0.5"
    python -m repro campaign quarantine list --spec grid.json
    python -m repro campaign quarantine clear --spec grid.json
    python -m repro campaign serve --spec grid.json --port 8321  # fabric broker
    python -m repro campaign worker --connect http://127.0.0.1:8321
    python -m repro campaign watch --spec grid.json --store /shared/store
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import Optional, Sequence

import repro.telemetry as telemetry
from repro.campaigns.progress import (
    read_latest_progress,
    render_metrics,
    render_snapshot,
)
from repro.campaigns.report import aggregate, export_csv, report_table, status_table
from repro.campaigns.spec import CampaignSpec, ErrorSpec, SiteSpec, Trial, example_spec
from repro.campaigns.store import ResultStore, default_store_dir
from repro.characterization.evaluator import ModelEvaluator
from repro.characterization.questions import (
    q13_campaign_spec,
    q13_components,
    q14_campaign_spec,
    q14_magfreq,
)
from repro.circuits.synthesis import overhead_report
from repro.core.methods import method_names
from repro.core.realm import ReaLMConfig, ReaLMPipeline
from repro.errors.sites import Component, component_kind
from repro.training.zoo import ZOO_SPECS, get_pretrained
from repro.utils.tables import format_table


def _add_model_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model", default="opt-mini", choices=sorted(ZOO_SPECS),
        help="zoo model to use (trained and cached on first use)",
    )


def _add_seed_args(parser: argparse.ArgumentParser, fan_out: bool) -> None:
    parser.add_argument(
        "--seed", type=int, default=0, help="root error-injection seed",
    )
    if fan_out:
        parser.add_argument(
            "--seeds", type=int, default=1,
            help="fan the sweep out to N seeds (seed..seed+N-1) via the "
                 "campaign engine and report mean +/- stderr",
        )
        parser.add_argument(
            "--workers", type=int, default=0,
            help="worker processes for the fanned-out campaign (0 = serial)",
        )


def _pipeline(args: argparse.Namespace) -> ReaLMPipeline:
    bundle = get_pretrained(args.model)
    return ReaLMPipeline(
        bundle, ReaLMConfig(task=args.task, budget=args.budget, seed=args.seed)
    )


def _run_cli_campaign(spec: CampaignSpec, workers: int):
    """Run a CLI-built campaign in its default store; return (store, report).

    The caller is responsible for closing the returned store (``with store:``);
    on executor failure it is closed here before re-raising.
    """
    from repro.campaigns.executor import run_campaign

    store = ResultStore(default_store_dir(spec.name))
    try:
        report = run_campaign(spec, store, workers=workers)
    except BaseException:
        store.close()
        raise
    return store, report


def _with_errors(args: argparse.Namespace, report, text: str) -> str:
    """Append per-trial failure lines and flag a nonzero exit on failures."""
    if report.failed:
        text += "\n" + "\n".join(f"FAILED {line}" for line in report.errors)
        args.exit_code = 1
    return text


def cmd_zoo(args: argparse.Namespace) -> str:
    rows = []
    for name, spec in sorted(ZOO_SPECS.items()):
        cfg = spec["config"]
        rows.append(
            [name, cfg["arch"], cfg["n_layers"], cfg["d_model"], cfg["vocab_size"]]
        )
    out = format_table(
        ["name", "arch", "layers", "d_model", "vocab"], rows, title="Model zoo"
    )
    if args.train:
        for name in sorted(ZOO_SPECS):
            bundle = get_pretrained(name)
            out += f"\ntrained {name}: final loss {bundle.final_loss:.4f}"
    return out


def cmd_characterize(args: argparse.Namespace) -> str:
    bers = [float(b) for b in args.bers.split(",")]
    if args.seeds > 1:
        spec = q13_campaign_spec(
            args.model, args.task, bers,
            seeds=range(args.seed, args.seed + args.seeds),
        )
        store, campaign = _run_cli_campaign(spec, args.workers)
        with store:
            rows = [
                [
                    s.trial.site.components[0],
                    component_kind(Component(s.trial.site.components[0])),
                    f"{s.trial.error.ber:.0e}",
                    s.n,
                    s.mean_score,
                    s.mean_degradation,
                    s.stderr,
                ]
                for s in aggregate(store, spec)
            ]
        return _with_errors(args, campaign, format_table(
            ["component", "kind", "BER", "seeds", "score", "degradation", "+/-"],
            rows,
            title=f"Q1.3 component resilience — {args.model} / {args.task} "
                  f"({campaign.summary()})",
        ))
    evaluator = ModelEvaluator(get_pretrained(args.model), args.task)
    records = q13_components(evaluator, bers=bers, seed=args.seed)
    rows = [
        [r.label, component_kind(Component(r.label)), f"{r.ber:.0e}",
         r.score, r.degradation]
        for r in records
    ]
    return format_table(
        ["component", "kind", "BER", "score", "degradation"], rows,
        title=f"Q1.3 component resilience — {args.model} / {args.task} "
              f"(clean={evaluator.clean_score:.4g})",
    )


def cmd_magfreq(args: argparse.Namespace) -> str:
    component = Component(args.component)
    if args.seeds > 1:
        spec = q14_campaign_spec(
            args.model, args.task, component,
            seeds=range(args.seed, args.seed + args.seeds),
        )
        store, campaign = _run_cli_campaign(spec, args.workers)
        with store:
            summaries = aggregate(store, spec)
        rows = [
            [s.trial.error.mag, s.trial.error.freq,
             s.trial.error.mag * s.trial.error.freq, s.n,
             s.mean_degradation, s.stderr]
            for s in summaries
        ]
        return _with_errors(args, campaign, format_table(
            ["mag", "freq", "MSD", "seeds", "degradation", "+/-"], rows,
            title=f"Q1.4 magnitude/frequency grid — {component.value} "
                  f"({component_kind(component)}) ({campaign.summary()})",
        ))
    evaluator = ModelEvaluator(get_pretrained(args.model), args.task)
    records = q14_magfreq(evaluator, component, seed=args.seed)
    rows = [
        [r.extra["mag"], r.extra["freq"], r.extra["msd"], r.degradation]
        for r in records
    ]
    return format_table(
        ["mag", "freq", "MSD", "degradation"], rows,
        title=f"Q1.4 magnitude/frequency grid — {component.value} "
              f"({component_kind(component)})",
    )


def cmd_sweep(args: argparse.Namespace) -> str:
    pipe = _pipeline(args)
    runs = pipe.voltage_sweep(args.method, None)
    rows = [
        [f"{r.voltage:.2f}", f"{r.ber:.1e}", r.metric, r.degradation,
         f"{100*r.recovery_rate:.1f}%", r.energy_j * 1e6,
         "yes" if r.feasible else "NO"]
        for r in runs
    ]
    return format_table(
        ["V", "BER", "metric", "degradation", "recovery", "energy (uJ)", "feasible"],
        rows,
        title=f"voltage sweep — {args.method} on {args.model} (whole model)",
    )


def cmd_sweetspots(args: argparse.Namespace) -> str:
    pipe = _pipeline(args)
    rows_raw = pipe.sweet_spot_table(list(pipe.bundle.config.components))
    rows = [
        [r.component, r.kind, f"{r.optimal_voltage:.2f}", r.energy_j * 1e9,
         r.baseline_method, f"{r.saving_pct:.2f}%"]
        for r in rows_raw
    ]
    return format_table(
        ["component", "kind", "our V*", "our E (nJ)", "baseline", "saving"],
        rows,
        title=f"Tab. II sweet spots — {args.model}",
    )


def cmd_overhead(args: argparse.Namespace) -> str:
    rows = [
        [r.dataflow, r.scheme, r.area_mm2, f"{r.area_overhead_pct:.3f}%",
         r.power_mw, f"{r.power_overhead_pct:.3f}%"]
        for r in overhead_report(args.size)
    ]
    return format_table(
        ["dataflow", "scheme", "area (mm^2)", "area ovh", "power (mW)", "power ovh"],
        rows,
        title=f"Fig. 8 circuit overhead at {args.size}x{args.size}",
    )


# ----------------------------------------------------------------- campaigns
def _load_spec(args: argparse.Namespace) -> CampaignSpec:
    return CampaignSpec.from_json(Path(args.spec).read_text())


def _open_store(
    args: argparse.Namespace, spec: CampaignSpec, create: bool = True
) -> ResultStore:
    directory = Path(args.store) if args.store else default_store_dir(spec.name)
    return ResultStore(directory, create=create)


def cmd_backend_list(args: argparse.Namespace) -> str:
    """Enumerate registered GEMM backends with availability and timings."""
    import numpy as np

    from repro.dispatch.backends import list_backends

    shapes = [(32, 64, 64), (64, 256, 64), (128, 512, 128)]
    operands = []
    rng = np.random.default_rng(0)
    if not args.no_timing:
        for m, k, n in shapes:
            a = rng.integers(-127, 128, size=(m, k), dtype=np.int8)
            b = rng.integers(-127, 128, size=(k, n), dtype=np.int8)
            operands.append((a, b))
    rows = []
    for backend in list_backends():
        available = backend.available()
        row = [
            backend.name,
            "yes" if available else f"no ({backend.why_unavailable()})",
            "yes" if backend.exact else "NO",
            "yes" if backend.threaded else "no",
            backend.kernel() if available else "-",
        ]
        if not args.no_timing:
            if available:
                timings = []
                for a, b in operands:
                    backend.matmul_int32(a, b)  # warm
                    best = min(
                        _time_once(backend, a, b) for _ in range(3)
                    )
                    timings.append(f"{best * 1e3:.2f}")
                row.append(" / ".join(timings))
            else:
                row.append("-")
        rows.append(row)
    header = ["backend", "available", "exact", "threaded", "kernel"]
    if not args.no_timing:
        shape_label = ", ".join("x".join(map(str, s)) for s in shapes)
        header.append(f"ms ({shape_label})")
    out = format_table(header, rows, title="registered GEMM backends")
    if getattr(args, "tune", False):
        out += "\n\n" + _tune_auto_backend()
    return out


def _tune_auto_backend() -> str:
    """Pre-tune ``auto`` on the harvested campaign GEMM mix and render
    the resulting winner table (persisted for every later process)."""
    from repro.dispatch.backends import get_backend
    from repro.dispatch.backends.auto import harvest_workload

    auto = get_backend("auto")
    table = auto.tune(harvest_workload())
    rows = []
    for cls in sorted(table):
        entry = table[cls]
        timings = ", ".join(
            f"{name}={us:.1f}us"
            for name, us in sorted(
                entry["timings_us"].items(), key=lambda kv: kv[1]
            )
        )
        rows.append([cls, entry["winner"], timings])
    return format_table(
        ["shape class", "winner", "timings (best-of)"],
        rows,
        title=f"auto backend winner table ({auto.table_path})",
    )


def _time_once(backend, a, b) -> float:
    start = time.perf_counter()
    backend.matmul_int32(a, b)
    return time.perf_counter() - start


def cmd_campaign_run(args: argparse.Namespace) -> str:
    import dataclasses

    from repro.campaigns.chaos import ChaosSpec
    from repro.campaigns.executor import run_campaign
    from repro.campaigns.supervise import SuperviseConfig

    if args.trace:
        telemetry.enable()
    spec = _load_spec(args)
    if args.backend is not None:
        # replace() re-runs __post_init__, validating the name up front.
        spec = dataclasses.replace(spec, backend=args.backend)
    supervise = None
    if args.trial_timeout is not None or args.max_retries is not None:
        overrides = {}
        if args.trial_timeout is not None:
            overrides["trial_timeout"] = args.trial_timeout
        if args.max_retries is not None:
            overrides["max_retries"] = args.max_retries
        supervise = dataclasses.replace(
            spec.supervise or SuperviseConfig(), **overrides
        )
    chaos = ChaosSpec.from_string(args.chaos) if args.chaos else None
    with _open_store(args, spec) as store:
        lanes = {} if args.lanes is None else {"lane_width": args.lanes}
        report = run_campaign(
            spec, store, workers=args.workers,
            supervise=supervise, chaos=chaos, **lanes,
        )
        out = [f"campaign {spec.name}: {report.summary()}"]
        out.extend(f"FAILED {line}" for line in report.errors)
        if report.quarantined or report.poison_skipped:
            out.append(
                "quarantined trials persist across runs; inspect with "
                "`campaign quarantine list`, re-enable with "
                "`campaign quarantine clear`"
            )
        out.append(f"store: {store.directory}")
        out.append("")
        out.append(report_table(store, spec))
    if args.trace:
        telemetry.export_trace(
            args.trace,
            extra={
                "metrics": telemetry.runtime_snapshot(),
                "gemmSites": telemetry.gemm_trace().rows(),
            },
        )
        out.append(f"trace: {args.trace}")
    if report.failed or report.quarantined:
        args.exit_code = 1  # scripts/CI must not see a failed campaign as success
    return "\n".join(out)


def cmd_campaign_status(args: argparse.Namespace) -> str:
    spec = _load_spec(args)
    try:
        store = _open_store(args, spec, create=False)
    except FileNotFoundError as exc:
        args.exit_code = 1
        return f"{exc} — the campaign has not run (or --store is mistyped)"
    with store:
        out = status_table(spec, store)
        directory = store.directory
        if args.history:
            import json

            history = store.progress_history()
            Path(args.history).write_text(json.dumps(history, indent=2))
            out += f"\nwrote {len(history)} progress snapshot(s) to {args.history}"
    if args.metrics:
        snapshot = read_latest_progress(directory)
        if snapshot is None:
            out += "\n\nno progress snapshots recorded yet"
        else:
            out += "\n\n" + render_metrics(snapshot)
    return out


def cmd_campaign_watch(args: argparse.Namespace) -> str:
    """Live progress: poll the store's ``progress`` table, frame by frame.

    Reads go through :func:`~repro.campaigns.progress.read_latest_progress`
    — a bare read-only SQLite connection — so watching never writes to a
    store another process is running a campaign into.
    """
    spec = _load_spec(args)
    directory = Path(args.store) if args.store else default_store_dir(spec.name)
    remaining = args.refreshes
    last = None
    while True:
        snapshot = read_latest_progress(directory)
        if snapshot is None:
            print(f"waiting for campaign {spec.name} to start ...", flush=True)
        else:
            last = snapshot
            print(render_snapshot(snapshot), flush=True)
            if snapshot.get("state") == "finished":
                break
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                break
        time.sleep(args.interval)
    if last is None:
        args.exit_code = 1
        return f"no progress recorded in {directory}"
    return f"campaign {spec.name}: {last.get('state', '?')}"


def cmd_campaign_report(args: argparse.Namespace) -> str:
    spec = _load_spec(args)
    try:
        store = _open_store(args, spec, create=False)
    except FileNotFoundError as exc:
        args.exit_code = 1
        return f"{exc} — the campaign has not run (or --store is mistyped)"
    with store:
        out = report_table(store, spec, costs=args.costs)
        if args.csv:
            rows = export_csv(store, args.csv, spec)
            out += f"\nwrote {rows} rows to {args.csv}"
    return out


def cmd_campaign_example(args: argparse.Namespace) -> str:
    return example_spec().to_json()


def cmd_campaign_serve(args: argparse.Namespace) -> str:
    """Run the fabric broker: lease the spec's packs to a worker fleet.

    With ``--spec``, runs that campaign and exits when it finishes (or when
    SIGTERM/SIGINT aborts it — the lease journal survives, so rerunning the
    same command resumes). With ``--serve-forever``, stays up afterwards
    accepting further specs over ``POST /api/v1/campaigns``.
    """
    import dataclasses
    import signal as signal_mod
    import threading

    from repro.campaigns.chaos import ChaosSpec
    from repro.campaigns.supervise import SuperviseConfig
    from repro.fabric.broker import BrokerConfig, FabricBroker

    spec = _load_spec(args) if args.spec else None
    if spec is None and not args.store:
        args.exit_code = 2
        return "campaign serve needs --spec and/or --store"
    directory = Path(args.store) if args.store else default_store_dir(spec.name)
    supervise = spec.supervise if spec is not None else None
    overrides = {}
    if args.trial_timeout is not None:
        overrides["trial_timeout"] = args.trial_timeout
    if args.max_retries is not None:
        overrides["max_retries"] = args.max_retries
    if overrides:
        supervise = dataclasses.replace(supervise or SuperviseConfig(), **overrides)
    chaos = ChaosSpec.from_string(args.chaos) if args.chaos else None
    config = BrokerConfig(
        host=args.host,
        port=args.port,
        heartbeat_s=args.heartbeat,
        local_grace_s=args.grace,
        local_workers=args.local_workers,
    )
    if args.lanes is not None:
        config.lane_width = args.lanes
    broker = FabricBroker(directory, config=config, supervise=supervise, chaos=chaos)
    broker.start()
    print(f"fabric broker listening on {broker.url}", flush=True)
    print(f"store: {directory}", flush=True)
    interrupted = threading.Event()
    for sig in (signal_mod.SIGTERM, signal_mod.SIGINT):
        signal_mod.signal(sig, lambda *_: interrupted.set())
    if spec is not None:
        broker.submit(spec, lane_width=args.lanes)
    try:
        if spec is not None and not args.serve_forever:
            while not interrupted.is_set():
                try:
                    report = broker.wait(spec.name, timeout=0.5)
                except TimeoutError:
                    continue
                broker.stop()
                if report.failed or report.quarantined:
                    args.exit_code = 1
                return f"campaign {spec.name}: {report.summary()}\nstore: {directory}"
        else:
            while not interrupted.is_set():
                interrupted.wait(0.5)
    except BaseException:
        broker.stop(abort=True)
        raise
    # Signaled: abort the active campaign so its lease journal survives for
    # the next broker to resume from.
    broker.stop(abort=True)
    args.exit_code = 130
    return f"broker interrupted; lease journal in {directory} resumes the campaign"


def cmd_campaign_worker(args: argparse.Namespace) -> str:
    """Run one fleet worker against a broker started by ``campaign serve``."""
    from repro.fabric.worker import FabricWorker, WorkerConfig

    config = WorkerConfig(
        url=args.connect,
        worker_id=args.id or "",
        max_idle_s=args.max_idle,
    )
    worker = FabricWorker(config)
    worker.install_signal_handlers()
    args.exit_code = worker.run()
    return f"worker {config.worker_id} exited ({args.exit_code})"


def cmd_campaign_quarantine(args: argparse.Namespace) -> str:
    """Inspect or clear the store's poison-trial quarantine (DESIGN.md §12)."""
    spec = _load_spec(args)
    try:
        store = _open_store(args, spec, create=False)
    except FileNotFoundError as exc:
        args.exit_code = 1
        return f"{exc} — the campaign has not run (or --store is mistyped)"
    with store:
        if args.quarantine_command == "clear":
            keys = set(args.keys) if args.keys else None
            removed = store.clear_quarantine(keys)
            return (
                f"cleared {removed} quarantined trial(s); "
                "the next `campaign run` retries them"
            )
        records = store.quarantined_records()
        if not records:
            return "no quarantined trials"
        rows = []
        for record in records:
            failure = record.get("failure", {})
            try:
                label = Trial.from_dict(record["trial"]).cell_label
                seed = record["trial"].get("seed", "?")
            except (KeyError, TypeError, ValueError):
                label, seed = record.get("cell", "?"), "?"
            rows.append([
                record["key"],
                f"{label}#s{seed}",
                failure.get("kind", "?"),
                failure.get("attempts", "?"),
                str(failure.get("error", "?"))[:60],
            ])
        return format_table(
            ["key", "trial", "kind", "attempts", "last error"],
            rows,
            title=f"{len(records)} quarantined trial(s)",
        )


# ------------------------------------------------------------------- tracing
def cmd_trace_export(args: argparse.Namespace) -> str:
    """Trace one injected trial and write a Chrome-trace JSON.

    The export carries the span timeline plus, under the ``"repro"`` key, a
    metrics snapshot and the per-``GemmSite`` table correlating measured
    wall time with the cost model's tiles/cycles/MACs (DESIGN.md section
    10). Load the file in chrome://tracing or https://ui.perfetto.dev.
    """
    from repro.campaigns.lanes import build_injector, build_protector
    from repro.dispatch.cost import CostSpec

    telemetry.enable()
    trial = Trial(
        model=args.model,
        task=args.task,
        site=SiteSpec.only(components=[args.component], stages=["prefill"]),
        error=ErrorSpec.bitflip(args.ber, bits=(30,)),
        seed=args.seed,
    )
    evaluator = ModelEvaluator(get_pretrained(args.model), args.task)
    cost_instrument = CostSpec().build()
    injector = build_injector(trial)
    protector = build_protector(trial, evaluator, None)
    telemetry.gemm_trace().reset()
    score = evaluator.run(injector, protector, cost=cost_instrument)
    rows = telemetry.gemm_trace().rows(cost_instrument.report)
    payload = telemetry.export_trace(
        args.out,
        extra={
            "trial": trial.to_dict(),
            "score": score,
            "degradation": evaluator.degradation(score),
            "metrics": telemetry.runtime_snapshot(),
            "gemmSites": rows,
        },
    )
    out = [
        f"traced {args.model}/{args.task} {args.component}@BER={args.ber:g} "
        f"seed={args.seed}: score {score:.4g} "
        f"(degradation {evaluator.degradation(score):.4g})",
        f"wrote {len(payload['traceEvents'])} span events to {args.out}",
        "",
        format_table(
            ["site", "calls", "replays", "wall (s)", "MACs", "cycles", "tiles"],
            [
                [
                    r["site"], r["calls"], r["replays"], r["wall_s"],
                    r["macs"], r.get("cycles", "-"), r.get("tiles", "-"),
                ]
                for r in rows[: args.top]
            ],
            title="hottest GEMM sites (measured wall vs. modeled cost)",
        ),
    ]
    return "\n".join(out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ReaLM (DAC 2025) reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("zoo", help="list (and optionally pre-train) zoo models")
    p.add_argument("--train", action="store_true", help="train every model now")
    p.set_defaults(func=cmd_zoo)

    p = sub.add_parser("characterize", help="Q1.3 per-component BER sweep")
    _add_model_arg(p)
    p.add_argument("--task", default="perplexity")
    p.add_argument("--bers", default="1e-4,1e-3,1e-2", help="comma-separated BERs")
    _add_seed_args(p, fan_out=True)
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("magfreq", help="Q1.4 magnitude/frequency grid")
    _add_model_arg(p)
    p.add_argument("--task", default="perplexity")
    p.add_argument("--component", default="O",
                   choices=[c.value for c in Component])
    _add_seed_args(p, fan_out=True)
    p.set_defaults(func=cmd_magfreq)

    p = sub.add_parser("sweep", help="Fig. 9 voltage sweep for one method")
    _add_model_arg(p)
    p.add_argument("--task", default="perplexity")
    p.add_argument("--budget", type=float, default=0.3)
    p.add_argument("--method", default="statistical-abft", choices=method_names())
    _add_seed_args(p, fan_out=False)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("sweetspots", help="Tab. II per-component sweet spots")
    _add_model_arg(p)
    p.add_argument("--task", default="perplexity")
    p.add_argument("--budget", type=float, default=0.3)
    _add_seed_args(p, fan_out=False)
    p.set_defaults(func=cmd_sweetspots)

    p = sub.add_parser("overhead", help="Fig. 8 circuit overhead report")
    p.add_argument("--size", type=int, default=256)
    p.set_defaults(func=cmd_overhead)

    p = sub.add_parser("campaign", help="fault-injection campaign engine")
    csub = p.add_subparsers(dest="campaign_command", required=True)

    c = csub.add_parser("run", help="run (or resume) a campaign spec")
    c.add_argument("--spec", required=True, help="path to a campaign spec JSON")
    c.add_argument("--workers", type=int, default=0,
                   help="worker processes (0 = serial in-process)")
    c.add_argument("--lanes", type=int, default=None,
                   help="max trials packed into one batched forward "
                        "(default: the library's lane width; 1 = per-trial "
                        "execution; results are bit-identical)")
    c.add_argument("--store", default=None,
                   help="result-store directory (default: cache dir by name)")
    c.add_argument("--backend", default=None,
                   help="GEMM backend for every trial (see `repro backend list`)")
    c.add_argument("--trace", default=None, metavar="PATH",
                   help="enable span telemetry and write a Chrome-trace JSON "
                        "of the whole run here (results stay bit-identical)")
    c.add_argument("--trial-timeout", type=float, default=None, metavar="S",
                   help="per-trial lease budget in seconds; a pack's lease "
                        "deadline is this times its lane count (default: "
                        "spec's supervise config, else 300)")
    c.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="trial-level retries before a failing trial is "
                        "quarantined (default: spec's supervise config, "
                        "else 2)")
    c.add_argument("--chaos", default=None, metavar="SPEC",
                   help='deterministic fault injection, e.g. '
                        '"seed=1,kill=0.5,exc=0.25,hang=0.1,shm=0.5,'
                        'torn=0.5,poison=0.1" (or a JSON object; '
                        '$REPRO_CHAOS is honored when absent)')
    c.set_defaults(func=cmd_campaign_run)

    c = csub.add_parser("status", help="completion status of a campaign")
    c.add_argument("--spec", required=True)
    c.add_argument("--store", default=None)
    c.add_argument("--metrics", action="store_true",
                   help="also show the merged telemetry metrics from the "
                        "latest progress snapshot")
    c.add_argument("--history", default=None, metavar="PATH",
                   help="also dump the store's progress-snapshot history "
                        "as JSON here (CI artifact)")
    c.set_defaults(func=cmd_campaign_status)

    c = csub.add_parser("watch", help="live progress of a running campaign")
    c.add_argument("--spec", required=True)
    c.add_argument("--store", default=None)
    c.add_argument("--interval", type=float, default=1.0,
                   help="seconds between refreshes")
    c.add_argument("--refreshes", type=int, default=None,
                   help="stop after N refreshes (default: until finished)")
    c.set_defaults(func=cmd_campaign_watch)

    c = csub.add_parser("report", help="aggregate a campaign's results")
    c.add_argument("--spec", required=True)
    c.add_argument("--store", default=None)
    c.add_argument("--csv", default=None, help="also export raw trials as CSV")
    c.add_argument("--costs", action="store_true",
                   help="show the measured hardware-cost columns "
                        "(cycles / recovered MACs / energy) per cell")
    c.set_defaults(func=cmd_campaign_report)

    c = csub.add_parser("example", help="print a ready-to-run example spec")
    c.set_defaults(func=cmd_campaign_example)

    c = csub.add_parser("serve", help="fabric broker: lease packs to a "
                                      "worker fleet over HTTP/JSON")
    c.add_argument("--spec", default=None,
                   help="campaign spec to run (omit to idle until specs "
                        "arrive via POST /api/v1/campaigns)")
    c.add_argument("--store", default=None,
                   help="result-store directory (default: cache dir by "
                        "spec name; required without --spec)")
    c.add_argument("--host", default="127.0.0.1")
    c.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = pick a free one, printed "
                        "at startup)")
    c.add_argument("--heartbeat", type=float, default=2.0, metavar="S",
                   help="worker heartbeat cadence; leases with no "
                        "heartbeat for 3.5x this are stolen and requeued")
    c.add_argument("--grace", type=float, default=15.0, metavar="S",
                   help="degrade-to-local window: with no live workers "
                        "for this long, packs run on an in-process "
                        "supervised pool")
    c.add_argument("--local-workers", type=int, default=2,
                   help="pool size of the degrade-to-local fallback "
                        "(0 disables it)")
    c.add_argument("--serve-forever", action="store_true",
                   help="keep serving after --spec finishes")
    c.add_argument("--lanes", type=int, default=None,
                   help="max trials packed into one batched forward")
    c.add_argument("--trial-timeout", type=float, default=None, metavar="S")
    c.add_argument("--max-retries", type=int, default=None, metavar="N")
    c.add_argument("--chaos", default=None, metavar="SPEC",
                   help="deterministic fault injection (see `campaign run "
                        "--chaos`; includes net faults drop/dup/delay/"
                        "disconnect applied in the workers)")
    c.set_defaults(func=cmd_campaign_serve)

    c = csub.add_parser("worker", help="fleet worker: pull leases from a "
                                       "fabric broker and execute them")
    c.add_argument("--connect", required=True, metavar="URL",
                   help="broker URL printed by `campaign serve`")
    c.add_argument("--id", default=None,
                   help="worker id (default: w-<host>-<pid>)")
    c.add_argument("--max-idle", type=float, default=None, metavar="S",
                   help="exit after this long without work (default: "
                        "serve until SIGTERM)")
    c.set_defaults(func=cmd_campaign_worker)

    c = csub.add_parser("quarantine",
                        help="inspect/clear the poison-trial quarantine")
    qsub = c.add_subparsers(dest="quarantine_command", required=True)
    q = qsub.add_parser("list", help="show quarantined trials and why")
    q.add_argument("--spec", required=True)
    q.add_argument("--store", default=None)
    q.set_defaults(func=cmd_campaign_quarantine)
    q = qsub.add_parser("clear", help="remove trials from the quarantine "
                                      "so the next run retries them")
    q.add_argument("--spec", required=True)
    q.add_argument("--store", default=None)
    q.add_argument("keys", nargs="*",
                   help="trial keys to clear (default: all)")
    q.set_defaults(func=cmd_campaign_quarantine)

    p = sub.add_parser("backend", help="GEMM backend registry tooling")
    bsub = p.add_subparsers(dest="backend_command", required=True)

    b = bsub.add_parser("list", help="registered backends + availability")
    b.add_argument("--no-timing", action="store_true",
                   help="skip the per-backend micro-timings")
    b.add_argument("--tune", action="store_true",
                   help="pre-tune the 'auto' backend on the harvested "
                        "campaign GEMM mix and print its winner table")
    b.set_defaults(func=cmd_backend_list)

    p = sub.add_parser("trace", help="span telemetry / Chrome-trace tooling")
    tsub = p.add_subparsers(dest="trace_command", required=True)

    t = tsub.add_parser("export", help="trace one injected trial to JSON")
    t.add_argument("--out", required=True, help="Chrome-trace JSON output path")
    _add_model_arg(t)
    t.add_argument("--task", default="perplexity")
    t.add_argument("--component", default="O",
                   choices=[c.value for c in Component])
    t.add_argument("--ber", type=float, default=1e-3)
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--top", type=int, default=10,
                   help="GEMM-site rows to print (the JSON has all of them)")
    t.set_defaults(func=cmd_trace_export)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    print(args.func(args))
    return getattr(args, "exit_code", 0)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
