"""Energy accounting and voltage sweet-spot search (paper Sec. VI-C/D/E)."""

from repro.energy.model import EnergyParams, EnergyModel, EnergyBreakdown
from repro.energy.sweetspot import VoltagePoint, sweep_voltages, find_sweet_spot

__all__ = [
    "EnergyParams",
    "EnergyModel",
    "EnergyBreakdown",
    "VoltagePoint",
    "sweep_voltages",
    "find_sweet_spot",
]
