"""Workload energy model.

Total energy of running a workload at operating voltage ``V`` (paper
Sec. VI-A): compute energy scales as ``(V / V_nom)^2``; error recovery is
re-computation at *nominal* voltage, charged for every recovered MAC;
detection hardware adds its power-overhead fraction on top of compute; DMR
doubles compute outright.

All energies are in joules, derived from a per-MAC energy at nominal
voltage (``e_mac_pj``, a representative INT8-MAC figure for 14nm including
local data movement).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParams:
    """Knobs of the energy model."""

    e_mac_pj: float = 0.30          # pJ per INT8 MAC at nominal voltage
    v_nominal: float = 0.9
    detection_overhead: float = 0.0  # fractional power overhead of detection
    compute_factor: float = 1.0      # 2.0 for DMR


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy components of one run (joules)."""

    compute_j: float
    detection_j: float
    recovery_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.detection_j + self.recovery_j


class EnergyModel:
    """Computes :class:`EnergyBreakdown` for (macs, recovered_macs, V)."""

    def __init__(self, params: EnergyParams) -> None:
        self.params = params

    def mac_energy_j(self, voltage: float) -> float:
        """Energy of one MAC at the given voltage (CV^2 scaling)."""
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        scale = (voltage / self.params.v_nominal) ** 2
        return self.params.e_mac_pj * 1e-12 * scale

    def breakdown(
        self, macs: int, recovered_macs: int, voltage: float
    ) -> EnergyBreakdown:
        """Energy of a workload with ``macs`` total MACs, of which
        ``recovered_macs`` were re-executed at nominal voltage."""
        if macs < 0 or recovered_macs < 0:
            raise ValueError("MAC counts must be non-negative")
        compute = macs * self.mac_energy_j(voltage) * self.params.compute_factor
        detection = compute * self.params.detection_overhead
        recovery = recovered_macs * self.mac_energy_j(self.params.v_nominal)
        return EnergyBreakdown(
            compute_j=compute, detection_j=detection, recovery_j=recovery
        )

    def total_j(self, macs: int, recovered_macs: int, voltage: float) -> float:
        return self.breakdown(macs, recovered_macs, voltage).total_j
