"""Voltage sweeps and sweet-spot search (paper Fig. 9, Tab. II).

The caller supplies an evaluation callable mapping an operating voltage to
the observed model-quality degradation and the recovery statistics; this
module handles the energy accounting and the constrained minimization
("sweet spot" = minimum-energy voltage whose degradation stays within the
acceptable budget).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.energy.model import EnergyModel


@dataclass(frozen=True)
class RunOutcome:
    """What one evaluation at a fixed voltage produced."""

    degradation: float
    macs: int
    recovered_macs: int
    metric: float = float("nan")
    recovery_rate: float = 0.0


@dataclass(frozen=True)
class VoltagePoint:
    """One voltage of a sweep, with quality and energy attached."""

    voltage: float
    ber: float
    metric: float
    degradation: float
    recovery_rate: float
    energy_j: float
    feasible: bool


EvaluateFn = Callable[[float], RunOutcome]


def sweep_voltages(
    evaluate: EvaluateFn,
    voltages: Sequence[float],
    energy_model: EnergyModel,
    budget: float,
    ber_of: Callable[[float], float],
) -> list[VoltagePoint]:
    """Evaluate every voltage and attach energy + feasibility."""
    points: list[VoltagePoint] = []
    for v in voltages:
        outcome = evaluate(v)
        energy = energy_model.total_j(outcome.macs, outcome.recovered_macs, v)
        points.append(
            VoltagePoint(
                voltage=v,
                ber=ber_of(v),
                metric=outcome.metric,
                degradation=outcome.degradation,
                recovery_rate=outcome.recovery_rate,
                energy_j=energy,
                feasible=outcome.degradation <= budget,
            )
        )
    return points


def find_sweet_spot(points: Sequence[VoltagePoint]) -> VoltagePoint:
    """Minimum-energy feasible point (paper's per-component sweet spot).

    Raises ``ValueError`` when no voltage satisfies the budget — the caller
    should widen the sweep toward nominal, where degradation vanishes.
    """
    feasible = [p for p in points if p.feasible]
    if not feasible:
        raise ValueError("no feasible operating point in the sweep")
    return min(feasible, key=lambda p: p.energy_j)
