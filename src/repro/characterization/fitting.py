"""Turning characterization grids into detector parameters.

``characterization -> (a, b, theta_freq)`` for statistical ABFT, and
``characterization -> MSD threshold`` for the ApproxABFT baseline, both
under the same acceptable-degradation budget — the paper's calibration step
(Sec. VI-A: "to determine the parameters ... we inject errors into LLMs for
performance evaluation").
"""

from __future__ import annotations

from typing import Sequence

from repro.abft.region import CriticalRegion, GridPoint, fit_critical_region
from repro.characterization.evaluator import ModelEvaluator
from repro.characterization.questions import q14_magfreq
from repro.characterization.sweeps import SweepRecord
from repro.errors.sites import Component, component_kind


def characterization_grid_points(records: Sequence[SweepRecord]) -> list[GridPoint]:
    """Convert Q1.4 sweep records into region-fitting grid points."""
    points = []
    for record in records:
        if "mag" not in record.extra or "freq" not in record.extra:
            raise ValueError("record lacks mag/freq extras; not a Q1.4 grid")
        points.append(
            GridPoint(
                mag=float(record.extra["mag"]),
                freq=float(record.extra["freq"]),
                degradation=float(record.degradation),
            )
        )
    return points


def fit_component_region(
    evaluator: ModelEvaluator,
    component: Component,
    budget: float,
    mags: Sequence[int] | None = None,
    freqs: Sequence[int] | None = None,
    seed: int = 0,
) -> tuple[CriticalRegion, list[GridPoint]]:
    """Characterize one component and fit its critical region."""
    kwargs = {}
    if mags is not None:
        kwargs["mags"] = tuple(mags)
    if freqs is not None:
        kwargs["freqs"] = tuple(freqs)
    records = q14_magfreq(evaluator, component, seed=seed, **kwargs)
    points = characterization_grid_points(records)
    region = fit_critical_region(points, budget, kind=component_kind(component))
    return region, points


def fit_msd_threshold(points: Sequence[GridPoint], budget: float) -> float:
    """Largest MSD threshold that never misses a critical grid point.

    ApproxABFT recovers when ``MSD > threshold``; reliability requires every
    critical point to satisfy ``msd > threshold``, so the threshold is just
    below the smallest critical MSD. When nothing is critical, the largest
    observed MSD is returned (never recover within the observed range).
    """
    critical = [p.mag * p.freq for p in points if p.degradation > budget]
    if not critical:
        return max((p.mag * p.freq for p in points), default=0.0)
    return float(min(critical)) - 1.0
