"""The paper's six research questions as runnable experiments (Sec. IV).

Protocols follow the paper exactly (its "control for irrelevant variables"
list): Q1.1, Q1.3, Q2.1 and Q2.2 flip the 30th accumulator bit; Q1.1 and
Q2.1 inject into every component of a *single* block at a time; all other
questions inject across all layers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.campaigns.spec import CampaignSpec, ErrorSpec, SiteSpec
from repro.characterization.evaluator import ModelEvaluator
from repro.characterization.sweeps import SweepRecord, ber_sweep, magfreq_grid
from repro.errors.sites import Component, SiteFilter, Stage

#: The paper's targeted bit for the single-bit protocols.
PROTOCOL_BIT = 30

DEFAULT_BERS: tuple[float, ...] = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2)

#: The Q1.4 magnitude/frequency protocol grid (shared by the in-process
#: sweep defaults and the campaign fan-out so both measure the same cells).
Q14_MAGS: tuple[int, ...] = tuple(2**p for p in (4, 8, 12, 16, 20, 24))
Q14_FREQS: tuple[int, ...] = (1, 4, 16, 64, 256)


def q11_layerwise(
    evaluator: ModelEvaluator,
    layers: Sequence[int],
    bers: Sequence[float] = DEFAULT_BERS,
    seed: int = 0,
) -> list[SweepRecord]:
    """Q1.1: resilience per layer — 30th bit, all components of one block."""
    records: list[SweepRecord] = []
    for layer in layers:
        records.extend(
            ber_sweep(
                evaluator,
                bers,
                site_filter=SiteFilter.only(layers=[layer]),
                bits=[PROTOCOL_BIT],
                label=f"layer{layer}",
                seed=seed,
            )
        )
    return records


def q12_bitwise(
    evaluator: ModelEvaluator,
    bits: Sequence[int] = (10, 14, 22, 30),
    components: Sequence[Component] = (Component.K, Component.O),
    bers: Sequence[float] = DEFAULT_BERS,
    seed: int = 0,
) -> list[SweepRecord]:
    """Q1.2: bit-wise resilience.

    The paper contrasts K (whose output is re-quantized to INT8 before the
    QK^T matmul, saturating large errors) with O (whose output flows into
    the FP residual stream unbounded) — reproduced here by injecting at
    several bit positions into each component.
    """
    records: list[SweepRecord] = []
    for component in components:
        for bit in bits:
            records.extend(
                ber_sweep(
                    evaluator,
                    bers,
                    site_filter=SiteFilter.only(components=[component]),
                    bits=[bit],
                    label=f"{component.value}/bit{bit}",
                    seed=seed,
                )
            )
    return records


def q13_components(
    evaluator: ModelEvaluator,
    components: Optional[Sequence[Component]] = None,
    bers: Sequence[float] = DEFAULT_BERS,
    seed: int = 0,
) -> list[SweepRecord]:
    """Q1.3: per-component resilience in the prefill stage (30th bit)."""
    if components is None:
        components = evaluator.bundle.config.components
    records: list[SweepRecord] = []
    for component in components:
        records.extend(
            ber_sweep(
                evaluator,
                bers,
                site_filter=SiteFilter.only(
                    components=[component], stages=[Stage.PREFILL]
                ),
                bits=[PROTOCOL_BIT],
                label=component.value,
                seed=seed,
            )
        )
    return records


def q14_magfreq(
    evaluator: ModelEvaluator,
    component: Component,
    mags: Sequence[int] = Q14_MAGS,
    freqs: Sequence[int] = Q14_FREQS,
    seed: int = 0,
) -> list[SweepRecord]:
    """Q1.4: error magnitude vs. frequency trade-off at fixed MSD."""
    return magfreq_grid(
        evaluator,
        mags,
        freqs,
        site_filter=SiteFilter.only(components=[component]),
        label=component.value,
        seed=seed,
    )


def q13_campaign_spec(
    model: str,
    task: str,
    bers: Sequence[float],
    seeds: Sequence[int],
    components: Optional[Sequence[Component]] = None,
) -> CampaignSpec:
    """The Q1.3 protocol as a campaign grid (multi-seed fan-out)."""
    if components is None:
        from repro.training.zoo import get_pretrained

        components = get_pretrained(model).config.components
    return CampaignSpec(
        name=f"q13-{model}-{task}",
        models=(model,),
        tasks=(task,),
        sites=tuple(
            SiteSpec.only(components=[c], stages=[Stage.PREFILL]) for c in components
        ),
        errors=tuple(ErrorSpec.bitflip(float(b), bits=(PROTOCOL_BIT,)) for b in bers),
        seeds=tuple(seeds),
    )


def q14_campaign_spec(
    model: str,
    task: str,
    component: Component,
    seeds: Sequence[int],
    mags: Sequence[int] = Q14_MAGS,
    freqs: Sequence[int] = Q14_FREQS,
) -> CampaignSpec:
    """The Q1.4 protocol as a campaign grid (multi-seed fan-out)."""
    return CampaignSpec(
        name=f"q14-{model}-{task}-{component.value}",
        models=(model,),
        tasks=(task,),
        sites=(SiteSpec.only(components=[component]),),
        errors=tuple(ErrorSpec.magfreq(int(m), int(f)) for m in mags for f in freqs),
        seeds=tuple(seeds),
    )


def q21_stages(
    evaluator: ModelEvaluator,
    bers: Sequence[float] = DEFAULT_BERS,
    seed: int = 0,
) -> list[SweepRecord]:
    """Q2.1: prefill vs. decode vs. both (generation tasks only).

    Requires a generation-task evaluator (xsum / gsm8k), since perplexity
    scoring never exercises the decode stage.
    """
    if evaluator.task not in ("xsum", "gsm8k"):
        raise ValueError("q21_stages needs a generation task (xsum or gsm8k)")
    records: list[SweepRecord] = []
    for label, stages in (
        ("prefill_stage", [Stage.PREFILL]),
        ("decode_stage", [Stage.DECODE]),
        ("two_stage", [Stage.PREFILL, Stage.DECODE]),
    ):
        records.extend(
            ber_sweep(
                evaluator,
                bers,
                site_filter=SiteFilter.only(stages=stages),
                bits=[PROTOCOL_BIT],
                label=label,
                seed=seed,
            )
        )
    return records


def q22_decode_components(
    evaluator: ModelEvaluator,
    components: Optional[Sequence[Component]] = None,
    bers: Sequence[float] = DEFAULT_BERS,
    seed: int = 0,
) -> list[SweepRecord]:
    """Q2.2: per-component resilience during the decode stage (30th bit)."""
    if evaluator.task not in ("xsum", "gsm8k"):
        raise ValueError("q22 needs a generation task (xsum or gsm8k)")
    if components is None:
        components = evaluator.bundle.config.components
    records: list[SweepRecord] = []
    for component in components:
        records.extend(
            ber_sweep(
                evaluator,
                bers,
                site_filter=SiteFilter.only(
                    components=[component], stages=[Stage.DECODE]
                ),
                bits=[PROTOCOL_BIT],
                label=component.value,
                seed=seed,
            )
        )
    return records
