"""Resilience-characterization harness (paper Sec. IV).

Reproduces the paper's six research questions (Q1.1-Q2.2) as runnable
sweeps, and fits the critical-region / threshold parameters that configure
statistical ABFT and the ApproxABFT baseline.
"""

from repro.characterization.evaluator import ModelEvaluator, TASKS, quantized_model_for
from repro.characterization.sweeps import SweepRecord, ber_sweep, magfreq_grid
from repro.characterization.questions import (
    q11_layerwise,
    q12_bitwise,
    q13_components,
    q14_magfreq,
    q21_stages,
    q22_decode_components,
)
from repro.characterization.fitting import (
    characterization_grid_points,
    fit_component_region,
    fit_msd_threshold,
)

__all__ = [
    "ModelEvaluator",
    "TASKS",
    "quantized_model_for",
    "SweepRecord",
    "ber_sweep",
    "magfreq_grid",
    "q11_layerwise",
    "q12_bitwise",
    "q13_components",
    "q14_magfreq",
    "q21_stages",
    "q22_decode_components",
    "characterization_grid_points",
    "fit_component_region",
    "fit_msd_threshold",
]
