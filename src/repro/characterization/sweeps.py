"""Generic sweep runners shared by the Q1.x / Q2.x questions.

Both sweeps are thin wrappers over the campaign engine's single-trial
primitive (:func:`repro.campaigns.executor.evaluate_trial`): each swept
configuration is expressed as a :class:`~repro.campaigns.spec.Trial` and
scored exactly the way a campaign worker would score it, so in-process
sweeps and distributed campaigns measure the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.campaigns.spec import ErrorSpec, SiteSpec, Trial
from repro.characterization.evaluator import ModelEvaluator
from repro.errors.sites import SiteFilter


@dataclass
class SweepRecord:
    """One measured configuration of a sweep."""

    label: str
    ber: float
    score: float
    degradation: float
    extra: dict = field(default_factory=dict)


def _run_trial(evaluator: ModelEvaluator, trial: Trial) -> "SweepRecord":
    # Deferred: the executor pulls in the ReaLM pipeline, whose calibration
    # path imports this module (executor -> realm -> fitting -> sweeps).
    from repro.campaigns.executor import evaluate_trial

    result = evaluate_trial(trial, evaluator)
    return SweepRecord(
        label="",
        ber=trial.error.ber or 0.0,
        score=result.score,
        degradation=result.degradation,
        extra={"injected_errors": result.injected_errors},
    )


def ber_sweep(
    evaluator: ModelEvaluator,
    bers: Sequence[float],
    site_filter: Optional[SiteFilter] = None,
    bits: Optional[Sequence[int]] = None,
    label: str = "",
    seed: int = 0,
) -> list[SweepRecord]:
    """Score the evaluator's task across a BER sweep under one site filter."""
    site = SiteSpec.from_filter(site_filter)
    records: list[SweepRecord] = []
    for ber in bers:
        trial = Trial(
            model=evaluator.bundle.name,
            task=evaluator.task,
            site=site,
            error=ErrorSpec.bitflip(ber, bits=bits),
            seed=seed,
        )
        record = _run_trial(evaluator, trial)
        record.label = label
        records.append(record)
    return records


def magfreq_grid(
    evaluator: ModelEvaluator,
    mags: Sequence[int],
    freqs: Sequence[int],
    site_filter: Optional[SiteFilter] = None,
    label: str = "",
    seed: int = 0,
) -> list[SweepRecord]:
    """Score every (mag, freq) cell with identical-error injection (Q1.4)."""
    site = SiteSpec.from_filter(site_filter)
    records: list[SweepRecord] = []
    for mag in mags:
        for freq in freqs:
            trial = Trial(
                model=evaluator.bundle.name,
                task=evaluator.task,
                site=site,
                error=ErrorSpec.magfreq(int(mag), int(freq)),
                seed=seed,
            )
            record = _run_trial(evaluator, trial)
            record.label = label
            record.extra.update({"mag": mag, "freq": freq, "msd": mag * freq})
            records.append(record)
    return records
