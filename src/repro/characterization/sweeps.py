"""Generic sweep runners shared by the Q1.x / Q2.x questions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.characterization.evaluator import ModelEvaluator
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel, MagFreqModel
from repro.errors.sites import SiteFilter


@dataclass
class SweepRecord:
    """One measured configuration of a sweep."""

    label: str
    ber: float
    score: float
    degradation: float
    extra: dict = field(default_factory=dict)


def ber_sweep(
    evaluator: ModelEvaluator,
    bers: Sequence[float],
    site_filter: Optional[SiteFilter] = None,
    bits: Optional[Sequence[int]] = None,
    label: str = "",
    seed: int = 0,
) -> list[SweepRecord]:
    """Score the evaluator's task across a BER sweep under one site filter."""
    records: list[SweepRecord] = []
    for ber in bers:
        model = BitFlipModel(ber, bits=tuple(bits)) if bits else BitFlipModel(ber)
        injector = ErrorInjector(model, site_filter, seed=seed)
        score = evaluator.run(injector)
        records.append(
            SweepRecord(
                label=label,
                ber=ber,
                score=score,
                degradation=evaluator.degradation(score),
                extra={"injected_errors": injector.stats.injected_errors},
            )
        )
    return records


def magfreq_grid(
    evaluator: ModelEvaluator,
    mags: Sequence[int],
    freqs: Sequence[int],
    site_filter: Optional[SiteFilter] = None,
    label: str = "",
    seed: int = 0,
) -> list[SweepRecord]:
    """Score every (mag, freq) cell with identical-error injection (Q1.4)."""
    records: list[SweepRecord] = []
    for mag in mags:
        for freq in freqs:
            injector = ErrorInjector(MagFreqModel(mag=mag, freq=freq), site_filter, seed=seed)
            score = evaluator.run(injector)
            records.append(
                SweepRecord(
                    label=label,
                    ber=0.0,
                    score=score,
                    degradation=evaluator.degradation(score),
                    extra={"mag": mag, "freq": freq, "msd": mag * freq},
                )
            )
    return records
