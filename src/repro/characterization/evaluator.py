"""Uniform evaluation front-end over the benchmark tasks.

A :class:`ModelEvaluator` owns one quantized model plus one task's data and
exposes ``score()`` (run the task under whatever injector/protector is
attached) and ``degradation(score)`` (signed degradation vs. the fault-free
baseline, oriented so that *larger is worse* for every task: perplexity
increase, or accuracy/ROUGE drop).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.abft.protectors import Protector
from repro.dispatch.cost import CostInstrument
from repro.data import (
    build_gsm8k_like,
    build_hellaswag_like,
    build_lambada_like,
    build_lm_data,
    build_xsum_like,
)
from repro.errors.injector import ErrorInjector
from repro.evalsuite.harness import (
    EvalHarness,
    evaluate_last_token_accuracy,
    evaluate_multiple_choice,
    evaluate_perplexity,
)
from repro.models.export import quantize_model
from repro.models.quantized import QuantizedTransformerLM
from repro.models.replay import ReplaySession
from repro.training.zoo import PretrainedBundle
import repro.telemetry as telemetry

#: Task registry: name -> (higher_is_better, default sizing kwargs).
TASKS: dict[str, bool] = {
    "perplexity": False,
    "lambada": True,
    "xsum": True,
    "gsm8k": True,
    "hellaswag": True,
}


@dataclass
class TaskSizing:
    """How much evaluation data each task uses (kept small for speed).

    Generation tasks mirror the paper's workload shape: prompts much longer
    than the generated continuation (X-Sum documents vs ~30-token
    summaries), which is what makes the prefill stage dominate both compute
    and error exposure (paper Insight 3).
    """

    lm_sequences: int = 4
    lm_seq_len: int = 32
    lambada_examples: int = 16
    lambada_context: int = 16
    xsum_prompts: int = 6
    xsum_prompt_len: int = 24
    xsum_gen_len: int = 8
    gsm8k_prompts: int = 8
    gsm8k_prompt_len: int = 20
    gsm8k_gen_len: int = 4
    hellaswag_examples: int = 10
    hellaswag_context: int = 12
    hellaswag_cont: int = 6


#: Process-wide cache of calibrated quantized models, keyed by the bundle's
#: weight fingerprint + calibration recipe. Quantizing + calibrating is the
#: expensive part of evaluator construction; a campaign worker scoring
#: several tasks of one model (or several evaluators in one process) reuses
#: the same engine instead of redoing calibration per task.
_QUANT_MODEL_CACHE: dict[str, QuantizedTransformerLM] = {}

#: Calibration recipe shared by every evaluator: (n_sequences, seq_len cap).
_CALIBRATION_RECIPE = (2, 32)


def _calibration_sequences(bundle: PretrainedBundle) -> list[np.ndarray]:
    n_seqs, len_cap = _CALIBRATION_RECIPE
    return [
        row
        for row in bundle.source.sample_batch(
            n_seqs, min(len_cap, bundle.config.max_seq_len), key="calibration"
        )
    ]


def _bundle_fingerprint(bundle: PretrainedBundle) -> str:
    """Content key over the weights + calibration recipe (names can collide
    across zoo revisions; weight bytes cannot). Memoized on the bundle —
    zoo weights are immutable once loaded."""
    cached = getattr(bundle, "_quant_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(repr((bundle.name, _CALIBRATION_RECIPE)).encode())
    for key in sorted(bundle.state):
        digest.update(key.encode())
        digest.update(np.ascontiguousarray(bundle.state[key]).tobytes())
    fingerprint = digest.hexdigest()
    bundle._quant_fingerprint = fingerprint
    return fingerprint


def quantized_model_for(
    bundle: PretrainedBundle, reuse: bool = True
) -> QuantizedTransformerLM:
    """Calibrated quantized engine for ``bundle``, cached per process.

    The shared engine is *mutable*: executor-level knobs (``wraparound``,
    ``backend``, ``mode``, ``scale_store``) set through one evaluator are
    seen by every other sharer. Pass ``reuse=False`` for a private engine
    whenever you mutate executor state (ablations, benchmarks, tests)."""
    key = _bundle_fingerprint(bundle) if reuse else ""
    if reuse and key in _QUANT_MODEL_CACHE:
        return _QUANT_MODEL_CACHE[key]
    model = quantize_model(
        bundle.state, bundle.config, calibration=_calibration_sequences(bundle)
    )
    if reuse:
        _QUANT_MODEL_CACHE[key] = model
    return model


def register_quantized_model(fingerprint: str, model: QuantizedTransformerLM) -> None:
    """Pre-seed the process-wide engine cache (shared-memory attach path):
    a campaign worker that attaches a parent-published engine skips
    quantization and calibration entirely."""
    _QUANT_MODEL_CACHE[fingerprint] = model


def _replay_default() -> bool:
    """Replay defaults on; ``REPRO_NO_REPLAY=1`` restores the seed route
    (``0``/``false``/empty count as unset, not as "disable replay")."""
    return os.environ.get("REPRO_NO_REPLAY", "").strip().lower() in ("", "0", "false")


class ModelEvaluator:
    """One (model, task) pair with attach-and-score plumbing.

    ``batched=True`` (default) scores the task through the engine's batched
    path — all sequences/prompts/choices of the task in single forwards and
    lock-step generations. ``batched=False`` keeps the per-sequence loop
    (benchmark baseline); fault-free scores are bit-identical either way.
    ``reuse_model=True`` shares one calibrated engine per bundle across all
    evaluators in the process (see :func:`quantized_model_for`).

    ``replay=True`` (default; ``REPRO_NO_REPLAY=1`` flips the default)
    scores through the clean-trace replay engine: the fault-free forward
    per (task, length-group) is recorded once and every injected trial
    resumes from the earliest layer its filter can touch — bit-identical
    scores and statistics, a fraction of the work (DESIGN.md section 7).
    ``replay=False`` preserves the seed-equivalent full-forward route.
    """

    def __init__(
        self,
        bundle: PretrainedBundle,
        task: str = "perplexity",
        sizing: Optional[TaskSizing] = None,
        batched: bool = True,
        reuse_model: bool = True,
        replay: Optional[bool] = None,
    ) -> None:
        if task not in TASKS:
            raise KeyError(f"unknown task {task!r}; available: {sorted(TASKS)}")
        self.bundle = bundle
        self.task = task
        self.sizing = sizing or TaskSizing()
        self.batched = batched
        self.replay = _replay_default() if replay is None else replay
        self._replay_session = (
            ReplaySession(_bundle_fingerprint(bundle)) if self.replay else None
        )
        self.model = quantized_model_for(bundle, reuse=reuse_model)
        self.higher_is_better = TASKS[task]
        s = self.sizing
        source = bundle.source
        if task == "perplexity":
            self._data = build_lm_data(source, s.lm_sequences, s.lm_seq_len)
        elif task == "lambada":
            self._data = build_lambada_like(source, s.lambada_examples, s.lambada_context)
        elif task == "xsum":
            self._data = build_xsum_like(
                source, s.xsum_prompts, s.xsum_prompt_len, s.xsum_gen_len
            )
        elif task == "gsm8k":
            self._data = build_gsm8k_like(
                source, s.gsm8k_prompts, s.gsm8k_prompt_len, s.gsm8k_gen_len
            )
        else:
            self._data = build_hellaswag_like(
                source, s.hellaswag_examples, s.hellaswag_context, s.hellaswag_cont
            )
        self._harness = (
            EvalHarness(self.model, batched=batched)
            if task in ("xsum", "gsm8k")
            else None
        )
        self._clean_score: Optional[float] = None

    # ------------------------------------------------------------- scoring
    def score(self, lanes: int = 1):
        """Run the task with whatever injector/protector is attached.

        Scoring is scoped inside this evaluator's replay session (if any):
        the clean pass records traces, injected passes resume from them.
        ``lanes > 1`` scores a lane-packed batch of K trials in one pass
        (DESIGN.md section 9) and returns one score per lane; the attached
        instruments must then be the lane-aware wrappers.
        """
        with self.model.replay_into(self._replay_session):
            if lanes == 1:
                return self._score_task()
            with self.model.lanes(lanes):
                return self._score_task(lanes=lanes)

    def _score_task(self, lanes: int = 1):
        if self.task == "perplexity":
            return evaluate_perplexity(
                self.model, self._data, batched=self.batched, lanes=lanes
            )
        if self.task == "lambada":
            return evaluate_last_token_accuracy(
                self.model, self._data, batched=self.batched, lanes=lanes
            )
        if self.task == "xsum":
            return self._harness.summarization_score(self.model, self._data, lanes=lanes)
        if self.task == "gsm8k":
            return self._harness.arithmetic_score(self.model, self._data, lanes=lanes)
        return evaluate_multiple_choice(
            self.model, self._data, batched=self.batched, lanes=lanes
        )

    @property
    def clean_score(self) -> float:
        """Fault-free baseline (computed once, with nothing attached)."""
        if self._clean_score is None:
            saved = (self.model.injector, self.model.protector)
            self.model.attach(None, None)
            try:
                with telemetry.span("eval.clean", task=self.task):
                    self._clean_score = self.score()
            finally:
                self.model.attach(*saved)
        return self._clean_score

    def degradation(self, score: float) -> float:
        """Signed degradation vs. clean baseline; larger = worse."""
        if self.higher_is_better:
            return self.clean_score - score
        return score - self.clean_score

    def run(
        self,
        injector: Optional[ErrorInjector] = None,
        protector: Optional[Protector] = None,
        cost: Optional[CostInstrument] = None,
        lanes: Optional[int] = None,
    ) -> float:
        """Attach, score, detach; returns the raw score.

        ``cost`` (a :class:`~repro.dispatch.cost.CostInstrument`) rides the
        dispatch chain for the duration of the scoring call, measuring
        systolic cycles / recovery work / energy of exactly the GEMMs this
        run executed or replayed (DESIGN.md section 8). The baseline is
        cached before attaching, so clean-score forwards are never charged
        to the trial's cost report.

        ``lanes=K`` runs a lane-packed batch of K trials in one scoring
        pass (DESIGN.md section 9): ``injector``/``protector``/``cost``
        must then be the lane-aware wrappers
        (:class:`~repro.errors.injector.LaneInjector`,
        :class:`~repro.abft.protectors.LaneProtector`,
        :class:`~repro.dispatch.cost.LaneCostInstrument`) and the return
        value is one score per lane, each bit-identical to running that
        lane's trial alone.
        """
        baseline = self.clean_score  # ensure cached before attaching  # noqa: F841
        executor = self.model.executor
        saved_cost = executor.cost
        saved_trace = executor.trace
        self.model.attach(injector, protector)
        executor.cost = cost
        if telemetry.enabled():
            # Correlate modeled cycles with measured wall time per GemmSite;
            # detached in the same finally so a clean run never inherits it.
            executor.trace = telemetry.gemm_trace()
        try:
            with telemetry.span(
                "eval.run", task=self.task, lanes=1 if lanes is None else lanes
            ):
                return self.score(lanes=1 if lanes is None else lanes)
        finally:
            self.model.attach(None, None)
            executor.cost = saved_cost
            executor.trace = saved_trace
