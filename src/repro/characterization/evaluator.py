"""Uniform evaluation front-end over the benchmark tasks.

A :class:`ModelEvaluator` owns one quantized model plus one task's data and
exposes ``score()`` (run the task under whatever injector/protector is
attached) and ``degradation(score)`` (signed degradation vs. the fault-free
baseline, oriented so that *larger is worse* for every task: perplexity
increase, or accuracy/ROUGE drop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.abft.protectors import Protector
from repro.data import (
    build_gsm8k_like,
    build_hellaswag_like,
    build_lambada_like,
    build_lm_data,
    build_xsum_like,
)
from repro.errors.injector import ErrorInjector
from repro.evalsuite.harness import (
    EvalHarness,
    evaluate_last_token_accuracy,
    evaluate_multiple_choice,
    evaluate_perplexity,
)
from repro.models.export import quantize_model
from repro.training.zoo import PretrainedBundle

#: Task registry: name -> (higher_is_better, default sizing kwargs).
TASKS: dict[str, bool] = {
    "perplexity": False,
    "lambada": True,
    "xsum": True,
    "gsm8k": True,
    "hellaswag": True,
}


@dataclass
class TaskSizing:
    """How much evaluation data each task uses (kept small for speed).

    Generation tasks mirror the paper's workload shape: prompts much longer
    than the generated continuation (X-Sum documents vs ~30-token
    summaries), which is what makes the prefill stage dominate both compute
    and error exposure (paper Insight 3).
    """

    lm_sequences: int = 4
    lm_seq_len: int = 32
    lambada_examples: int = 16
    lambada_context: int = 16
    xsum_prompts: int = 6
    xsum_prompt_len: int = 24
    xsum_gen_len: int = 8
    gsm8k_prompts: int = 8
    gsm8k_prompt_len: int = 20
    gsm8k_gen_len: int = 4
    hellaswag_examples: int = 10
    hellaswag_context: int = 12
    hellaswag_cont: int = 6


class ModelEvaluator:
    """One (model, task) pair with attach-and-score plumbing."""

    def __init__(
        self,
        bundle: PretrainedBundle,
        task: str = "perplexity",
        sizing: Optional[TaskSizing] = None,
    ) -> None:
        if task not in TASKS:
            raise KeyError(f"unknown task {task!r}; available: {sorted(TASKS)}")
        self.bundle = bundle
        self.task = task
        self.sizing = sizing or TaskSizing()
        calibration = [
            row
            for row in bundle.source.sample_batch(
                2, min(32, bundle.config.max_seq_len), key="calibration"
            )
        ]
        self.model = quantize_model(bundle.state, bundle.config, calibration=calibration)
        self.higher_is_better = TASKS[task]
        s = self.sizing
        source = bundle.source
        if task == "perplexity":
            self._data = build_lm_data(source, s.lm_sequences, s.lm_seq_len)
        elif task == "lambada":
            self._data = build_lambada_like(source, s.lambada_examples, s.lambada_context)
        elif task == "xsum":
            self._data = build_xsum_like(
                source, s.xsum_prompts, s.xsum_prompt_len, s.xsum_gen_len
            )
        elif task == "gsm8k":
            self._data = build_gsm8k_like(
                source, s.gsm8k_prompts, s.gsm8k_prompt_len, s.gsm8k_gen_len
            )
        else:
            self._data = build_hellaswag_like(
                source, s.hellaswag_examples, s.hellaswag_context, s.hellaswag_cont
            )
        self._harness = EvalHarness(self.model) if task in ("xsum", "gsm8k") else None
        self._clean_score: Optional[float] = None

    # ------------------------------------------------------------- scoring
    def score(self) -> float:
        """Run the task with whatever injector/protector is attached."""
        if self.task == "perplexity":
            return evaluate_perplexity(self.model, self._data)
        if self.task == "lambada":
            return evaluate_last_token_accuracy(self.model, self._data)
        if self.task == "xsum":
            return self._harness.summarization_score(self.model, self._data)
        if self.task == "gsm8k":
            return self._harness.arithmetic_score(self.model, self._data)
        return evaluate_multiple_choice(self.model, self._data)

    @property
    def clean_score(self) -> float:
        """Fault-free baseline (computed once, with nothing attached)."""
        if self._clean_score is None:
            saved = (self.model.injector, self.model.protector)
            self.model.attach(None, None)
            try:
                self._clean_score = self.score()
            finally:
                self.model.attach(*saved)
        return self._clean_score

    def degradation(self, score: float) -> float:
        """Signed degradation vs. clean baseline; larger = worse."""
        if self.higher_is_better:
            return self.clean_score - score
        return score - self.clean_score

    def run(
        self,
        injector: Optional[ErrorInjector] = None,
        protector: Optional[Protector] = None,
    ) -> float:
        """Attach, score, detach; returns the raw score."""
        baseline = self.clean_score  # ensure cached before attaching  # noqa: F841
        self.model.attach(injector, protector)
        try:
            return self.score()
        finally:
            self.model.attach(None, None)
