"""Qualitative and cost profiles of the compared fault-mitigation methods.

Reproduces Table I of the paper (qualitative comparison) and provides the
energy/overhead profiles of the non-ABFT baselines used in Fig. 9:

- **DMR** (double-modular redundancy [9], [10]): every MAC is duplicated, so
  detection is perfect but compute energy doubles; recovery re-executes the
  disagreeing computation.
- **ThunderVolt / Razor-style timing speculation** [11]-[14]: shadow
  flip-flops detect timing violations per pipeline stage; per-PE area/power
  overhead plus a per-detected-error replay penalty. Detection coverage is
  high but the scheme scales poorly to large arrays (every FF is shadowed).
- **Fault-aware fine-tuning** [15]-[17]: no runtime hardware, but requires
  retraining — marked prohibited for LLMs, exactly as the paper's Table I.

These profiles feed :mod:`repro.energy` (energy accounting) and
:mod:`repro.circuits` (area/power overhead), keeping the behavioral
simulation (checksums, recovery decisions) for the ABFT family only, as in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MethodProfile:
    """Cost/capability profile of one fault-mitigation technique.

    Rates are qualitative levels reproduced from paper Table I; the numeric
    fields drive the quantitative energy model:

    - ``compute_energy_factor``: multiplier on MAC energy (DMR = 2.0).
    - ``area_overhead`` / ``power_overhead``: fractional circuit overhead on
      the systolic array (filled in by :mod:`repro.circuits` for the ABFT
      family; fixed representative values for circuit-level methods).
    - ``recovers_per_error``: True if recovery is triggered per detected
      error (no statistical filtering).
    """

    name: str
    level: str
    detection_capability: str
    hardware_efficiency: str
    recovery_efficiency: str
    recovery_capability: str
    scalability: str
    accelerator_compatibility: str
    compute_energy_factor: float = 1.0
    area_overhead: float = 0.0
    power_overhead: float = 0.0
    recovers_per_error: bool = True


METHOD_PROFILES: dict[str, MethodProfile] = {
    "redundancy": MethodProfile(
        name="Redundancy (DMR)",
        level="circuit",
        detection_capability="high",
        hardware_efficiency="low",
        recovery_efficiency="low",
        recovery_capability="high",
        scalability="medium",
        accelerator_compatibility="medium",
        compute_energy_factor=2.0,
        area_overhead=1.0,
        power_overhead=1.0,
    ),
    "razor": MethodProfile(
        name="Razor FFs",
        level="circuit",
        detection_capability="high",
        hardware_efficiency="low",
        recovery_efficiency="medium",
        recovery_capability="low",
        scalability="low",
        accelerator_compatibility="low",
        compute_energy_factor=1.0,
        # Shadow FF on every pipeline register: representative overheads
        # from the ThunderVolt/Razor literature (~5-10% of datapath).
        area_overhead=0.082,
        power_overhead=0.094,
    ),
    "thundervolt": MethodProfile(
        name="ThunderVolt",
        level="circuit",
        detection_capability="high",
        hardware_efficiency="medium",
        recovery_efficiency="medium",
        recovery_capability="medium",
        scalability="medium",
        accelerator_compatibility="medium",
        compute_energy_factor=1.0,
        area_overhead=0.049,
        power_overhead=0.057,
    ),
    "fine-tuning": MethodProfile(
        name="Fault-aware Fine-tuning",
        level="algorithm",
        detection_capability="-",
        hardware_efficiency="-",
        recovery_efficiency="prohibited",
        recovery_capability="-",
        scalability="low",
        accelerator_compatibility="-",
    ),
    "classical-abft": MethodProfile(
        name="Classical ABFT",
        level="circuit-algorithm",
        detection_capability="high",
        hardware_efficiency="medium",
        recovery_efficiency="low",
        recovery_capability="high",
        scalability="high",
        accelerator_compatibility="high",
    ),
    "statistical-abft": MethodProfile(
        name="Ours (Statistical ABFT)",
        level="circuit-algorithm",
        detection_capability="high",
        hardware_efficiency="high",
        recovery_efficiency="high",
        recovery_capability="high",
        scalability="high",
        accelerator_compatibility="high",
        recovers_per_error=False,
    ),
}


def table1_rows() -> list[list[str]]:
    """Rows of paper Table I in publication order."""
    order = [
        "redundancy",
        "razor",
        "fine-tuning",
        "classical-abft",
        "statistical-abft",
    ]
    rows = []
    for key in order:
        p = METHOD_PROFILES[key]
        rows.append(
            [
                p.name,
                p.level,
                p.detection_capability,
                p.hardware_efficiency,
                p.recovery_efficiency,
                p.recovery_capability,
                p.scalability,
                p.accelerator_compatibility,
            ]
        )
    return rows
