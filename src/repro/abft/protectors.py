"""GEMM protectors: the recovery-decision policies compared in the paper.

A protector inspects the checksum report of each executed GEMM and decides
whether to trigger error recovery (re-computation at nominal voltage, per
paper Sec. VI-A). The inference engine consults the protector after error
injection; if recovery is requested the clean result is used and the
recovery cost is charged.

Implemented policies:

- :class:`NoProtection` — never recovers (the paper's "no protection" line).
- :class:`ClassicalABFT` — recovers on *any* nonzero checksum discrepancy
  [18], [46].
- :class:`ApproxABFT` — recovers when the total MSD exceeds a threshold
  [45]; magnitude-aware but frequency-blind.
- :class:`StatisticalABFT` — the paper's contribution: per-column
  significance threshold ``theta_mag`` derived from MSD, count-if, and a
  frequency threshold ``theta_freq``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.abft.checksums import ChecksumReport, lane_of_slice
from repro.abft.region import CriticalRegion
from repro.errors.sites import GemmSite


@dataclass
class ProtectionStats:
    """Counters a protector keeps across a run (recovery-cost accounting)."""

    inspected: int = 0
    detected: int = 0
    recovered: int = 0
    recovered_macs: int = 0
    per_site_recoveries: dict[str, int] = field(default_factory=dict)

    def record(self, site: GemmSite, detected: bool, recovered: bool, macs: int) -> None:
        self.inspected += 1
        if detected:
            self.detected += 1
        if recovered:
            self.recovered += 1
            self.recovered_macs += macs
            key = str(site)
            self.per_site_recoveries[key] = self.per_site_recoveries.get(key, 0) + 1

    @property
    def recovery_rate(self) -> float:
        """Fraction of inspected GEMMs that triggered recovery."""
        return self.recovered / self.inspected if self.inspected else 0.0


class Protector:
    """Base class; subclasses implement :meth:`should_recover`."""

    #: Human-readable method name used in reports and benchmarks.
    name = "base"

    def __init__(self) -> None:
        self.stats = ProtectionStats()

    def reset(self) -> None:
        self.stats = ProtectionStats()

    def should_recover(self, report: ChecksumReport, site: GemmSite) -> bool:
        raise NotImplementedError

    def inspect(self, report: ChecksumReport, site: GemmSite, macs: int) -> bool:
        """Record statistics and return the recovery decision."""
        recover = self.should_recover(report, site)
        self.stats.record(site, report.any_error, recover, macs)
        return recover

    def for_slice(self, index: Optional[int], n_slices: int) -> "Protector":
        """Protector owning 2-D slice ``index`` of ``n_slices``.

        Lane-routing hook for the dispatch pipeline's protect instrument: a
        plain protector owns every slice of every call; :class:`LaneProtector`
        overrides this to hand each lane's slices to that lane's protector.
        """
        return self


class LaneProtector(Protector):
    """Routes per-slice inspections to one protector per batch lane.

    A lane-packed dispatch (DESIGN.md section 9) inspects every 2-D slice of
    the packed call exactly as the solo runs would, but each slice's
    decision — and its statistics and charged recovery MACs — must land on
    the protector of the trial that owns the slice. Lanes stack along the
    leading batch axis, so the slice runs resolve through
    :func:`~repro.abft.checksums.lane_of_slice`. Every lane protector sees
    precisely the inspections of its solo run; this wrapper keeps no
    decision logic of its own.
    """

    name = "lanes"

    def __init__(self, lanes: Sequence[Protector]) -> None:
        super().__init__()
        if not lanes or any(lane is None for lane in lanes):
            raise ValueError("a lane protector needs one protector per lane")
        self.lanes: tuple[Protector, ...] = tuple(lanes)

    def reset(self) -> None:
        super().reset()
        for lane in self.lanes:
            lane.reset()

    def lane_of(self, index: int, n_slices: int) -> int:
        return lane_of_slice(index, n_slices, len(self.lanes))

    def for_slice(self, index: Optional[int], n_slices: int) -> Protector:
        if index is None:
            raise ValueError(
                "lane-packed dispatches need a leading batch axis; a plain "
                "2-D GEMM has no lane structure"
            )
        return self.lanes[self.lane_of(index, n_slices)]

    def should_recover(self, report: ChecksumReport, site: GemmSite) -> bool:
        raise NotImplementedError(
            "LaneProtector only routes; decisions belong to its lanes"
        )


class NoProtection(Protector):
    """Never detects, never recovers."""

    name = "no-protection"

    def should_recover(self, report: ChecksumReport, site: GemmSite) -> bool:
        return False


class ClassicalABFT(Protector):
    """Exact checksum comparison: any discrepancy triggers recovery [18]."""

    name = "classical-abft"

    def should_recover(self, report: ChecksumReport, site: GemmSite) -> bool:
        return report.any_error


class ApproxABFT(Protector):
    """MSD-threshold detection (ApproxABFT [45]).

    Tolerates small *total* deviation but cannot distinguish one large error
    from many small ones — the frequency blindness the paper's Q1.4 study
    exposes.
    """

    name = "approx-abft"

    def __init__(self, msd_threshold: float) -> None:
        super().__init__()
        if msd_threshold < 0:
            raise ValueError("msd_threshold must be non-negative")
        self.msd_threshold = msd_threshold

    def should_recover(self, report: ChecksumReport, site: GemmSite) -> bool:
        return report.msd > self.msd_threshold


class StatisticalABFT(Protector):
    """The paper's statistical ABFT decision rule (Sec. V-A).

    Per GEMM: compute ``theta_mag`` from the observed MSD via the fitted
    critical region for the GEMM's component, count per-column
    discrepancies exceeding it (``freq_eff``), and recover iff
    ``freq_eff > theta_freq``.

    Parameters
    ----------
    regions:
        Mapping from component value (e.g. ``"O"``) to fitted
        :class:`CriticalRegion`; GEMMs whose component has no entry use
        ``default_region``.
    default_region:
        Fallback parameters (a conservative region recovers like classical
        ABFT on unknown components).
    """

    name = "statistical-abft"

    def __init__(
        self,
        regions: dict[str, CriticalRegion] | None = None,
        default_region: Optional[CriticalRegion] = None,
    ) -> None:
        super().__init__()
        self.regions = dict(regions or {})
        self.default_region = default_region or CriticalRegion(
            a=1.05, b=0.0, theta_freq=0.0, kind="sensitive"
        )

    def region_for(self, site: GemmSite) -> CriticalRegion:
        return self.regions.get(site.component.value, self.default_region)

    def should_recover(self, report: ChecksumReport, site: GemmSite) -> bool:
        if not report.any_error:
            return False
        region = self.region_for(site)
        thr = region.theta_mag(report.msd)
        freq_eff = report.count_if_above(thr)
        return freq_eff > region.theta_freq
