"""Checksum mathematics for ABFT on integer GEMM (paper Fig. 3).

For ``Y = W X`` (or, in the inference engine's row-major convention,
``Y = A B`` with activations ``A`` of shape ``(m, k)`` and weights ``B`` of
shape ``(k, n)``):

- the *input-side* checksum is ``e^T A B``: sum the rows of ``A`` first
  (a length-``k`` vector), then multiply by ``B`` — one extra GEMV;
- the *output-side* checksum is ``e^T Y``: sum the rows of the computed
  result.

Fault-free, the two agree (exactly, in integer arithmetic, including under
32-bit wraparound, since modular addition commutes with summation). Any
per-column discrepancy ``d_j = (e^T A B)_j - (e^T Y)_j`` equals the *sum of
injected errors in column j*, which is what the statistical unit buffers.
The matrix sum deviation is ``MSD = sum_j |d_j|``.

Checksum hardware is assumed fault-free, as in the paper (the checksum path
is tiny and can be margined or hardened cheaply).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.gemm import wrap_int32


def input_checksum(a_q: np.ndarray, b_q: np.ndarray) -> np.ndarray:
    """Compute ``e^T A B`` with 32-bit wraparound semantics.

    Both operands may carry leading batch/head axes (``A`` of shape
    ``(..., m, k)``, ``B`` of shape ``(..., k, n)`` or a shared 2-D weight);
    the checksum row is computed per stacked matrix, so the result has shape
    ``(..., n)`` — the broadcast the batched inference engine relies on.
    """
    col_sums = wrap_int32(a_q.astype(np.int64).sum(axis=-2))
    return wrap_int32(np.einsum("...k,...kn->...n", col_sums, b_q.astype(np.int64)))


def column_checksum(y: np.ndarray) -> np.ndarray:
    """Compute the output checksum ``e^T Y`` with wraparound, shape ``(..., n)``."""
    return wrap_int32(np.asarray(y, dtype=np.int64).sum(axis=-2))


def two_sided_checksums(
    a_q: np.ndarray, b_q: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Classical ABFT augmentation: returns (``e^T A B``, ``A B e``).

    The two-sided scheme can *locate* errors (row x column intersection) at
    the cost of both a checksum row and a checksum column; the lightweight
    schemes in this repo use only the column side for detection, as the
    paper's architecture does.
    """
    row_side = input_checksum(a_q, b_q)
    row_sums = wrap_int32(b_q.astype(np.int64).sum(axis=-1))
    col_side = wrap_int32(
        np.einsum("...mk,...k->...m", a_q.astype(np.int64), row_sums)
    )
    return row_side, col_side


def _signed_wrap_diff(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Difference of two int32-valued arrays, wrapped back into int32 range.

    A 32-bit subtractor naturally produces the wrapped difference; we mirror
    that so a single bit-31 flip reads as magnitude 2^31 rather than an
    int64-sized value.
    """
    return wrap_int32(np.asarray(x, dtype=np.int64) - np.asarray(y, dtype=np.int64))


@dataclass
class ChecksumReport:
    """Error statistics extracted from one protected GEMM.

    Attributes
    ----------
    diffs:
        Per-column signed checksum discrepancies ``d_j``: shape ``(n,)`` for
        a plain GEMM, ``(..., n)`` for a batched/head-stacked GEMM (one
        checksum row per stacked matrix).
    msd:
        Matrix sum deviation ``sum_j |d_j|`` over every column of every
        stacked matrix (int).
    """

    diffs: np.ndarray
    msd: int

    @property
    def any_error(self) -> bool:
        return bool(np.any(self.diffs != 0))

    @property
    def max_magnitude(self) -> int:
        return int(np.max(np.abs(self.diffs))) if self.diffs.size else 0

    @property
    def nonzero_count(self) -> int:
        return int(np.count_nonzero(self.diffs))

    def count_if_above(self, threshold: float) -> int:
        """The statistical unit's ``countif``: columns with ``|d_j| > thr``."""
        return int(np.count_nonzero(np.abs(self.diffs) > threshold))


def checksum_report(
    a_q: np.ndarray, b_q: np.ndarray, y_observed: np.ndarray
) -> ChecksumReport:
    """Build the per-column discrepancy report for an observed GEMM output."""
    expected = input_checksum(a_q, b_q)
    observed = column_checksum(y_observed)
    diffs = _signed_wrap_diff(expected, observed)
    msd = int(np.abs(diffs).sum())
    return ChecksumReport(diffs=diffs, msd=msd)


def slice_inspections(diffs: np.ndarray, macs: int):
    """Split a discrepancy array into the protocol's per-slice inspections.

    The checksum row broadcasts over leading batch/head axes, but the
    recovery *decision* stays per 2-D matrix — the hardware recomputes one
    tile, not the whole logical batch — so leading axes flatten into
    ``n_slices`` independent inspections and the GEMM's MACs floor-divide
    across them. Yields ``(slice_index, report, slice_macs)``;
    ``slice_index`` is ``None`` for a plain 2-D GEMM. This is the single
    definition of the slicing protocol, shared by the dispatch pipeline's
    live protect instrument and its replayed bookkeeping
    (``repro.dispatch.pipeline.ProtectInstrument``, DESIGN.md section 8)
    so the two can never drift apart.
    """
    if diffs.ndim <= 1:
        yield None, ChecksumReport(diffs=diffs, msd=int(np.abs(diffs).sum())), macs
        return
    n_slices = int(np.prod(diffs.shape[:-1]))
    flat = diffs.reshape(n_slices, -1)
    slice_macs = macs // n_slices
    for s in range(n_slices):
        d = flat[s]
        yield s, ChecksumReport(diffs=d, msd=int(np.abs(d).sum())), slice_macs


def lane_of_slice(index: int, n_slices: int, n_lanes: int) -> int:
    """Owning lane of 2-D slice ``index`` in a lane-packed dispatch.

    Lane packing stacks K trials along the *leading* batch axis (DESIGN.md
    section 9), and :func:`slice_inspections` flattens leading axes in
    C order, so a packed call's slices form ``n_lanes`` contiguous runs of
    ``n_slices // n_lanes`` — slice ``index`` belongs to run
    ``index // run``. This is the single definition of lane ownership,
    shared by the protect instrument's inspection routing and the per-lane
    cost accounting, so the two can never disagree about which lane a
    recovery belongs to.
    """
    if n_lanes <= 0 or n_slices % n_lanes:
        raise ValueError(
            f"{n_slices} slices do not split into {n_lanes} equal lane runs"
        )
    return index // (n_slices // n_lanes)
