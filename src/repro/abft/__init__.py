"""Algorithm-based fault tolerance (paper Sec. II-C and Sec. V).

Contains checksum mathematics (classical two-sided and lightweight one-sided
schemes), the paper's statistical ABFT decision rule with its critical-region
parameterization, and the baseline detectors it is compared against
(classical ABFT, ApproxABFT, DMR, ThunderVolt).
"""

from repro.abft.checksums import (
    ChecksumReport,
    column_checksum,
    input_checksum,
    checksum_report,
    two_sided_checksums,
)
from repro.abft.region import CriticalRegion, fit_critical_region, theta_mag
from repro.abft.protectors import (
    Protector,
    NoProtection,
    ClassicalABFT,
    ApproxABFT,
    StatisticalABFT,
    LaneProtector,
    ProtectionStats,
)
from repro.abft.baselines import MethodProfile, METHOD_PROFILES

__all__ = [
    "ChecksumReport",
    "column_checksum",
    "input_checksum",
    "checksum_report",
    "two_sided_checksums",
    "CriticalRegion",
    "fit_critical_region",
    "theta_mag",
    "Protector",
    "NoProtection",
    "ClassicalABFT",
    "ApproxABFT",
    "StatisticalABFT",
    "LaneProtector",
    "ProtectionStats",
    "MethodProfile",
    "METHOD_PROFILES",
]
