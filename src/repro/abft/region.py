"""Critical-region model and parameter fitting (paper Sec. V-A, Fig. 6).

The characterization grid (Q1.4) maps every (error magnitude, error
frequency) pair to a model-quality degradation. In (log2 mag, log2 freq)
space the *critical region* — where degradation exceeds the acceptable
budget — is bounded by a horizontal line ``log2(freq) = theta_freq`` (errors
rarer than that are harmless regardless of magnitude) and an inclined line
with slope > 1 (frequent-but-tiny errors are also harmless). Sensitive
components lack the horizontal escape: few large errors already hurt.

At runtime the statistical unit cannot observe the true (mag, freq) pair —
only the per-column checksum discrepancies and their sum (MSD). The paper
therefore derives a magnitude threshold from the inclined boundary,

    ``log2(theta_mag) = b - (a - 1) * log2(MSD)``,

counts the columns whose discrepancy exceeds it
(``freq_eff = countif(|d_j| > theta_mag)``), and triggers recovery iff
``freq_eff > theta_freq``.

Rather than fitting the boundary line geometrically and hoping the derived
rule matches, :func:`fit_critical_region` fits ``(a, b, theta_freq)`` by
directly minimizing the decision rule's misclassification over the grid,
with missed-critical errors weighted much more heavily than unnecessary
recoveries (reliability first, then efficiency). This reproduces the paper's
"empirically established" parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def theta_mag(a: float, b: float, msd: float) -> float:
    """Linear-domain magnitude threshold for an observed MSD.

    Implements the paper's ``theta_mag`` law with the exponent clamped to
    ``>= 0`` so the threshold never falls below one LSB of the accumulator.
    """
    if msd <= 0:
        return 0.0
    exponent = b - (a - 1.0) * np.log2(max(float(msd), 1.0))
    return float(2.0 ** max(exponent, 0.0))


@dataclass(frozen=True)
class CriticalRegion:
    """Fitted statistical-ABFT parameters for one network component.

    Attributes
    ----------
    a:
        Slope parameter of the ``theta_mag`` law (> 1 means the magnitude
        threshold tightens as total deviation grows).
    b:
        Offset parameter of the ``theta_mag`` law (log2 units).
    theta_freq:
        Effective-error-count threshold: recovery triggers when more than
        this many columns carry a significant error.
    kind:
        ``"resilient"`` or ``"sensitive"`` (paper Insight 1); informational.
    """

    a: float
    b: float
    theta_freq: float
    kind: str = "resilient"

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise ValueError(f"slope a must be positive, got {self.a}")
        if self.theta_freq < 0:
            raise ValueError("theta_freq must be non-negative")

    def theta_mag(self, msd: float) -> float:
        """Magnitude threshold (linear domain) for an observed MSD."""
        return theta_mag(self.a, self.b, msd)

    def predicts_recovery(self, mag: float, freq: float) -> bool:
        """Evaluate the decision rule on an idealized identical-error pattern.

        Mirrors what the hardware would see if ``freq`` errors of magnitude
        ``mag`` landed in distinct columns: ``MSD = freq * mag`` and
        ``freq_eff = freq`` if ``mag > theta_mag`` else 0.
        """
        if mag <= 0 or freq <= 0:
            return False
        msd = mag * freq
        freq_eff = freq if mag > self.theta_mag(msd) else 0.0
        return freq_eff > self.theta_freq


@dataclass(frozen=True)
class GridPoint:
    """One cell of the Q1.4 characterization grid."""

    mag: float
    freq: float
    degradation: float


DEFAULT_SLOPES: tuple[float, ...] = tuple(np.round(np.arange(1.05, 3.01, 0.1), 2))
DEFAULT_OFFSETS: tuple[float, ...] = tuple(range(-8, 33, 1))

#: Cost of the decision rule failing to flag a genuinely critical pattern;
#: unnecessary recoveries cost 1. Reliability dominates efficiency.
MISS_WEIGHT = 25.0


def fit_critical_region(
    points: Sequence[GridPoint],
    budget: float,
    kind: str = "resilient",
    slopes: Sequence[float] = DEFAULT_SLOPES,
    offsets: Sequence[float] = DEFAULT_OFFSETS,
) -> CriticalRegion:
    """Fit ``(a, b, theta_freq)`` from a characterization grid.

    Parameters
    ----------
    points:
        Grid of (mag, freq, degradation) observations, degradation measured
        against the fault-free baseline (higher = worse; e.g. perplexity
        increase or accuracy drop in percentage points).
    budget:
        Acceptable degradation — the paper uses a 0.3 perplexity increase or
        a 0.5% accuracy decrease.
    kind:
        Informational component class recorded on the result.
    slopes, offsets:
        Candidate grids for ``a`` and ``b``.

    Returns
    -------
    CriticalRegion
        The parameters minimizing weighted misclassification; ties prefer
        fewer unnecessary recoveries, then smaller ``a``.
    """
    if not points:
        raise ValueError("cannot fit a critical region from an empty grid")

    critical = np.array([p.degradation > budget for p in points])
    mags = np.array([max(p.mag, 1e-12) for p in points])
    freqs = np.array([max(p.freq, 0.0) for p in points])
    msds = mags * freqs
    log_msd = np.log2(np.maximum(msds, 1.0))

    candidate_tf = sorted({0.0, *(float(f) for f in freqs)})
    best: tuple[float, float, float] | None = None
    best_cost = np.inf
    best_unnecessary = np.inf

    for a in slopes:
        for b in offsets:
            exponent = np.maximum(b - (a - 1.0) * log_msd, 0.0)
            thr = np.where(msds > 0, 2.0**exponent, 0.0)
            significant = mags > thr
            freq_eff = np.where(significant, freqs, 0.0)
            for tf in candidate_tf:
                recover = freq_eff > tf
                missed = np.count_nonzero(critical & ~recover)
                unnecessary = np.count_nonzero(~critical & recover)
                cost = MISS_WEIGHT * missed + unnecessary
                if cost < best_cost or (
                    cost == best_cost and unnecessary < best_unnecessary
                ):
                    best_cost = cost
                    best_unnecessary = unnecessary
                    best = (float(a), float(b), float(tf))

    assert best is not None
    a, b, tf = best
    return CriticalRegion(a=a, b=b, theta_freq=tf, kind=kind)
