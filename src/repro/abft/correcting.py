"""Two-sided ABFT with in-place single-error *correction*.

Classical ABFT literature [18] distinguishes detection (one-sided
checksums, as in the paper's architecture — recovery recomputes) from
correction: with both a row-side checksum ``A B e`` and a column-side
checksum ``e^T A B``, a *single* erroneous output element can be located at
the intersection of the discrepant row and column and repaired by
subtracting the discrepancy — no recomputation at all.

The paper's design chooses detection + recomputation because multi-error
patterns at realistic BERs defeat single-error correction; this module
implements the correcting variant so that trade-off can be measured rather
than assumed (see ``tests/test_abft_correcting.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abft.checksums import input_checksum, two_sided_checksums
from repro.quant.gemm import wrap_int32


@dataclass
class CorrectionResult:
    """Outcome of a correction attempt on one observed GEMM output."""

    corrected: np.ndarray
    status: str          # "clean" | "corrected" | "uncorrectable"
    row: int | None = None
    col: int | None = None
    delta: int | None = None


def _wrap_diff(expected: np.ndarray, observed: np.ndarray) -> np.ndarray:
    return wrap_int32(
        np.asarray(expected, dtype=np.int64) - np.asarray(observed, dtype=np.int64)
    )


def try_correct_single_error(
    a_q: np.ndarray, b_q: np.ndarray, y_observed: np.ndarray
) -> CorrectionResult:
    """Locate and repair a single erroneous element of ``y_observed``.

    Returns ``status="clean"`` when checksums agree, ``"corrected"`` when
    exactly one row and one column disagree with matching discrepancy
    (the single-error signature), and ``"uncorrectable"`` otherwise
    (multiple errors, or aliasing) — callers should fall back to
    recomputation in that case.
    """
    col_expected, row_expected = two_sided_checksums(a_q, b_q)
    y = np.asarray(y_observed, dtype=np.int64)
    col_diffs = _wrap_diff(col_expected, y.sum(axis=0))
    row_diffs = _wrap_diff(row_expected, y.sum(axis=1))

    bad_cols = np.flatnonzero(col_diffs)
    bad_rows = np.flatnonzero(row_diffs)
    if bad_cols.size == 0 and bad_rows.size == 0:
        return CorrectionResult(corrected=np.array(y), status="clean")
    if bad_cols.size == 1 and bad_rows.size == 1:
        col = int(bad_cols[0])
        row = int(bad_rows[0])
        if int(col_diffs[col]) == int(row_diffs[row]):
            delta = int(col_diffs[col])
            repaired = np.array(y)
            repaired[row, col] = wrap_int32(
                np.array([repaired[row, col] + delta])
            )[0]
            return CorrectionResult(
                corrected=repaired, status="corrected", row=row, col=col, delta=delta
            )
    return CorrectionResult(corrected=np.array(y), status="uncorrectable")


def correction_success_rate(
    a_q: np.ndarray,
    b_q: np.ndarray,
    y_clean: np.ndarray,
    corrupted_outputs: list[np.ndarray],
) -> float:
    """Fraction of corrupted outputs fully repaired by single-error
    correction — the measurement behind the paper's detection-only choice."""
    if not corrupted_outputs:
        raise ValueError("no corrupted outputs supplied")
    repaired = 0
    for observed in corrupted_outputs:
        result = try_correct_single_error(a_q, b_q, observed)
        if result.status in ("clean", "corrected") and np.array_equal(
            result.corrected, y_clean
        ):
            repaired += 1
    return repaired / len(corrupted_outputs)
