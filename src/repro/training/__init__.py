"""Training substrate: LM trainer and the cached tiny-model zoo."""

from repro.training.trainer import TrainConfig, Trainer, TrainResult
from repro.training.zoo import PretrainedBundle, get_pretrained, clear_cache

__all__ = [
    "TrainConfig",
    "Trainer",
    "TrainResult",
    "PretrainedBundle",
    "get_pretrained",
    "clear_cache",
]
