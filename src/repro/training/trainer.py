"""Causal-LM trainer for the tiny float models.

Standard recipe: Adam, linear warmup + cosine decay, gradient clipping.
Training data is streamed from a :class:`~repro.data.markov.MarkovTextSource`
with per-step derived RNG keys, so runs are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd.optim import Adam, clip_grad_norm
from repro.data.markov import MarkovTextSource
from repro.models.float_model import FloatTransformerLM
from repro.utils.logging import get_logger

logger = get_logger("training")


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters of one training run."""

    steps: int = 1200
    batch_size: int = 16
    seq_len: int = 48
    lr: float = 3e-3
    warmup_steps: int = 60
    clip_norm: float = 1.0
    weight_decay: float = 0.0
    log_every: int = 200


@dataclass
class TrainResult:
    """Loss curve and summary of a completed run."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no training steps recorded")
        tail = self.losses[-20:]
        return float(np.mean(tail))


def lr_at(step: int, config: TrainConfig) -> float:
    """Linear warmup then cosine decay to 10% of peak."""
    if step < config.warmup_steps:
        return config.lr * (step + 1) / config.warmup_steps
    progress = (step - config.warmup_steps) / max(config.steps - config.warmup_steps, 1)
    floor = 0.1 * config.lr
    return floor + (config.lr - floor) * 0.5 * (1.0 + np.cos(np.pi * progress))


class Trainer:
    """Trains a :class:`FloatTransformerLM` on a Markov source."""

    def __init__(self, model: FloatTransformerLM, config: TrainConfig) -> None:
        self.model = model
        self.config = config
        self.optimizer = Adam(
            model.parameters(), lr=config.lr, weight_decay=config.weight_decay
        )

    def train(self, source: MarkovTextSource, run_key: str = "train") -> TrainResult:
        if source.vocab_size != self.model.config.vocab_size:
            raise ValueError("source vocabulary does not match the model")
        if self.config.seq_len > self.model.config.max_seq_len:
            raise ValueError("seq_len exceeds the model's max_seq_len")
        result = TrainResult()
        for step in range(self.config.steps):
            batch = source.sample_batch(
                self.config.batch_size, self.config.seq_len, key=f"{run_key}/{step}"
            )
            loss = self.model.loss(batch)
            self.optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(self.optimizer.params, self.config.clip_norm)
            self.optimizer.lr = lr_at(step, self.config)
            self.optimizer.step()
            result.losses.append(loss.item())
            if self.config.log_every and (step + 1) % self.config.log_every == 0:
                logger.info(
                    "step %d/%d loss %.4f", step + 1, self.config.steps, loss.item()
                )
        return result
