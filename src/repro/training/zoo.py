"""Model zoo: train-once, cache-on-disk tiny LMs shared by the whole repo.

Stands in for downloading pretrained OPT/LLaMA checkpoints: the first call
trains the requested configuration on its Markov source and caches the
weights under ``$REPRO_CACHE`` (default ``~/.cache/repro``); subsequent
calls (tests, examples, every benchmark) load instantly.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.markov import MarkovTextSource
from repro.models.config import ModelConfig
from repro.models.float_model import FloatTransformerLM
from repro.training.trainer import TrainConfig, Trainer
from repro.utils.logging import get_logger

logger = get_logger("zoo")

#: Named configurations. "mini" is for fast unit tests; "tiny" is the
#: workhorse for experiments (OPT-style stands in for OPT-1.3B, LLaMA-style
#: for LLaMA-2-7B / LLaMA-3-8B); "deep" doubles the layer count for
#: depth-sensitive studies (layer-wise sweeps, clean-trace replay).
ZOO_SPECS: dict[str, dict] = {
    "opt-mini": {
        "config": dict(
            arch="opt", vocab_size=64, d_model=32, n_heads=2, n_layers=2,
            d_ff=64, max_seq_len=48, outlier_channels=2,
        ),
        "train": dict(steps=500, batch_size=12, seq_len=32, lr=4e-3, log_every=0),
        "source": dict(vocab_size=64, branching=4, concentration=0.3),
    },
    "llama-mini": {
        "config": dict(
            arch="llama", vocab_size=64, d_model=32, n_heads=2, n_layers=2,
            d_ff=48, max_seq_len=48, outlier_channels=2,
        ),
        "train": dict(steps=500, batch_size=12, seq_len=32, lr=4e-3, log_every=0),
        "source": dict(vocab_size=64, branching=4, concentration=0.3),
    },
    "opt-tiny": {
        "config": dict(
            arch="opt", vocab_size=128, d_model=64, n_heads=4, n_layers=4,
            d_ff=128, max_seq_len=64, outlier_channels=4,
        ),
        "train": dict(steps=1400, batch_size=16, seq_len=48, lr=3e-3, log_every=200),
        "source": dict(vocab_size=128, branching=4, concentration=0.3),
    },
    "llama-tiny": {
        "config": dict(
            arch="llama", vocab_size=128, d_model=64, n_heads=4, n_layers=4,
            d_ff=96, max_seq_len=64, outlier_channels=4,
        ),
        "train": dict(steps=1400, batch_size=16, seq_len=48, lr=3e-3, log_every=200),
        "source": dict(vocab_size=128, branching=4, concentration=0.3),
    },
    "opt-deep": {
        "config": dict(
            arch="opt", vocab_size=128, d_model=64, n_heads=4, n_layers=8,
            d_ff=128, max_seq_len=64, outlier_channels=4,
        ),
        "train": dict(steps=1000, batch_size=16, seq_len=48, lr=3e-3, log_every=200),
        "source": dict(vocab_size=128, branching=4, concentration=0.3),
    },
}


@dataclass
class PretrainedBundle:
    """Everything downstream code needs: config, weights, data source."""

    name: str
    config: ModelConfig
    state: dict[str, np.ndarray]
    source: MarkovTextSource
    final_loss: float

    def float_model(self) -> FloatTransformerLM:
        model = FloatTransformerLM(self.config)
        model.load_state_dict(self.state)
        return model


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE")
    if root:
        return Path(root)
    return Path.home() / ".cache" / "repro"


def _cache_path(name: str, seed: int) -> Path:
    return cache_dir() / f"zoo-{name}-seed{seed}.npz"


def clear_cache() -> None:
    """Delete all cached zoo checkpoints."""
    directory = cache_dir()
    if directory.exists():
        for path in directory.glob("zoo-*.npz"):
            path.unlink()


def _train(name: str, seed: int) -> PretrainedBundle:
    spec = ZOO_SPECS[name]
    config = ModelConfig(**spec["config"])
    source = MarkovTextSource(seed=seed, **spec["source"])
    model = FloatTransformerLM(config, seed=seed)
    trainer = Trainer(model, TrainConfig(**spec["train"]))
    logger.info("training zoo model %s (seed %d)...", name, seed)
    result = trainer.train(source, run_key=f"zoo/{name}")
    logger.info("zoo model %s trained, final loss %.4f", name, result.final_loss)
    return PretrainedBundle(
        name=name,
        config=config,
        state=model.state_dict(),
        source=source,
        final_loss=result.final_loss,
    )


def get_pretrained(name: str, seed: int = 0, use_cache: bool = True) -> PretrainedBundle:
    """Return a trained bundle, training and caching it on first use."""
    if name not in ZOO_SPECS:
        raise KeyError(f"unknown zoo model {name!r}; available: {sorted(ZOO_SPECS)}")
    path = _cache_path(name, seed)
    spec = ZOO_SPECS[name]
    if use_cache and path.exists():
        try:
            with np.load(path, allow_pickle=False) as archive:
                meta = json.loads(str(archive["__meta__"]))
                state = {
                    key: archive[key]
                    for key in archive.files
                    if key not in ("__meta__",)
                }
        except Exception:  # corrupted/truncated cache: fall back to retraining
            logger.info("cache for %s is unreadable; retraining", name)
            meta = {}
            state = {}
        if state and meta.get("spec") == _spec_fingerprint(spec):
            config = ModelConfig(**spec["config"])
            source = MarkovTextSource(seed=seed, **spec["source"])
            return PretrainedBundle(
                name=name,
                config=config,
                state=state,
                source=source,
                final_loss=float(meta["final_loss"]),
            )
        logger.info("cache for %s is stale; retraining", name)
    bundle = _train(name, seed)
    if use_cache:
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = json.dumps(
            {"spec": _spec_fingerprint(spec), "final_loss": bundle.final_loss}
        )
        np.savez(path, __meta__=np.asarray(meta), **bundle.state)
    return bundle


def _spec_fingerprint(spec: dict) -> str:
    return json.dumps(spec, sort_keys=True, default=str)
