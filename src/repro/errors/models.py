"""Error models applied to INT32 GEMM accumulation results.

:class:`BitFlipModel` is the paper's primary model (Sec. III-A): random bit
flips at a given bit-error rate, restricted to higher accumulator bits since
timing errors predominantly corrupt the most significant bits of the result
[7], [22], [46].

:class:`MagFreqModel` is the controlled model of Sec. III-B used for the
magnitude-vs-frequency study (Q1.4): exactly ``freq`` identical additive
errors of magnitude ``mag`` per GEMM, so that ``MSD = freq * mag``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro.quant.gemm import wrap_int32

#: Default targeted bit positions: the upper half of the 32-bit accumulator,
#: where timing errors land (carry chains resolve MSBs last).
HIGH_BITS: tuple[int, ...] = tuple(range(16, 32))


class ErrorModel(Protocol):
    """An error model corrupts an int32-valued accumulator array in place
    semantics-free: it returns a *new* corrupted array and an error count.

    Lane contract (DESIGN.md section 9): ``corrupt`` must derive every draw
    from ``acc``'s own shape/content and the supplied ``rng`` — never from
    process-global state — because the lane-vectorized executor feeds each
    lane its *block* of a packed accumulator (``ErrorInjector.corrupt_into``)
    and relies on the draws being bit-identical to a solo run on the same
    array. Per-instance memoization keyed on observable array properties
    (e.g. :class:`StuckHighBitModel`'s per-width column picks) is fine:
    every lane owns a private model instance.
    """

    def corrupt(
        self, acc: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, int]:
        """Return (corrupted accumulators, number of injected errors)."""
        ...


def flip_bits(acc: np.ndarray, bit_mask: np.ndarray) -> np.ndarray:
    """XOR an int32-valued (int64-stored) array with per-element bit masks.

    The XOR is performed on the two's-complement uint32 view so flipping
    bit 31 toggles the sign, exactly as in hardware.
    """
    as_u32 = np.asarray(acc, dtype=np.int64).astype(np.uint32)
    flipped = as_u32 ^ bit_mask.astype(np.uint32)
    return wrap_int32(flipped.astype(np.int64))


@dataclass
class BitFlipModel:
    """Independent random bit flips at rate ``ber`` over ``bits``.

    For each accumulator element and each targeted bit position, a flip
    occurs independently with probability ``ber``. ``bits`` defaults to the
    high half of the accumulator; single-bit studies (Q1.2) pass ``bits=(k,)``.
    """

    ber: float
    bits: Sequence[int] = HIGH_BITS

    def __post_init__(self) -> None:
        if not 0.0 <= self.ber <= 1.0:
            raise ValueError(f"ber must be in [0, 1], got {self.ber}")
        if any(not 0 <= b < 32 for b in self.bits):
            raise ValueError(f"bit positions must be in [0, 32): {self.bits}")

    def corrupt(
        self, acc: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, int]:
        if self.ber == 0.0 or acc.size == 0:
            return np.array(acc, copy=True), 0
        # Expected flips; draw the total count then scatter, which is far
        # cheaper than an (elements x bits) Bernoulli field at low BER.
        n_cells = acc.size * len(self.bits)
        n_flips = int(rng.binomial(n_cells, self.ber))
        if n_flips == 0:
            return np.array(acc, copy=True), 0
        cells = rng.choice(n_cells, size=n_flips, replace=False)
        element_idx = cells // len(self.bits)
        bit_idx = np.asarray(self.bits, dtype=np.uint32)[cells % len(self.bits)]
        # Sparse application: XOR only the hit elements instead of streaming
        # the whole accumulator through a uint32 round trip — bit-identical
        # (untouched int32-range values survive the old round trip unchanged)
        # and identical RNG draws, just without the full-array passes.
        out = np.array(acc, dtype=np.int64)
        flat = out.reshape(-1)
        uniq, inverse = np.unique(element_idx, return_inverse=True)
        bit_masks = np.zeros(uniq.size, dtype=np.uint32)
        np.bitwise_xor.at(bit_masks, inverse, (np.uint32(1) << bit_idx))
        flipped = flat[uniq].astype(np.uint32) ^ bit_masks
        flat[uniq] = wrap_int32(flipped.astype(np.int64))
        affected = int(np.count_nonzero(bit_masks))
        return out, affected


@dataclass
class MagFreqModel:
    """Exactly ``freq`` additive errors of magnitude ``mag`` per GEMM matrix.

    A "matrix" is one 2-D output slice: the whole result of a plain GEMM, or
    each stacked (sequence, attention-head) slice of a batched GEMM — so the
    injection *density* is invariant to batching and matches the paper's
    per-GEMM Q1.4 protocol (see DESIGN.md section 5). ``sign`` controls the
    error polarity (+1, -1, or 0 for random signs). With identical signs
    each slice's sum deviation satisfies ``MSD = freq * mag``.
    """

    mag: int
    freq: int
    sign: int = 1

    def __post_init__(self) -> None:
        if self.mag < 0:
            raise ValueError("mag must be non-negative")
        if self.freq < 0:
            raise ValueError("freq must be non-negative")
        if self.sign not in (-1, 0, 1):
            raise ValueError("sign must be -1, 0, or +1")

    def _corrupt_slice(self, flat: np.ndarray, rng: np.random.Generator) -> int:
        """Inject into one flattened 2-D slice in place; returns the count."""
        count = min(self.freq, flat.size)
        positions = rng.choice(flat.size, size=count, replace=False)
        if self.sign == 0:
            signs = rng.choice(np.array([-1, 1], dtype=np.int64), size=count)
        else:
            signs = np.full(count, self.sign, dtype=np.int64)
        flat[positions] = wrap_int32(flat[positions] + signs * self.mag)
        return count

    def corrupt(
        self, acc: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, int]:
        if self.freq == 0 or self.mag == 0 or acc.size == 0:
            return np.array(acc, copy=True), 0
        out = np.array(acc, dtype=np.int64)
        slice_size = out.shape[-1] * (out.shape[-2] if out.ndim >= 2 else 1)
        slices = out.reshape(-1, slice_size)
        total = 0
        for row in slices:
            total += self._corrupt_slice(row, rng)
        return slices.reshape(acc.shape), total


@dataclass
class StuckHighBitModel:
    """Permanent-fault flavour: a fixed bit is stuck at 1 for a random subset
    of output columns (chosen once per model instance).

    Included for completeness of the fault taxonomy (Tab. I discusses
    permanent faults as straightforward to detect); used in tests and in the
    failure-injection suite rather than headline experiments.
    """

    bit: int
    column_fraction: float = 0.01
    _columns: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.bit < 32:
            raise ValueError("bit must be in [0, 32)")
        if not 0.0 <= self.column_fraction <= 1.0:
            raise ValueError("column_fraction must be in [0, 1]")

    def corrupt(
        self, acc: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, int]:
        if acc.ndim < 2 or acc.size == 0 or self.column_fraction == 0.0:
            return np.array(acc, copy=True), 0
        n_cols = acc.shape[-1]
        if n_cols not in self._columns:
            n_pick = max(1, int(round(self.column_fraction * n_cols)))
            self._columns[n_cols] = rng.choice(n_cols, size=n_pick, replace=False)
        cols = self._columns[n_cols]
        as_u32 = np.asarray(acc, dtype=np.int64).astype(np.uint32)
        as_u32[..., cols] |= np.uint32(1) << np.uint32(self.bit)
        corrupted = wrap_int32(as_u32.astype(np.int64))
        changed = int(np.count_nonzero(corrupted != acc))
        return corrupted, changed
