"""Taxonomy of GEMM injection sites.

Every quantized GEMM executed by the inference engine is tagged with a
:class:`GemmSite` naming its transformer layer, network component (paper
Fig. 2 labels: Q, K, V, QK^T, SV, O, FC1/FC2 for OPT; Gate/Up/Down for
LLaMA) and generation stage (prefill vs. decode). Filters select subsets of
sites for targeted injection, which is how the characterization questions
(Q1.1-Q2.2) are expressed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence


class Component(enum.Enum):
    """Network components of the Transformer block (paper Fig. 2)."""

    Q = "Q"
    K = "K"
    V = "V"
    QKT = "QKT"
    SV = "SV"
    O = "O"
    FC1 = "FC1"
    FC2 = "FC2"
    GATE = "Gate"
    UP = "Up"
    DOWN = "Down"
    LM_HEAD = "LMHead"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Components whose outputs feed a normalization layer via the residual
#: stream; the paper identifies these as *sensitive* (Insight 1).
SENSITIVE_COMPONENTS = frozenset(
    {Component.O, Component.FC2, Component.DOWN}
)

#: All other matmul components are *resilient*.
RESILIENT_COMPONENTS = frozenset(
    {
        Component.Q,
        Component.K,
        Component.V,
        Component.QKT,
        Component.SV,
        Component.FC1,
        Component.GATE,
        Component.UP,
    }
)


def component_kind(component: Component) -> str:
    """Classify a component as ``"sensitive"`` or ``"resilient"`` (Insight 1)."""
    return "sensitive" if component in SENSITIVE_COMPONENTS else "resilient"


class Stage(enum.Enum):
    """Generation stage of an LLM forward pass."""

    PREFILL = "prefill"
    DECODE = "decode"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class GemmSite:
    """Identity of one GEMM invocation inside the model."""

    layer: int
    component: Component
    stage: Stage

    def __str__(self) -> str:
        return f"L{self.layer}/{self.component.value}/{self.stage.value}"


@dataclass
class SiteFilter:
    """Predicate over :class:`GemmSite` used to scope error injection.

    ``None`` for a field means "match everything". This directly encodes the
    experimental protocols of Sec. IV: e.g. Q1.1 sets ``layers={k}``, Q1.3
    sets ``components={c}``, Q2.1 sets ``stages={...}``.

    Like the injector that carries it, a filter is treated as immutable once
    attached: :meth:`earliest_layer` answers are memoized (the replay engine
    asks once per forward, for every resumed forward of every trial), so
    replace a filter rather than mutating its fields in place.
    """

    layers: Optional[frozenset[int]] = None
    components: Optional[frozenset[Component]] = None
    stages: Optional[frozenset[Stage]] = None
    _earliest_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def everywhere(cls) -> "SiteFilter":
        return cls()

    @classmethod
    def only(
        cls,
        layers: Optional[Sequence[int]] = None,
        components: Optional[Sequence[Component]] = None,
        stages: Optional[Sequence[Stage]] = None,
    ) -> "SiteFilter":
        return cls(
            layers=frozenset(layers) if layers is not None else None,
            components=frozenset(components) if components is not None else None,
            stages=frozenset(stages) if stages is not None else None,
        )

    def matches(self, site: GemmSite) -> bool:
        if self.layers is not None and site.layer not in self.layers:
            return False
        if self.components is not None and site.component not in self.components:
            return False
        if self.stages is not None and site.stage not in self.stages:
            return False
        return True

    # -------------------------------------------------- replay reasoning
    # The clean-trace replay engine (see DESIGN.md section 7) resumes an
    # injected forward from the first layer boundary this filter can reach:
    # everything upstream is bit-identical to the recorded fault-free run.

    def targets_stage(self, stage: Stage) -> bool:
        """Whether any site of ``stage`` could match this filter."""
        return self.stages is None or stage in self.stages

    def targets(
        self,
        n_layers: int,
        components: Optional[Sequence[Component]] = None,
        stage: Optional[Stage] = None,
    ) -> bool:
        """Whether the filter can match *any* GEMM of a model with
        ``n_layers`` layers and the given ``components`` (optionally
        restricted to one generation ``stage``)."""
        return self.earliest_layer(n_layers, components=components, stage=stage) is not None

    def earliest_layer(
        self,
        n_layers: int,
        components: Optional[Sequence[Component]] = None,
        stage: Optional[Stage] = None,
    ) -> Optional[int]:
        """Earliest layer index whose GEMMs this filter could match.

        Returns ``None`` when no site of the model can be targeted — either
        the requested ``stage`` is filtered out, the filter's components are
        disjoint from the model's ``components``, or every filtered layer
        index lies outside ``range(n_layers)``. A ``None`` lets the replay
        engine skip the forward entirely; an integer ``e`` means layers
        ``< e`` are provably untouched and can be restored from the trace.

        Memoized per ``(n_layers, components, stage)``: the replay hot path
        re-asks this for every resumed forward of every trial of a cell,
        always with the same arguments.
        """
        key = (
            n_layers,
            tuple(components) if components is not None else None,
            stage,
        )
        cached = self._earliest_cache.get(key, -1)
        if cached != -1:
            return cached
        self._earliest_cache[key] = answer = self._earliest_layer(
            n_layers, components, stage
        )
        return answer

    def _earliest_layer(
        self,
        n_layers: int,
        components: Optional[Sequence[Component]],
        stage: Optional[Stage],
    ) -> Optional[int]:
        if stage is not None and not self.targets_stage(stage):
            return None
        if (
            components is not None
            and self.components is not None
            and not self.components.intersection(components)
        ):
            return None
        if self.layers is None:
            return 0
        eligible = [layer for layer in self.layers if 0 <= layer < n_layers]
        return min(eligible) if eligible else None


@dataclass
class SiteFilterUnion:
    """Union of several :class:`SiteFilter`\\ s, for lane-packed execution.

    A lane-packed forward (DESIGN.md section 9) carries one injector per
    batch lane; the *pack* targets a site whenever any lane does, and the
    replay engine may only resume from the earliest layer any lane can
    touch. This object presents the same replay-reasoning surface as a
    single filter (:meth:`matches`, :meth:`targets_stage`,
    :meth:`earliest_layer`) over the member filters, so
    ``repro.models.replay.resume_layer`` works unchanged.
    """

    filters: tuple[SiteFilter, ...]

    def __post_init__(self) -> None:
        self.filters = tuple(self.filters)
        if not self.filters:
            raise ValueError("a filter union needs at least one member")

    def matches(self, site: GemmSite) -> bool:
        return any(f.matches(site) for f in self.filters)

    def targets_stage(self, stage: Stage) -> bool:
        return any(f.targets_stage(stage) for f in self.filters)

    def targets(
        self,
        n_layers: int,
        components: Optional[Sequence[Component]] = None,
        stage: Optional[Stage] = None,
    ) -> bool:
        return self.earliest_layer(n_layers, components=components, stage=stage) is not None

    def earliest_layer(
        self,
        n_layers: int,
        components: Optional[Sequence[Component]] = None,
        stage: Optional[Stage] = None,
    ) -> Optional[int]:
        """Earliest layer *any* member filter could match (``None`` if none)."""
        layers = [
            f.earliest_layer(n_layers, components=components, stage=stage)
            for f in self.filters
        ]
        reachable = [layer for layer in layers if layer is not None]
        return min(reachable) if reachable else None
