"""Error-injection framework (paper Sec. III).

Transient computational faults are modeled as bit flips in the INT32 GEMM
accumulation results, with severity controlled by a bit-error rate, following
the paper's protocol. A second, analysis-oriented model injects identical
additive errors with controlled magnitude and frequency so that
``MSD = freq * mag`` (Sec. III-B), enabling the Q1.4 trade-off study.
"""

from repro.errors.sites import Component, Stage, GemmSite, SiteFilter, SiteFilterUnion
from repro.errors.models import BitFlipModel, MagFreqModel, StuckHighBitModel, ErrorModel
from repro.errors.injector import ErrorInjector, InjectionStats, LaneInjector

__all__ = [
    "Component",
    "Stage",
    "GemmSite",
    "SiteFilter",
    "SiteFilterUnion",
    "BitFlipModel",
    "MagFreqModel",
    "StuckHighBitModel",
    "ErrorModel",
    "ErrorInjector",
    "InjectionStats",
    "LaneInjector",
]
