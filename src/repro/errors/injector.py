"""Dynamic error injector routing error models onto GEMM sites.

The inference engine calls :meth:`ErrorInjector.corrupt` with every INT32
GEMM result and its :class:`~repro.errors.sites.GemmSite`; the injector
decides (via its :class:`~repro.errors.sites.SiteFilter`) whether the site is
targeted and applies the configured error model, keeping running statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors.models import ErrorModel
from repro.errors.sites import GemmSite, SiteFilter
from repro.utils.seeding import derive_rng


@dataclass
class InjectionStats:
    """Aggregate counters kept by an injector across a run."""

    gemm_calls: int = 0
    targeted_calls: int = 0
    corrupted_calls: int = 0
    injected_errors: int = 0
    per_site_errors: dict[str, int] = field(default_factory=dict)

    def record(self, site: GemmSite, targeted: bool, n_errors: int) -> None:
        self.gemm_calls += 1
        if targeted:
            self.targeted_calls += 1
        if n_errors > 0:
            self.corrupted_calls += 1
            self.injected_errors += n_errors
            key = str(site)
            self.per_site_errors[key] = self.per_site_errors.get(key, 0) + n_errors


class ErrorInjector:
    """Applies an :class:`ErrorModel` to GEMM results matching a filter.

    Parameters
    ----------
    model:
        The error model (``BitFlipModel``, ``MagFreqModel``, ...).
    site_filter:
        Which sites to target; defaults to everywhere. Treated as immutable
        once attached: per-site match decisions are memoized (the injector
        is consulted for *every* GEMM of every forward, and most campaign
        filters target a single layer or component). Replace the injector
        rather than mutating its filter in place.
    seed:
        Root seed; every (site, call-index) pair derives an independent
        stream so runs are reproducible regardless of evaluation order.
    """

    def __init__(
        self,
        model: ErrorModel,
        site_filter: SiteFilter | None = None,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.site_filter = site_filter or SiteFilter.everywhere()
        self.seed = seed
        self.stats = InjectionStats()
        self._call_index = 0
        self._match_cache: dict[GemmSite, bool] = {}
        self.enabled = True

    def reset(self) -> None:
        """Clear statistics and the call counter (fresh experiment)."""
        self.stats = InjectionStats()
        self._call_index = 0
        self._match_cache = {}

    def targets(self, site: GemmSite) -> bool:
        """Whether a GEMM at ``site`` would be corrupted (filter + enabled)."""
        if not self.enabled:
            return False
        hit = self._match_cache.get(site)
        if hit is None:
            hit = self._match_cache[site] = self.site_filter.matches(site)
        return hit

    def register_untargeted(self, site: GemmSite) -> None:
        """Account for an executed GEMM the filter does not target.

        Advances the call counter exactly as :meth:`corrupt` would, so the
        per-(site, call-index) RNG streams of later targeted calls are
        unchanged — this lets the executor skip materializing integer
        accumulators for untargeted sites without perturbing reproducibility.
        """
        self._call_index += 1
        self.stats.record(site, False, 0)

    def corrupt(self, acc: np.ndarray, site: GemmSite) -> np.ndarray:
        """Return the (possibly corrupted) accumulator array for ``site``."""
        self._call_index += 1
        # Fast-path guard: the memoized filter match runs before any RNG
        # stream is derived, so untargeted sites cost one dict hit.
        if not self.targets(site):
            self.stats.record(site, False, 0)
            return acc
        rng = derive_rng(self.seed, f"inject/{site}/{self._call_index}")
        corrupted, n_errors = self.model.corrupt(acc, rng)
        self.stats.record(site, True, n_errors)
        return corrupted
