"""Dynamic error injector routing error models onto GEMM sites.

The inference engine calls :meth:`ErrorInjector.corrupt` with every INT32
GEMM result and its :class:`~repro.errors.sites.GemmSite`; the injector
decides (via its :class:`~repro.errors.sites.SiteFilter`) whether the site is
targeted and applies the configured error model, keeping running statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors.models import ErrorModel
from repro.errors.sites import GemmSite, SiteFilter, SiteFilterUnion
from repro.utils.seeding import derive_rng


@dataclass
class InjectionStats:
    """Aggregate counters kept by an injector across a run."""

    gemm_calls: int = 0
    targeted_calls: int = 0
    corrupted_calls: int = 0
    injected_errors: int = 0
    per_site_errors: dict[str, int] = field(default_factory=dict)

    def record(self, site: GemmSite, targeted: bool, n_errors: int) -> None:
        self.gemm_calls += 1
        if targeted:
            self.targeted_calls += 1
        if n_errors > 0:
            self.corrupted_calls += 1
            self.injected_errors += n_errors
            key = str(site)
            self.per_site_errors[key] = self.per_site_errors.get(key, 0) + n_errors


class ErrorInjector:
    """Applies an :class:`ErrorModel` to GEMM results matching a filter.

    Parameters
    ----------
    model:
        The error model (``BitFlipModel``, ``MagFreqModel``, ...).
    site_filter:
        Which sites to target; defaults to everywhere. Treated as immutable
        once attached: per-site match decisions are memoized (the injector
        is consulted for *every* GEMM of every forward, and most campaign
        filters target a single layer or component). Replace the injector
        rather than mutating its filter in place.
    seed:
        Root seed; every (site, call-index) pair derives an independent
        stream so runs are reproducible regardless of evaluation order.
    """

    def __init__(
        self,
        model: ErrorModel,
        site_filter: SiteFilter | None = None,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.site_filter = site_filter or SiteFilter.everywhere()
        self.seed = seed
        self.stats = InjectionStats()
        self._call_index = 0
        self._match_cache: dict[GemmSite, bool] = {}
        self.enabled = True

    def reset(self) -> None:
        """Clear statistics and the call counter (fresh experiment)."""
        self.stats = InjectionStats()
        self._call_index = 0
        self._match_cache = {}

    def targets(self, site: GemmSite) -> bool:
        """Whether a GEMM at ``site`` would be corrupted (filter + enabled)."""
        if not self.enabled:
            return False
        hit = self._match_cache.get(site)
        if hit is None:
            hit = self._match_cache[site] = self.site_filter.matches(site)
        return hit

    def register_untargeted(self, site: GemmSite) -> None:
        """Account for an executed GEMM the filter does not target.

        Advances the call counter exactly as :meth:`corrupt` would, so the
        per-(site, call-index) RNG streams of later targeted calls are
        unchanged — this lets the executor skip materializing integer
        accumulators for untargeted sites without perturbing reproducibility.
        """
        self._call_index += 1
        self.stats.record(site, False, 0)

    def _stream(self, site: GemmSite) -> np.random.Generator:
        """The per-(site, call-index) RNG stream at the current counter —
        the single definition shared by :meth:`corrupt` and
        :meth:`corrupt_into`, so the solo and lane-packed corruption paths
        can never drift apart in their draws."""
        return derive_rng(self.seed, f"inject/{site}/{self._call_index}")

    def corrupt(self, acc: np.ndarray, site: GemmSite) -> np.ndarray:
        """Return the (possibly corrupted) accumulator array for ``site``."""
        self._call_index += 1
        # Fast-path guard: the memoized filter match runs before any RNG
        # stream is derived, so untargeted sites cost one dict hit.
        if not self.targets(site):
            self.stats.record(site, False, 0)
            return acc
        corrupted, n_errors = self.model.corrupt(acc, self._stream(site))
        self.stats.record(site, True, n_errors)
        return corrupted

    def corrupt_into(self, out: np.ndarray, block: slice, site: GemmSite) -> int:
        """Corrupt this injector's lane block of a packed accumulator.

        Mirrors :meth:`corrupt` exactly — the same call-counter advance,
        the same memoized filter check, the same :meth:`_stream` RNG
        derivation — but applies the error model to ``out[block]`` in
        place. The block has precisely the shape this injector would have
        seen running its trial alone (lanes stack along the leading batch
        axis, DESIGN.md section 9), so the model draws an identical stream
        and flips identical bits; statistics update as in the solo run.
        Returns the number of injected errors.
        """
        self._call_index += 1
        if not self.targets(site):
            self.stats.record(site, False, 0)
            return 0
        corrupted, n_errors = self.model.corrupt(out[block], self._stream(site))
        out[block] = corrupted
        self.stats.record(site, True, n_errors)
        return n_errors


class LaneInjector:
    """K per-lane injector streams over one lane-packed accumulator.

    A lane-packed forward (DESIGN.md section 9) stacks K trials' token
    batches along the batch axis and runs them as one dispatch stream. This
    wrapper presents the single-injector surface the dispatch chain expects
    (:meth:`targets`, :meth:`corrupt`, :meth:`register_untargeted`,
    ``site_filter``/``enabled`` for replay reasoning) while keeping one
    fully independent :class:`ErrorInjector` per lane — own error model,
    own filter, own seed-derived RNG streams, own statistics — so every
    lane's draws and counters are bit-identical to running its trial alone.

    ``lanes`` entries may be ``None`` for clean lanes (no error model):
    such lanes are never corrupted and keep no statistics, exactly like a
    solo trial run with no injector attached.
    """

    def __init__(self, lanes: Sequence[Optional[ErrorInjector]]) -> None:
        if not lanes:
            raise ValueError("a lane injector needs at least one lane")
        self.lanes: tuple[Optional[ErrorInjector], ...] = tuple(lanes)
        self._live = tuple(lane for lane in self.lanes if lane is not None)
        self.site_filter = (
            SiteFilterUnion(tuple(lane.site_filter for lane in self._live))
            if self._live
            else SiteFilter.only(layers=[])  # clean pack: targets nothing
        )

    @property
    def enabled(self) -> bool:
        """The pack participates in injection iff any lane does (replay
        reasoning reads this exactly as on a solo injector)."""
        return any(lane.enabled for lane in self._live)

    def reset(self) -> None:
        for lane in self._live:
            lane.reset()

    def targets(self, site: GemmSite) -> bool:
        """Whether *any* lane would corrupt a GEMM at ``site`` (each lane's
        answer is already memoized per site, so this is K dict hits)."""
        return any(lane.targets(site) for lane in self._live)

    def register_untargeted(self, site: GemmSite) -> None:
        """Advance every lane's stream exactly as its solo run would."""
        for lane in self._live:
            lane.register_untargeted(site)

    def corrupt(self, acc: np.ndarray, site: GemmSite) -> np.ndarray:
        """Apply each lane's error model to that lane's block only.

        The packed accumulator's leading axis is ``n_lanes * lane_batch``
        rows (lane j owns the j-th contiguous block); every live lane's
        call counter advances whether or not its own filter targets the
        site, mirroring what each solo run's :meth:`ErrorInjector.corrupt`
        would have done on this dispatch.
        """
        if not self.targets(site):
            self.register_untargeted(site)
            return acc
        n_lanes = len(self.lanes)
        if acc.shape[0] % n_lanes:
            raise ValueError(
                f"packed accumulator batch {acc.shape[0]} does not split "
                f"into {n_lanes} lanes"
            )
        rows = acc.shape[0] // n_lanes
        out = np.array(acc, dtype=np.int64)
        for j, lane in enumerate(self.lanes):
            if lane is None:
                continue
            lane.corrupt_into(out, slice(j * rows, (j + 1) * rows), site)
        return out
