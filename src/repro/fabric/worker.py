"""Fabric worker: lease-pull execution loop for ``campaign worker``.

A worker is deliberately dumb: register, pull a lease, run the pack with
the exact :func:`~repro.campaigns.executor._run_pack_payload` the local
pools use, deliver all outcomes in one message, repeat. Every robustness
behavior is mechanical:

- **Reconnect with capped exponential backoff + deterministic jitter** —
  any transport failure (broker down, connection reset, chaos drop) retries
  the same logical message with an incremented attempt counter; the jitter
  is a pure hash of (site, attempt), so reruns schedule identically.
- **At-least-once delivery** — a result is retried until *some* ack
  arrives; the broker's lease table makes redelivery idempotent, so the
  worker never has to know whether a lost connection happened before or
  after the broker processed the message.
- **Heartbeats from a daemon thread** — the GIL is released inside the
  numpy-heavy pack execution, so liveness pings keep flowing mid-pack; a
  missed ping is harmless (the broker tolerates ``heartbeat_ttl_s``).
- **Graceful drain on SIGTERM** — finish the leased pack, deliver it,
  refuse new leases, exit 0. A second SIGTERM (or SIGKILL) abandons the
  pack; the broker's sweep requeues it.

Network chaos (``net_drop``/``net_dup``/``net_delay``/``net_disconnect``)
is applied *in the transport*, per (message kind, site), exactly where a
real network would bite — see :func:`repro.campaigns.chaos.maybe_net_fault`.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import socket
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Optional

from repro.campaigns import chaos as chaos_mod
from repro.campaigns.spec import Trial
from repro.fabric import protocol
from repro.telemetry import METRICS
from repro.utils.logging import get_logger

logger = get_logger("fabric.worker")

__all__ = ["BrokerTransport", "FabricWorker", "TransportError", "WorkerConfig"]


class TransportError(RuntimeError):
    """The message did not complete a request/reply round trip."""


def backoff_delay(attempt: int, site: str, base_s: float, cap_s: float) -> float:
    """Capped exponential backoff with deterministic jitter (1-based)."""
    if attempt <= 0:
        return 0.0
    base = min(base_s * 2 ** (attempt - 1), cap_s)
    digest = hashlib.sha256(f"{site}:{attempt}".encode()).digest()
    jitter = int.from_bytes(digest[:4], "big") / 2**32  # [0, 1)
    return base * (1.0 + jitter)


class BrokerTransport:
    """One-request-per-message HTTP client with chaos fault points.

    Fault semantics mirror real networks: ``drop`` fails before the bytes
    leave, ``disconnect`` sends but loses the reply (the broker *did*
    process the message — the retry that follows produces a duplicate,
    which is exactly the case idempotent ingest must absorb), ``dup`` sends
    the same message twice, ``delay`` sleeps before sending.
    """

    def __init__(self, url: str, timeout_s: float = 10.0):
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    def send(self, msg: protocol.Message, site: str = "", attempt: int = 0) -> protocol.Message:
        fault = chaos_mod.maybe_net_fault(msg.KIND, site, attempt)
        if fault is not None:
            METRICS.counter(f"fabric.net_{fault}").inc(1)
        if fault == "drop":
            raise TransportError(f"chaos: dropped {msg.KIND} to {self.url}")
        if fault == "delay":
            spec = chaos_mod.active()
            time.sleep(spec.net_delay_s if spec is not None else 0.2)
        data = json.dumps(protocol.encode(msg)).encode()
        reply = self._post(data)
        if fault == "dup":
            try:
                self._post(data)  # the duplicated delivery; its reply is moot
            except TransportError:
                pass
        if fault == "disconnect":
            raise TransportError(f"chaos: connection lost awaiting reply to {msg.KIND}")
        return reply

    def _post(self, data: bytes) -> protocol.Message:
        request = urllib.request.Request(
            self.url + "/api/v1/message",
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            # 4xx means the broker rejected the message as malformed — a
            # client bug, not a network condition. Crash loudly.
            detail = exc.read().decode(errors="replace")[:500]
            raise protocol.ProtocolError(f"broker rejected message ({exc.code}): {detail}")
        except (urllib.error.URLError, socket.timeout, ConnectionError, OSError) as exc:
            raise TransportError(f"{type(exc).__name__}: {exc}") from None
        try:
            return protocol.decode(json.loads(body.decode()))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TransportError(f"unparseable broker reply: {exc}") from None


@dataclass
class WorkerConfig:
    url: str
    worker_id: str = ""
    heartbeat_s: float = 2.0  # replaced by the broker's Registered reply
    max_idle_s: Optional[float] = None  # exit after this long with no work
    backoff_base_s: float = 0.2
    backoff_cap_s: float = 5.0
    request_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if not self.worker_id:
            self.worker_id = f"w-{socket.gethostname()}-{os.getpid()}"


class FabricWorker:
    """The ``campaign worker --connect URL`` process."""

    def __init__(self, config: WorkerConfig, transport: Optional[BrokerTransport] = None):
        self.config = config
        self.transport = transport or BrokerTransport(
            config.url, timeout_s=config.request_timeout_s
        )
        self.heartbeat_s = config.heartbeat_s
        self._drain = threading.Event()
        self._hb_stop = threading.Event()
        self._lease_lock = threading.Lock()
        self._held_lease: Optional[str] = None
        self._seq = 0
        # Worker-fatal chaos (kill/hang) is gated on WORKER_INDEX; a fabric
        # worker is supervised by the broker's lease sweep, so it opts in.
        chaos_mod.WORKER_INDEX = os.getpid() & 0x7FFF

    # ------------------------------------------------------------- signals
    def install_signal_handlers(self) -> None:
        signal.signal(signal.SIGTERM, self._on_sigterm)

    def _on_sigterm(self, _signum, _frame) -> None:
        if self._drain.is_set():
            # Second SIGTERM: the operator means it. The broker requeues.
            logger.warning("second SIGTERM: abandoning leased pack and exiting")
            raise SystemExit(1)
        logger.warning("SIGTERM: draining (finishing leased pack, refusing new leases)")
        self._drain.set()

    # ----------------------------------------------------------- transport
    def _send_reliably(
        self, msg: protocol.Message, site: str, must_deliver: bool = False
    ) -> Optional[protocol.Message]:
        """Retry a message until a reply arrives.

        When draining and not ``must_deliver``, gives up after a few
        attempts so shutdown is not hostage to a dead broker; a result
        delivery (``must_deliver``) keeps trying much longer — completed
        work is the one thing worth waiting for.
        """
        attempt = 0
        while True:
            try:
                return self.transport.send(msg, site=site, attempt=attempt)
            except TransportError as exc:
                attempt += 1
                METRICS.counter("fabric.worker_reconnects").inc(1)
                limit = 50 if must_deliver else (3 if self._drain.is_set() else 10_000)
                if attempt > limit:
                    logger.warning("giving up on %s after %d attempts: %s", msg.KIND, attempt, exc)
                    return None
                delay = backoff_delay(
                    attempt, site, self.config.backoff_base_s, self.config.backoff_cap_s
                )
                logger.warning(
                    "send %s failed (%s); retry %d in %.2fs", msg.KIND, exc, attempt, delay
                )
                time.sleep(delay)

    # ----------------------------------------------------------- heartbeat
    def _heartbeat_loop(self) -> None:
        worker_id = self.config.worker_id
        n = 0
        while not self._hb_stop.wait(self.heartbeat_s):
            with self._lease_lock:
                held = (self._held_lease,) if self._held_lease else ()
            n += 1
            try:
                reply = self.transport.send(
                    protocol.Heartbeat(worker_id=worker_id, lease_ids=held),
                    site=f"hb:{n}",
                )
            except (TransportError, protocol.ProtocolError):
                continue  # a lost ping is what heartbeat_ttl_s is for
            if isinstance(reply, protocol.HeartbeatAck):
                if held and not reply.known:
                    logger.warning("broker no longer recognizes lease %s", held[0])
                if reply.drain:
                    self._drain.set()

    # ---------------------------------------------------------------- main
    def run(self) -> int:
        cfg = self.config
        reply = self._send_reliably(
            protocol.Register(
                worker_id=cfg.worker_id, host=socket.gethostname(), pid=os.getpid()
            ),
            site="register",
        )
        if not isinstance(reply, protocol.Registered):
            logger.warning("never registered with %s; exiting", cfg.url)
            return 1
        if not reply.ok:
            logger.warning("broker refused registration: %s", reply.reason)
            return 2
        self.heartbeat_s = reply.heartbeat_s or cfg.heartbeat_s
        logger.info(
            "registered with %s as %s (heartbeat %.1fs)", cfg.url, cfg.worker_id, self.heartbeat_s
        )
        hb_thread = threading.Thread(target=self._heartbeat_loop, daemon=True)
        hb_thread.start()
        idle_since = time.monotonic()
        try:
            while not self._drain.is_set():
                if (
                    cfg.max_idle_s is not None
                    and time.monotonic() - idle_since > cfg.max_idle_s
                ):
                    logger.info("idle for %.1fs; exiting", cfg.max_idle_s)
                    break
                self._seq += 1
                reply = self._send_reliably(
                    protocol.LeaseRequest(worker_id=cfg.worker_id), site=f"lease:{self._seq}"
                )
                if reply is None:
                    break
                if isinstance(reply, protocol.NoWork):
                    if reply.drain:
                        logger.info("broker draining; exiting")
                        break
                    time.sleep(min(max(reply.retry_after_s, 0.05), 5.0))
                    continue
                if not isinstance(reply, protocol.LeaseGrant):
                    logger.warning("unexpected reply to lease request: %s", reply.KIND)
                    continue
                self._run_lease(reply)
                idle_since = time.monotonic()
        finally:
            self._hb_stop.set()
            hb_thread.join(timeout=self.heartbeat_s + 1.0)
        logger.info("worker %s exiting", cfg.worker_id)
        return 0

    def _run_lease(self, grant: protocol.LeaseGrant) -> None:
        from repro.campaigns.executor import _run_pack_payload

        with self._lease_lock:
            self._held_lease = grant.lease_id
        pack = dict(grant.pack)
        n_trials = len(pack.get("trials", []))
        logger.info("lease %s: %d trial(s)", grant.lease_id, n_trials)
        started = time.monotonic()
        try:
            outcomes = _run_pack_payload(pack)
        finally:
            with self._lease_lock:
                self._held_lease = None
        METRICS.counter("fabric.worker_packs_run").inc(1)
        ack = self._send_reliably(
            protocol.ResultDelivery(
                worker_id=self.config.worker_id,
                lease_id=grant.lease_id,
                outcomes=tuple(outcomes),
            ),
            site=_result_site(pack),
            must_deliver=True,
        )
        if ack is None:
            logger.warning("result of lease %s never delivered", grant.lease_id)
            return
        if isinstance(ack, protocol.ResultAck):
            if not ack.accepted:
                kind = "duplicate" if ack.duplicate else "stale"
                logger.info("lease %s delivery judged %s by broker", grant.lease_id, kind)
            for raw in ack.quarantined:
                try:
                    notice = protocol.decode(raw)
                except protocol.ProtocolError:
                    continue
                logger.warning(
                    "broker quarantined trial %s (%s) after %d attempts: %s",
                    notice.key, notice.cell, notice.attempts, notice.error,
                )
        logger.info(
            "lease %s done in %.2fs (%d outcomes)",
            grant.lease_id, time.monotonic() - started, n_trials,
        )


def _result_site(pack: dict) -> str:
    """Chaos site for a pack's result delivery: content key + pack attempt.

    Content-derived, so tests can predict which deliveries fault without
    running anything; attempt-qualified, so a requeued pack's delivery is a
    fresh site (its first attempt may fault again — and the requeue
    machinery must absorb that too).
    """
    trials = pack.get("trials") or [{}]
    try:
        key = Trial.from_dict({k: v for k, v in trials[0].items() if k != "attempt"}).key
    except Exception:
        key = "unknown"
    return f"{key}:{pack.get('pack_attempt', 0)}"
