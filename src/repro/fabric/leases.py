"""Journaled lease table: the broker's source of truth for in-flight packs.

A *pack* is one lane-pack payload submitted by ``run_campaign``; a *lease*
is one grant of that pack to a worker. The table enforces the fabric's
robustness contract:

- **Heartbeat-backed deadlines.** A lease dies two ways: no heartbeat for
  ``heartbeat_ttl_s`` (the worker is presumed gone — a *steal*) or the
  absolute execution deadline passes (the worker is presumed wedged — an
  *expiry*). Either way the pack requeues with its ``pack_attempt`` bumped,
  reusing the supervised pool's ``max_requeues`` budget: infrastructure
  noise is never a trial's fault, so an exhausted budget fails the pack
  (``lost``) instead of quarantining its trials.
- **Idempotent delivery classification.** Every result delivery resolves to
  exactly one verdict: ``accept`` (current lease), ``late`` (a stale lease
  whose pack is still outstanding — the late winner's outcomes are kept and
  the rival grant voided), ``duplicate`` (pack already finished — dropped),
  or ``unknown`` (never ours — dropped). Whatever the interleaving of
  steals, requeues and duplicated messages, a pack completes exactly once.
- **Crash-resume.** Every transition appends to ``leases.jsonl`` next to
  the ResultStore. A restarted broker replays the journal to learn (a) the
  requeue budget already burned per pack signature, (b) which lease ids
  from earlier epochs are stale, and (c) which signatures already finished
  — so late deliveries from before the crash are still classified correctly
  and completed work is never re-executed (the ResultStore's content-keyed
  dedup makes the trials themselves free to skip).

All verdicts/transitions increment ``fabric.*`` telemetry counters so the
acceptance test can assert that every steal, requeue and duplicate-drop was
observed, not just survived.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional

from repro.campaigns.spec import Trial
from repro.telemetry import METRICS

__all__ = ["Lease", "LeaseJournal", "LeaseTable", "Pack", "pack_signature"]

JOURNAL_NAME = "leases.jsonl"


def pack_signature(payload: dict) -> str:
    """Stable content key of a pack payload.

    Hashes the sorted ``(trial key, attempt)`` pairs so the same pack
    submitted before and after a broker restart maps to the same signature,
    while a retry pack (same trial, higher attempt) maps to a fresh one.
    """
    parts = []
    for td in payload.get("trials", []):
        key = td.get("key") or Trial.from_dict(td).key
        parts.append(f"{key}@{td.get('attempt', 0)}")
    digest = hashlib.sha256("|".join(sorted(parts)).encode()).hexdigest()
    return digest[:16]


@dataclass
class Lease:
    """One grant of a pack to a worker."""

    lease_id: str
    worker_id: str
    granted_at: float
    last_heartbeat: float
    local: bool = False


@dataclass
class Pack:
    """One submitted pack payload and its lease lifecycle."""

    job_id: int
    payload: dict
    deadline_s: float
    sig: str
    eligible_at: float = 0.0
    requeues: int = 0
    lease: Optional[Lease] = None
    done: bool = False
    lost: bool = False
    reasons: list = field(default_factory=list)


class LeaseJournal:
    """Append-only JSONL journal of lease transitions, replayable on boot."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self.epoch = 1
        self._carried: dict[str, int] = {}
        # Stale lease id -> (sig, grantee worker id): sig matches late
        # deliveries, the worker id rejects imposters reusing a lease id.
        self._stale: dict[str, tuple[str, str]] = {}
        self._finished: set[str] = set()
        self._replay()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._write({"e": "open", "epoch": self.epoch, "t": time.time()})

    def _replay(self) -> None:
        if not self.path.exists():
            return
        # lease_id -> (sig, worker), grants not yet resolved
        granted: dict[str, tuple[str, str]] = {}
        for record in self._read_lines():
            event = record.get("e")
            if event == "open":
                self.epoch = max(self.epoch, int(record.get("epoch", 0)) + 1)
            elif event == "grant":
                granted[record["lease"]] = (record["sig"], record.get("worker", ""))
                self._carried[record["sig"]] = int(record.get("requeues", 0))
            elif event == "requeue":
                prior = granted.pop(record["lease"], None)
                self._stale[record["lease"]] = (
                    record["sig"], prior[1] if prior else ""
                )
                self._carried[record["sig"]] = int(record.get("requeues", 0))
            elif event == "complete":
                self._stale.pop(record["lease"], None)
                granted.pop(record["lease"], None)
                self._finished.add(record["sig"])
                self._carried.pop(record["sig"], None)
            elif event == "lost":
                self._finished.add(record["sig"])
                self._carried.pop(record["sig"], None)
        # Grants left unresolved by a crash are stale in the new epoch.
        self._stale.update(granted)

    def _read_lines(self) -> Iterator[dict]:
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail write from a crash; ignore
                if isinstance(record, dict):
                    yield record

    def _write(self, record: dict) -> None:
        try:
            self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._handle.flush()
        except ValueError:  # closed during shutdown; transition is moot
            pass

    # Replayed state consumed by the table -------------------------------
    def carried_requeues(self, sig: str) -> int:
        return self._carried.pop(sig, 0)

    @property
    def stale_leases(self) -> dict[str, tuple[str, str]]:
        return self._stale

    @property
    def finished_sigs(self) -> set[str]:
        return self._finished

    # Live transitions ---------------------------------------------------
    def grant(self, lease_id: str, sig: str, worker_id: str, requeues: int) -> None:
        self._write(
            {"e": "grant", "lease": lease_id, "sig": sig, "worker": worker_id, "requeues": requeues}
        )

    def requeue(self, lease_id: str, sig: str, requeues: int, reason: str) -> None:
        self._write(
            {"e": "requeue", "lease": lease_id, "sig": sig, "requeues": requeues, "reason": reason}
        )

    def complete(self, lease_id: str, sig: str) -> None:
        self._write({"e": "complete", "lease": lease_id, "sig": sig})

    def lost(self, sig: str) -> None:
        self._write({"e": "lost", "sig": sig})

    def close(self, clear: bool = False) -> None:
        try:
            self._handle.close()
        except OSError:  # pragma: no cover
            pass
        if clear:
            self.path.unlink(missing_ok=True)


class LeaseTable:
    """Thread-safe lease state machine shared by HTTP handlers and the
    campaign thread. All public methods take the internal lock."""

    def __init__(
        self,
        journal: LeaseJournal,
        *,
        max_requeues: int,
        heartbeat_ttl_s: float,
        backoff: Callable[[int, str], float],
        now: Callable[[], float] = time.monotonic,
    ):
        self.journal = journal
        self.max_requeues = max_requeues
        self.heartbeat_ttl_s = heartbeat_ttl_s
        self._backoff = backoff
        self._now = now
        self._lock = threading.Lock()
        self._pending: list[Pack] = []
        self._granted: dict[str, Pack] = {}
        self._by_sig: dict[str, Pack] = {}
        # Stale lease id -> (sig, grantee): steals/requeues this run plus
        # prior epochs replayed from the journal.
        self._stale: dict[str, tuple[str, str]] = dict(journal.stale_leases)
        self._finished_sigs: set[str] = set(journal.finished_sigs)
        self._seq = 0

    # ------------------------------------------------------------------
    def submit(self, job_id: int, payload: dict, deadline_s: float, delay_s: float = 0.0) -> Pack:
        sig = pack_signature(payload)
        pack = Pack(
            job_id=job_id,
            payload=dict(payload),
            deadline_s=float(deadline_s),
            sig=sig,
            eligible_at=self._now() + max(0.0, delay_s),
        )
        with self._lock:
            carried = self.journal.carried_requeues(sig)
            if carried:
                pack.requeues = carried
                pack.payload["pack_attempt"] = carried
                METRICS.counter("fabric.requeues_carried").inc(carried)
            self._pending.append(pack)
            self._by_sig[sig] = pack
            # A resubmitted pack is outstanding again; late deliveries for
            # it should match by sig rather than read as duplicates.
            self._finished_sigs.discard(sig)
        return pack

    def grant(self, worker_id: str, *, local: bool = False) -> Optional[Pack]:
        """Claim one eligible pending pack for ``worker_id``."""
        now = self._now()
        with self._lock:
            for i, pack in enumerate(self._pending):
                if pack.eligible_at <= now:
                    del self._pending[i]
                    self._seq += 1
                    lease_id = f"L{self.journal.epoch}-{self._seq}"
                    pack.lease = Lease(
                        lease_id=lease_id,
                        worker_id=worker_id,
                        granted_at=now,
                        last_heartbeat=now,
                        local=local,
                    )
                    self._granted[lease_id] = pack
                    self.journal.grant(lease_id, pack.sig, worker_id, pack.requeues)
                    METRICS.counter("fabric.leases_granted").inc(1)
                    return pack
        return None

    def heartbeat(self, worker_id: str, lease_ids) -> tuple:
        """Renew leases held by ``worker_id``; return the ids still valid."""
        now = self._now()
        known = []
        with self._lock:
            for lease_id in lease_ids:
                pack = self._granted.get(lease_id)
                if pack is not None and pack.lease and pack.lease.worker_id == worker_id:
                    pack.lease.last_heartbeat = now
                    known.append(lease_id)
        return tuple(known)

    # ------------------------------------------------------------------
    def deliver(self, lease_id: str, worker_id: str) -> tuple[str, Optional[Pack]]:
        """Classify a result delivery; returns ``(verdict, pack)``.

        Verdicts: ``accept`` — current lease, pack completes; ``late`` —
        stale lease whose pack is still outstanding, the late winner's
        outcomes complete it (any rival grant is voided); ``duplicate`` —
        pack already finished, drop; ``unknown`` — not ours, drop.
        """
        with self._lock:
            pack = self._granted.get(lease_id)
            if pack is not None and pack.lease is not None:
                if pack.lease.worker_id != worker_id:
                    METRICS.counter("fabric.unknown_results").inc(1)
                    return "unknown", None
                self._complete_locked(pack)
                METRICS.counter("fabric.results_accepted").inc(1)
                return "accept", pack
            stale = self._stale.get(lease_id)
            if stale is None:
                METRICS.counter("fabric.unknown_results").inc(1)
                return "unknown", None
            sig, grantee = stale
            if grantee and grantee != worker_id:
                METRICS.counter("fabric.unknown_results").inc(1)
                return "unknown", None
            live = self._by_sig.get(sig)
            if live is not None and not live.done:
                # Late winner: the original leaseholder finished after its
                # lease was stolen/expired. Keep its outcomes, void any
                # rival grant so the rival's delivery reads as duplicate.
                self._complete_locked(live)
                METRICS.counter("fabric.late_results_accepted").inc(1)
                return "late", live
            METRICS.counter("fabric.duplicate_results").inc(1)
            return "duplicate", None

    def _complete_locked(self, pack: Pack) -> None:
        lease = pack.lease
        if lease is not None:
            self._granted.pop(lease.lease_id, None)
            self._stale[lease.lease_id] = (pack.sig, lease.worker_id)
            self.journal.complete(lease.lease_id, pack.sig)
        else:
            self.journal.complete("-", pack.sig)
        if pack in self._pending:  # completed by a late winner while requeued
            self._pending.remove(pack)
        pack.lease = None
        pack.done = True
        self._finished_sigs.add(pack.sig)
        self._by_sig.pop(pack.sig, None)

    def complete_local(self, pack: Pack) -> None:
        """Mark a locally-executed pack finished (degrade-to-local path)."""
        with self._lock:
            if not pack.done:
                self._complete_locked(pack)

    def lose_local(self, pack: Pack) -> None:
        """Mark a locally-executed pack lost (the in-process pool burned its
        own requeue budget)."""
        with self._lock:
            if pack.done:
                return
            lease = pack.lease
            if lease is not None:
                self._granted.pop(lease.lease_id, None)
                self._stale[lease.lease_id] = (pack.sig, lease.worker_id)
                pack.lease = None
            pack.done = True
            pack.lost = True
            self._finished_sigs.add(pack.sig)
            self._by_sig.pop(pack.sig, None)
            self.journal.lost(pack.sig)
            METRICS.counter("fabric.packs_lost").inc(1)

    # ------------------------------------------------------------------
    def sweep(self) -> list[Pack]:
        """Steal heartbeat-dead leases, expire over-deadline ones.

        Requeues each swept pack (with backoff) until its ``max_requeues``
        budget is exhausted, at which point the pack is marked lost and
        returned so the runner can emit a ``PackLost`` event.
        """
        now = self._now()
        lost: list[Pack] = []
        with self._lock:
            for lease_id in list(self._granted):
                pack = self._granted[lease_id]
                lease = pack.lease
                if lease is None or lease.local:
                    continue
                reason = None
                if now - lease.granted_at > pack.deadline_s:
                    reason = "deadline expired"
                    METRICS.counter("fabric.lease_expiries").inc(1)
                elif now - lease.last_heartbeat > self.heartbeat_ttl_s:
                    reason = f"no heartbeat from {lease.worker_id}"
                    METRICS.counter("fabric.lease_steals").inc(1)
                if reason is None:
                    continue
                self._granted.pop(lease_id, None)
                self._stale[lease_id] = (pack.sig, lease.worker_id)
                pack.lease = None
                pack.reasons.append(reason)
                pack.requeues += 1
                if pack.requeues > self.max_requeues:
                    pack.done = True
                    pack.lost = True
                    self._finished_sigs.add(pack.sig)
                    self._by_sig.pop(pack.sig, None)
                    self.journal.lost(pack.sig)
                    METRICS.counter("fabric.packs_lost").inc(1)
                    lost.append(pack)
                else:
                    pack.payload["pack_attempt"] = pack.requeues
                    pack.eligible_at = now + self._backoff(pack.requeues, pack.sig)
                    self._pending.append(pack)
                    self.journal.requeue(lease_id, pack.sig, pack.requeues, reason)
                    METRICS.counter("fabric.requeues").inc(1)
        return lost

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def granted_count(self) -> int:
        with self._lock:
            return len(self._granted)

    def leases_by_worker(self) -> dict[str, list[str]]:
        with self._lock:
            held: dict[str, list[str]] = {}
            for lease_id, pack in self._granted.items():
                if pack.lease is not None:
                    held.setdefault(pack.lease.worker_id, []).append(lease_id)
            return held
