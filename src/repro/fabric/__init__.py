"""Distributed campaign fabric: control plane, worker fleet, lease table.

The campaign executor through PR 8 ran on one box: a supervised
``multiprocessing`` pool behind :func:`repro.campaigns.executor.run_campaign`.
This package generalizes the same lease/requeue/quarantine machinery across
a network boundary (DESIGN.md section 14):

- :mod:`repro.fabric.protocol` — the small versioned JSON message protocol
  (register / lease / heartbeat / result / quarantine) as typed dataclasses
  with strict schema validation, gridworks-style;
- :mod:`repro.fabric.leases` — the broker's journaled lease table:
  heartbeat-backed deadlines, requeue budgets, duplicate/late delivery
  classification, crash-resume bookkeeping;
- :mod:`repro.fabric.broker` — the asyncio HTTP/JSON control plane
  (``campaign serve``) plus :class:`FabricRunner`, the runner that plugs
  the lease table into ``run_campaign``'s existing drain loop; and
- :mod:`repro.fabric.worker` — the remote worker (``campaign worker
  --connect URL``): lease-pull execution loop, heartbeats, reconnect with
  capped exponential backoff + deterministic jitter, graceful drain on
  SIGTERM.

Robustness is the contract, proven by the network chaos harness
(:mod:`repro.campaigns.chaos` ``net_*`` faults) and the acceptance test in
``tests/test_fabric.py``: a broker + 3 workers under kills, drops,
duplicated deliveries, and one broker restart complete bit-identical to the
fault-free single-box run.
"""

from repro.fabric.broker import BrokerConfig, FabricBroker, FabricRunner
from repro.fabric.leases import LeaseJournal, LeaseTable, pack_signature
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    Heartbeat,
    HeartbeatAck,
    LeaseGrant,
    LeaseRequest,
    NoWork,
    ProtocolError,
    QuarantineNotice,
    Register,
    Registered,
    ResultAck,
    ResultDelivery,
    decode,
    encode,
)
from repro.fabric.worker import FabricWorker, WorkerConfig

__all__ = [
    "PROTOCOL_VERSION",
    "BrokerConfig",
    "FabricBroker",
    "FabricRunner",
    "FabricWorker",
    "Heartbeat",
    "HeartbeatAck",
    "LeaseGrant",
    "LeaseJournal",
    "LeaseRequest",
    "LeaseTable",
    "NoWork",
    "ProtocolError",
    "QuarantineNotice",
    "Register",
    "Registered",
    "ResultAck",
    "ResultDelivery",
    "WorkerConfig",
    "decode",
    "encode",
    "pack_signature",
]
