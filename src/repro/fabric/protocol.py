"""Versioned JSON message protocol for the campaign fabric.

Every message on the wire is one of the typed, frozen dataclasses below,
wrapped in a two-field envelope::

    {"v": 1, "kind": "lease_request", ...body fields...}

The style follows gridworks-scada's named types: each type declares its
``KIND``, round-trips losslessly through :func:`encode` / :func:`decode`,
and validation is *strict* — unknown keys, missing required fields, wrong
field types, and version mismatches all raise :class:`ProtocolError` rather
than being silently coerced. Strictness is what lets the broker treat any
malformed input as a client bug (HTTP 400) instead of corrupting lease
state, and what makes protocol evolution explicit: adding a field without a
default is a breaking change and must bump :data:`PROTOCOL_VERSION`.

Message vocabulary (see DESIGN.md section 14 for the full table):

========================  ======  =======================================
kind                      dir     purpose
========================  ======  =======================================
``register``              W -> B  announce a worker, negotiate version
``registered``            B -> W  accept/reject + heartbeat cadence
``lease_request``         W -> B  ask for one lane pack
``lease_grant``           B -> W  a pack + lease id + execution deadline
``no_work``               B -> W  nothing leasable right now (or drain)
``heartbeat``             W -> B  liveness + renewal of held lease ids
``heartbeat_ack``         B -> W  which of those leases are still valid
``result``                W -> B  all outcomes of one leased pack
``result_ack``            B -> W  accepted / duplicate + quarantine verdicts
``quarantine``            B -> W  per-trial quarantine notice (rides acks)
========================  ======  =======================================

Nested messages (quarantine notices inside a ``result_ack``) are embedded
as their own enveloped dicts so both sides validate them with the same
:func:`decode` path.
"""

from __future__ import annotations

import dataclasses
import typing
from dataclasses import dataclass

PROTOCOL_VERSION = 1

__all__ = [
    "PROTOCOL_VERSION",
    "Heartbeat",
    "HeartbeatAck",
    "LeaseGrant",
    "LeaseRequest",
    "Message",
    "NoWork",
    "ProtocolError",
    "QuarantineNotice",
    "Register",
    "Registered",
    "ResultAck",
    "ResultDelivery",
    "decode",
    "encode",
]


class ProtocolError(ValueError):
    """A message failed schema validation (unknown kind, bad field, ...)."""


_REGISTRY: dict[str, type] = {}


def _message(kind: str):
    """Class decorator: register a dataclass under its wire ``kind``."""

    def wrap(cls):
        cls.KIND = kind
        if kind in _REGISTRY:  # pragma: no cover - programming error
            raise RuntimeError(f"duplicate message kind {kind!r}")
        _REGISTRY[kind] = cls
        return cls

    return wrap


# --------------------------------------------------------------------------
# Message types
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Message:
    """Base class; concrete messages carry a ``KIND`` class attribute."""

    KIND: typing.ClassVar[str] = ""


@_message("register")
@dataclass(frozen=True)
class Register(Message):
    """Worker announces itself to the broker."""

    worker_id: str
    host: str = ""
    pid: int = 0
    protocol: int = PROTOCOL_VERSION


@_message("registered")
@dataclass(frozen=True)
class Registered(Message):
    """Broker accepts (or rejects) a registration."""

    ok: bool
    heartbeat_s: float = 2.0
    reason: str = ""


@_message("lease_request")
@dataclass(frozen=True)
class LeaseRequest(Message):
    """Worker asks for one lane pack to execute."""

    worker_id: str


@_message("lease_grant")
@dataclass(frozen=True)
class LeaseGrant(Message):
    """Broker hands out a pack under a lease.

    ``deadline_s`` is the execution budget measured from the grant; a lease
    that outlives it is swept and requeued even if heartbeats keep coming
    (same semantics as the supervised pool's per-pack deadline).
    """

    lease_id: str
    pack: dict
    deadline_s: float
    heartbeat_s: float = 2.0


@_message("no_work")
@dataclass(frozen=True)
class NoWork(Message):
    """Nothing leasable right now.

    ``drain`` asks the worker to exit once idle (broker shutting down);
    ``retry_after_s`` is a polling hint, not a contract.
    """

    drain: bool = False
    retry_after_s: float = 0.5


@_message("heartbeat")
@dataclass(frozen=True)
class Heartbeat(Message):
    """Worker liveness ping, renewing the leases it still holds."""

    worker_id: str
    lease_ids: tuple = ()


@_message("heartbeat_ack")
@dataclass(frozen=True)
class HeartbeatAck(Message):
    """Broker echoes which of the renewed leases are still valid.

    A lease id missing from ``known`` was stolen or expired; the worker may
    keep executing (its delivery will be classified duplicate/late and
    dropped idempotently) but learns not to count on it.
    """

    known: tuple = ()
    drain: bool = False


@_message("result")
@dataclass(frozen=True)
class ResultDelivery(Message):
    """All outcomes of one leased pack, delivered atomically.

    ``outcomes`` is the list produced by ``_run_pack_payload``; delivering
    the whole pack in one message means a pack is either fully ingested or
    not at all — no partial-pack reconciliation on retry.
    """

    worker_id: str
    lease_id: str
    outcomes: tuple = ()


@_message("result_ack")
@dataclass(frozen=True)
class ResultAck(Message):
    """Broker's verdict on a delivery.

    ``accepted`` means the outcomes entered the campaign event stream;
    ``duplicate`` means the pack had already completed (the delivery was
    dropped — idempotent ingest). ``quarantined`` carries zero or more
    enveloped :class:`QuarantineNotice` dicts once the broker has applied
    its retry-or-quarantine policy to errored trials in this pack.
    """

    accepted: bool
    duplicate: bool = False
    quarantined: tuple = ()


@_message("quarantine")
@dataclass(frozen=True)
class QuarantineNotice(Message):
    """Broker -> worker: a trial from this worker's pack was quarantined."""

    key: str
    cell: str = ""
    error: str = ""
    attempts: int = 0


# --------------------------------------------------------------------------
# Strict encode / decode
# --------------------------------------------------------------------------

_SCALARS = {int: (int,), float: (int, float), str: (str,), bool: (bool,), dict: (dict,)}


def _check_field(cls: type, name: str, hint, value):
    """Validate ``value`` against the type hint; return the canonical form."""
    origin = typing.get_origin(hint)
    if origin is tuple or hint is tuple:
        if not isinstance(value, (list, tuple)):
            raise ProtocolError(f"{cls.KIND}.{name}: expected a list, got {type(value).__name__}")
        args = typing.get_args(hint)
        elem = args[0] if args else None
        out = []
        for i, item in enumerate(value):
            if elem is not None and elem is not typing.Any:
                out.append(_check_field(cls, f"{name}[{i}]", elem, item))
            else:
                if not isinstance(item, (str, int, float, bool, dict)):
                    raise ProtocolError(f"{cls.KIND}.{name}[{i}]: unsupported element type")
                out.append(item)
        return tuple(out)
    allowed = _SCALARS.get(hint)
    if allowed is None:  # pragma: no cover - schema programming error
        raise ProtocolError(f"{cls.KIND}.{name}: unsupported schema type {hint!r}")
    # bool is a subclass of int; reject it where an int/float is expected.
    if isinstance(value, bool) and hint is not bool:
        raise ProtocolError(f"{cls.KIND}.{name}: expected {hint.__name__}, got bool")
    if not isinstance(value, allowed):
        raise ProtocolError(
            f"{cls.KIND}.{name}: expected {hint.__name__}, got {type(value).__name__}"
        )
    return float(value) if hint is float else value


def encode(msg: Message) -> dict:
    """Serialize a message to its enveloped JSON-ready dict."""
    if not isinstance(msg, Message) or not getattr(msg, "KIND", ""):
        raise ProtocolError(f"not a protocol message: {msg!r}")
    out: dict = {"v": PROTOCOL_VERSION, "kind": msg.KIND}
    for f in dataclasses.fields(msg):
        value = getattr(msg, f.name)
        out[f.name] = list(value) if isinstance(value, tuple) else value
    return out


def decode(payload) -> Message:
    """Parse and strictly validate an enveloped dict into a typed message."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"message must be an object, got {type(payload).__name__}")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"protocol version {version!r} != {PROTOCOL_VERSION}")
    kind = payload.get("kind")
    cls = _REGISTRY.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown message kind {kind!r}")
    hints = typing.get_type_hints(cls)
    kwargs: dict = {}
    for key, value in payload.items():
        if key in ("v", "kind"):
            continue
        if key not in hints or key == "KIND":
            raise ProtocolError(f"{kind}: unknown field {key!r}")
        kwargs[key] = _check_field(cls, key, hints[key], value)
    for f in dataclasses.fields(cls):
        if f.name not in kwargs:
            if f.default is dataclasses.MISSING and f.default_factory is dataclasses.MISSING:
                raise ProtocolError(f"{kind}: missing required field {f.name!r}")
    return cls(**kwargs)
