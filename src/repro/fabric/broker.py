"""Fabric broker: asyncio HTTP/JSON control plane + the distributed runner.

Two cooperating pieces live here:

- :class:`FabricRunner` speaks the campaign executor's runner protocol
  (``submit`` / ``next_event`` / ``outstanding`` / ``close``), so
  ``run_campaign`` drives a worker *fleet* with exactly the drain loop that
  drives the serial and supervised-pool runners — trial retries, quarantine
  taxonomy, early stopping, progress snapshots all unchanged. Internally it
  owns a journaled :class:`~repro.fabric.leases.LeaseTable` and a queue of
  events produced by the HTTP handlers. If no live worker shows up within a
  grace window it **degrades to local**: packs run on an in-process
  :class:`~repro.campaigns.supervise.SupervisedPool` so a campaign never
  hangs on an empty fleet.
- :class:`FabricBroker` is the long-running service (``campaign serve``):
  a stdlib-``asyncio`` HTTP/1.1 server (the container has no third-party
  HTTP framework, and the protocol needs nothing more) that decodes
  protocol messages, routes them to the active runner, and runs campaigns
  sequentially on a dedicated thread. The ResultStore is opened *inside*
  that thread (SQLite connections are thread-affine).

Threading model: HTTP handlers run on the asyncio thread and only touch
thread-safe state (the lease table's lock, the fleet's lock, a
``queue.Queue`` of events); the campaign thread consumes events in
``next_event``. Crash-resume: the lease journal plus the content-keyed
ResultStore reconstruct all broker state on restart — completed trials are
skipped for free, in-flight requeue budgets carry over, and deliveries for
pre-crash leases are still classified correctly (DESIGN.md section 14).
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.campaigns.chaos import ChaosSpec
from repro.campaigns.lanes import DEFAULT_MAX_LANES
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.supervise import PackDone, PackLost, SuperviseConfig
from repro.fabric import protocol
from repro.fabric.leases import JOURNAL_NAME, LeaseJournal, LeaseTable
from repro.telemetry import METRICS
from repro.utils.logging import get_logger

logger = get_logger("fabric.broker")

__all__ = ["BrokerConfig", "FabricBroker", "FabricRunner", "Fleet"]


# --------------------------------------------------------------------- fleet
@dataclass
class WorkerInfo:
    worker_id: str
    host: str = ""
    pid: int = 0
    registered_at: float = 0.0
    last_seen: float = 0.0
    packs_done: int = 0


class Fleet:
    """Thread-safe registry of known workers, keyed by worker id.

    Any message from a worker counts as liveness — a worker that survived a
    broker restart keeps sending lease requests without re-registering, and
    the fleet must not treat it as a stranger.
    """

    def __init__(self, now=time.monotonic):
        self._now = now
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerInfo] = {}

    def register(self, worker_id: str, host: str = "", pid: int = 0) -> WorkerInfo:
        now = self._now()
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None:
                info = self._workers[worker_id] = WorkerInfo(
                    worker_id=worker_id, registered_at=now
                )
            info.host = host or info.host
            info.pid = pid or info.pid
            info.last_seen = now
            return info

    def touch(self, worker_id: str) -> None:
        self.register(worker_id)

    def credit(self, worker_id: str) -> None:
        with self._lock:
            info = self._workers.get(worker_id)
            if info is not None:
                info.packs_done += 1

    def live_count(self, ttl_s: float) -> int:
        now = self._now()
        with self._lock:
            return sum(1 for w in self._workers.values() if now - w.last_seen <= ttl_s)

    def last_seen_any(self) -> Optional[float]:
        with self._lock:
            if not self._workers:
                return None
            return max(w.last_seen for w in self._workers.values())

    def snapshot(self, ttl_s: float) -> list[dict]:
        now = self._now()
        with self._lock:
            return [
                {
                    "id": w.worker_id,
                    "host": w.host,
                    "pid": w.pid,
                    "packs_done": w.packs_done,
                    "last_seen_age_s": round(now - w.last_seen, 3),
                    "live": now - w.last_seen <= ttl_s,
                }
                for w in sorted(self._workers.values(), key=lambda w: w.worker_id)
            ]


# -------------------------------------------------------------------- runner
class FabricRunner:
    """Drives a campaign's lane packs over the worker fleet.

    Plugs into ``run_campaign(runner=...)``. Events cross from the HTTP
    thread (deliveries) and the lease sweep into the campaign thread via an
    internal queue; ``outstanding`` is a simple counter (+1 per submit, -1
    per event returned), which is exact under the invariant that every
    submitted pack produces exactly one ``PackDone`` or ``PackLost``.
    """

    def __init__(
        self,
        store_dir,
        *,
        config: Optional[SuperviseConfig] = None,
        fleet: Optional[Fleet] = None,
        heartbeat_s: float = 2.0,
        heartbeat_ttl_s: Optional[float] = None,
        local_grace_s: float = 15.0,
        local_workers: int = 2,
        chaos: Optional[ChaosSpec] = None,
        now=time.monotonic,
    ) -> None:
        self.config = config or SuperviseConfig()
        self.fleet = fleet or Fleet(now=now)
        self.heartbeat_s = heartbeat_s
        self.heartbeat_ttl_s = (
            heartbeat_ttl_s if heartbeat_ttl_s is not None else 3.5 * heartbeat_s
        )
        self.local_grace_s = local_grace_s
        self.local_workers = local_workers
        self.chaos = chaos
        self._now = now
        journal = LeaseJournal(Path(store_dir) / JOURNAL_NAME)
        self.table = LeaseTable(
            journal,
            max_requeues=self.config.max_requeues,
            heartbeat_ttl_s=self.heartbeat_ttl_s,
            backoff=self.config.backoff,
            now=now,
        )
        self._events: queue.Queue = queue.Queue()
        self._count_lock = threading.Lock()
        self._outstanding = 0
        self._closed = False
        self._aborted = False
        self._draining = False
        self._started_at = now()
        self._local = None  # lazily-created _PoolRunner (degrade-to-local)
        self._local_jobs: dict[int, object] = {}  # pool job id -> Pack
        self._deliverers: dict[str, str] = {}  # trial key -> worker id
        self._notices: dict[str, list] = {}  # worker id -> queued notices
        self._next_job = 0

    # -------------------------------------------------- executor protocol
    @property
    def outstanding(self) -> int:
        with self._count_lock:
            return self._outstanding

    def submit(self, payload: dict, deadline_s: float, delay_s: float = 0.0) -> int:
        if self._closed:
            raise RuntimeError("fabric runner is closed")
        job_id = self._next_job
        self._next_job += 1
        self.table.submit(job_id, payload, deadline_s, delay_s)
        with self._count_lock:
            self._outstanding += 1
        return job_id

    def next_event(self):
        if self._closed:
            raise RuntimeError("fabric runner is closed")
        if self._aborted:
            raise RuntimeError("fabric runner aborted")
        for pack in self.table.sweep():
            reason = pack.reasons[-1] if pack.reasons else "lease lost"
            self._events.put(
                PackLost(
                    job_id=pack.job_id,
                    payload=pack.payload,
                    reason=reason,
                    requeues=pack.requeues - 1,
                )
            )
        self._maybe_go_local()
        if self._local is not None:
            self._pump_local()
        event = None
        try:
            event = self._events.get_nowait()
        except queue.Empty:
            pass
        if event is None:
            if self._local is not None and self._local.outstanding:
                # The pool's own poll interval bounds this block, which is
                # exactly the heartbeat-tick cadence the drain loop expects.
                event = self._translate_local(self._local.next_event())
            else:
                try:
                    event = self._events.get(timeout=self.config.poll_interval_s)
                except queue.Empty:
                    pass
        if event is not None:
            with self._count_lock:
                self._outstanding -= 1
        return event

    def close(self, force: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        if self._local is not None:
            self._local.close(force=force)
            self._local = None
        # A clean finish retires the journal: every pack completed, the
        # store holds the results, nothing is resumable. An abort or
        # force-close keeps it so a restarted broker can pick up the run.
        clear = not force and not self._aborted and self.outstanding == 0
        self.table.journal.close(clear=clear)

    # --------------------------------------------------- fabric specifics
    def abort(self) -> None:
        """Make the campaign thread's next ``next_event`` raise — the test
        harness's stand-in for a broker crash (journal is preserved)."""
        self._aborted = True

    def drain(self) -> None:
        """Refuse new leases (graceful broker shutdown signal)."""
        self._draining = True

    def note_quarantine(self, trial, info: dict) -> None:
        """Called by the executor's drain loop after quarantining a trial;
        queues a quarantine notice for the worker that produced the failing
        outcome, delivered on that worker's next result ack."""
        worker_id = self._deliverers.pop(trial.key, "")
        notice = protocol.encode(
            protocol.QuarantineNotice(
                key=trial.key,
                cell=trial.cell_label,
                error=str(info.get("error", ""))[:500],
                attempts=int(info.get("attempts", 0)),
            )
        )
        METRICS.counter("fabric.quarantine_notices").inc(1)
        if worker_id and worker_id != "local":
            self._notices.setdefault(worker_id, []).append(notice)

    def fleet_snapshot(self) -> dict:
        held = self.table.leases_by_worker()
        workers = self.fleet.snapshot(self.heartbeat_ttl_s)
        for info in workers:
            info["leases"] = held.get(info["id"], [])
        return {
            "workers": workers,
            "local_active": self._local is not None,
            "pending": self.table.pending_count,
            "granted": self.table.granted_count,
        }

    # ------------------------------------------------------ message handling
    def handle(self, msg: protocol.Message) -> protocol.Message:
        """Process one protocol message; called from the HTTP thread."""
        if isinstance(msg, protocol.Register):
            if msg.protocol != protocol.PROTOCOL_VERSION:
                return protocol.Registered(
                    ok=False,
                    heartbeat_s=self.heartbeat_s,
                    reason=(
                        f"protocol {msg.protocol} unsupported "
                        f"(broker speaks {protocol.PROTOCOL_VERSION})"
                    ),
                )
            self.fleet.register(msg.worker_id, msg.host, msg.pid)
            METRICS.counter("fabric.workers_registered").inc(1)
            logger.info("worker %s registered (%s pid %d)", msg.worker_id, msg.host, msg.pid)
            return protocol.Registered(ok=True, heartbeat_s=self.heartbeat_s)
        if isinstance(msg, protocol.LeaseRequest):
            self.fleet.touch(msg.worker_id)
            if self._closed or self._draining:
                return protocol.NoWork(drain=True)
            pack = self.table.grant(msg.worker_id)
            if pack is None or pack.lease is None:
                return protocol.NoWork(retry_after_s=max(0.1, self.config.poll_interval_s))
            return protocol.LeaseGrant(
                lease_id=pack.lease.lease_id,
                pack=pack.payload,
                deadline_s=pack.deadline_s,
                heartbeat_s=self.heartbeat_s,
            )
        if isinstance(msg, protocol.Heartbeat):
            self.fleet.touch(msg.worker_id)
            known = self.table.heartbeat(msg.worker_id, msg.lease_ids)
            return protocol.HeartbeatAck(
                known=known, drain=self._closed or self._draining
            )
        if isinstance(msg, protocol.ResultDelivery):
            self.fleet.touch(msg.worker_id)
            verdict, pack = self.table.deliver(msg.lease_id, msg.worker_id)
            notices = tuple(self._notices.pop(msg.worker_id, []))
            if pack is not None:
                outcomes = [dict(o) for o in msg.outcomes]
                for outcome in outcomes:
                    key = outcome.get("key")
                    if key:
                        self._deliverers[key] = msg.worker_id
                self.fleet.credit(msg.worker_id)
                self._events.put(
                    PackDone(job_id=pack.job_id, payload=pack.payload, outcomes=outcomes)
                )
                return protocol.ResultAck(accepted=True, quarantined=notices)
            logger.info(
                "dropped %s delivery of lease %s from %s",
                verdict, msg.lease_id, msg.worker_id,
            )
            return protocol.ResultAck(
                accepted=False, duplicate=verdict == "duplicate", quarantined=notices
            )
        raise protocol.ProtocolError(f"broker cannot handle message kind {msg.KIND!r}")

    # -------------------------------------------------- degrade to local
    def _maybe_go_local(self) -> None:
        if self._local is not None or self.local_workers <= 0 or self._closed:
            return
        if self.fleet.live_count(self.heartbeat_ttl_s) > 0:
            return
        last_live = self.fleet.last_seen_any()
        reference = max(self._started_at, last_live or self._started_at)
        if self._now() - reference < self.local_grace_s:
            return
        if self.table.pending_count == 0:
            return
        from repro.campaigns.executor import _PoolRunner

        logger.warning(
            "no live workers for %.1fs; degrading to in-process pool (%d workers)",
            self.local_grace_s, max(1, self.local_workers),
        )
        METRICS.counter("fabric.local_fallbacks").inc(1)
        self._local = _PoolRunner(
            max(1, self.local_workers), None, config=self.config, chaos=self.chaos
        )

    def _pump_local(self) -> None:
        while True:
            pack = self.table.grant("local", local=True)
            if pack is None:
                break
            pool_job = self._local.submit(pack.payload, pack.deadline_s)
            self._local_jobs[pool_job] = pack

    def _translate_local(self, raw):
        if raw is None:
            return None
        pack = self._local_jobs.pop(raw.job_id, None)
        if pack is None:  # pragma: no cover - pool invented a job?
            return None
        if isinstance(raw, PackDone):
            self.table.complete_local(pack)
            for outcome in raw.outcomes:
                key = outcome.get("key")
                if key:
                    self._deliverers[key] = "local"
            return PackDone(job_id=pack.job_id, payload=raw.payload, outcomes=raw.outcomes)
        self.table.lose_local(pack)
        return PackLost(
            job_id=pack.job_id, payload=raw.payload, reason=raw.reason, requeues=raw.requeues
        )


# -------------------------------------------------------------------- broker
@dataclass
class BrokerConfig:
    """Service-level knobs of ``campaign serve``."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; read it back from ``broker.url``
    heartbeat_s: float = 2.0
    heartbeat_ttl_s: Optional[float] = None  # default 3.5 x heartbeat_s
    local_grace_s: float = 15.0
    local_workers: int = 2
    lane_width: int = DEFAULT_MAX_LANES


class FabricBroker:
    """The ``campaign serve`` service: HTTP control plane + campaign thread.

    Lifecycle: ``start()`` binds the server and spins up both threads;
    ``submit(spec)`` queues a campaign; ``wait(name)`` blocks for its
    report; ``stop()`` shuts down (``abort=True`` simulates a crash — the
    active campaign's lease journal survives for the next broker).
    """

    def __init__(
        self,
        store_dir,
        config: Optional[BrokerConfig] = None,
        supervise: Optional[SuperviseConfig] = None,
        chaos: Optional[ChaosSpec] = None,
    ) -> None:
        self.store_dir = Path(store_dir)
        self.config = config or BrokerConfig()
        self.supervise = supervise or SuperviseConfig()
        self.chaos = chaos
        self.fleet = Fleet()
        self._runner: Optional[FabricRunner] = None
        self._jobs: queue.Queue = queue.Queue()
        self._reports: dict[str, object] = {}
        self._done: dict[str, threading.Event] = {}
        self._active_campaign: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._port: Optional[int] = None
        self._start_error: Optional[BaseException] = None
        self._ready = threading.Event()
        self._stopping = False
        self._http_thread: Optional[threading.Thread] = None
        self._campaign_thread: Optional[threading.Thread] = None

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "FabricBroker":
        self._http_thread = threading.Thread(
            target=self._http_main, name="fabric-http", daemon=True
        )
        self._http_thread.start()
        if not self._ready.wait(timeout=15.0):
            raise RuntimeError("fabric broker did not come up within 15s")
        if self._start_error is not None:
            raise RuntimeError(f"fabric broker failed to bind: {self._start_error!r}")
        self._campaign_thread = threading.Thread(
            target=self._campaign_main, name="fabric-campaigns", daemon=True
        )
        self._campaign_thread.start()
        logger.info("fabric broker listening on %s (store %s)", self.url, self.store_dir)
        return self

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self._port}"

    def submit(
        self,
        spec: CampaignSpec,
        *,
        lane_width: Optional[int] = None,
    ) -> str:
        """Queue a campaign; returns its name (the handle for ``wait``)."""
        self._done.setdefault(spec.name, threading.Event())
        self._jobs.put((spec, lane_width or self.config.lane_width))
        return spec.name

    def wait(self, name: str, timeout: Optional[float] = None):
        """Block until campaign ``name`` finishes; return its RunReport.

        Re-raises the campaign's exception if it failed (including the
        RuntimeError an aborted runner produces)."""
        event = self._done.get(name)
        if event is None:
            raise KeyError(f"unknown campaign {name!r}")
        if not event.wait(timeout=timeout):
            raise TimeoutError(f"campaign {name!r} still running after {timeout}s")
        report = self._reports[name]
        if isinstance(report, BaseException):
            raise report
        return report

    def stop(self, abort: bool = False, timeout: float = 30.0) -> None:
        self._stopping = True
        runner = self._runner
        if runner is not None:
            if abort:
                runner.abort()
            else:
                runner.drain()
        self._jobs.put(None)
        if self._campaign_thread is not None:
            self._campaign_thread.join(timeout=timeout)
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._http_thread is not None:
            self._http_thread.join(timeout=timeout)

    # ------------------------------------------------------ campaign thread
    def _campaign_main(self) -> None:
        from repro.campaigns.executor import run_campaign
        from repro.campaigns.store import ResultStore

        while True:
            job = self._jobs.get()
            if job is None:
                break
            spec, lane_width = job
            self._active_campaign = spec.name
            try:
                store = ResultStore(self.store_dir)
                try:
                    cfg = self.config
                    runner = FabricRunner(
                        self.store_dir,
                        config=self.supervise,
                        fleet=self.fleet,
                        heartbeat_s=cfg.heartbeat_s,
                        heartbeat_ttl_s=cfg.heartbeat_ttl_s,
                        local_grace_s=cfg.local_grace_s,
                        local_workers=cfg.local_workers,
                        chaos=self.chaos,
                    )
                    self._runner = runner
                    report = run_campaign(
                        spec,
                        store,
                        runner=runner,
                        lane_width=lane_width,
                        supervise=self.supervise,
                        chaos=self.chaos,
                    )
                    self._reports[spec.name] = report
                    logger.info("campaign %s finished: %s", spec.name, report.summary())
                finally:
                    self._runner = None
                    store.close()
            except BaseException as exc:  # kept: surfaced via wait()
                logger.warning("campaign %s died: %r", spec.name, exc)
                self._reports[spec.name] = exc
            finally:
                self._active_campaign = None
                self._done.setdefault(spec.name, threading.Event()).set()

    # ---------------------------------------------------------- HTTP thread
    def _http_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle_conn, self.config.host, self.config.port)
            )
        except OSError as exc:
            self._start_error = exc
            self._ready.set()
            loop.close()
            return
        self._port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    async def _handle_conn(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, path, _version = request_line.decode("latin-1").split()
                except ValueError:
                    break
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or 0)
                body = await reader.readexactly(length) if length else b""
                status, payload = self._route(method, path, body)
                data = json.dumps(payload).encode()
                reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(status, "OK")
                writer.write(
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: keep-alive\r\n\r\n".encode("latin-1")
                    + data
                )
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.CancelledError):
            pass
        except Exception:  # pragma: no cover - never kill the server loop
            logger.exception("connection handler failed")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # --------------------------------------------------------------- routes
    def _route(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        path = path.split("?", 1)[0]
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True}
        if method == "GET" and path == "/api/v1/status":
            return 200, self._status()
        if method == "POST" and path == "/api/v1/message":
            try:
                msg = protocol.decode(json.loads(body.decode() or "{}"))
            except (json.JSONDecodeError, UnicodeDecodeError, protocol.ProtocolError) as exc:
                return 400, {"error": str(exc)}
            try:
                reply = self._dispatch(msg)
            except protocol.ProtocolError as exc:
                return 400, {"error": str(exc)}
            return 200, protocol.encode(reply)
        if method == "POST" and path == "/api/v1/campaigns":
            try:
                payload = json.loads(body.decode() or "{}")
                spec = CampaignSpec.from_dict(payload["spec"])
                spec.validate()
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError, ValueError) as exc:
                return 400, {"error": f"bad campaign submission: {exc}"}
            name = self.submit(spec, lane_width=payload.get("lane_width"))
            return 200, {"name": name, "store": str(self.store_dir)}
        return 404, {"error": f"no route for {method} {path}"}

    def _dispatch(self, msg: protocol.Message) -> protocol.Message:
        runner = self._runner
        if runner is not None:
            return runner.handle(msg)
        # Between campaigns (or before the first) the broker still answers:
        # workers idle-poll until a campaign starts.
        cfg = self.config
        if isinstance(msg, protocol.Register):
            if msg.protocol != protocol.PROTOCOL_VERSION:
                return protocol.Registered(
                    ok=False,
                    heartbeat_s=cfg.heartbeat_s,
                    reason=f"protocol {msg.protocol} unsupported",
                )
            self.fleet.register(msg.worker_id, msg.host, msg.pid)
            return protocol.Registered(ok=True, heartbeat_s=cfg.heartbeat_s)
        if isinstance(msg, protocol.LeaseRequest):
            self.fleet.touch(msg.worker_id)
            return protocol.NoWork(drain=self._stopping)
        if isinstance(msg, protocol.Heartbeat):
            self.fleet.touch(msg.worker_id)
            return protocol.HeartbeatAck(known=(), drain=self._stopping)
        if isinstance(msg, protocol.ResultDelivery):
            # No active campaign can own this lease; classify as late/unknown.
            METRICS.counter("fabric.unknown_results").inc(1)
            return protocol.ResultAck(accepted=False, duplicate=False)
        raise protocol.ProtocolError(f"broker cannot handle message kind {msg.KIND!r}")

    def _status(self) -> dict:
        runner = self._runner
        ttl = self.config.heartbeat_ttl_s or 3.5 * self.config.heartbeat_s
        fleet = (
            runner.fleet_snapshot()
            if runner is not None
            else {"workers": self.fleet.snapshot(ttl), "local_active": False}
        )
        progress = None
        try:
            from repro.campaigns.progress import read_latest_progress

            progress = read_latest_progress(self.store_dir)
        except Exception:  # no store yet / no snapshot yet
            progress = None
        return {
            "store": str(self.store_dir),
            "campaign": self._active_campaign,
            "stopping": self._stopping,
            "fleet": fleet,
            "progress": progress,
        }
