"""Systolic-array substrate (paper Sec. V-B, Fig. 7).

Tile-level functional simulation of an n x n systolic array running integer
GEMMs under weight-stationary (WS) or output-stationary (OS) dataflow, with
the checksum hardware and the statistical unit attached. Provides the cycle
/ latency accounting used for recovery-cost evaluation and the
hardware-faithful Log2LinearFunction ablation.
"""

from repro.systolic.dataflow import Dataflow, WS, OS, tile_latency_cycles
from repro.systolic.tiling import (
    TileJob,
    TilingPlan,
    iter_tiles,
    plan_cycles,
    tile_counts,
    tiling_plan,
)
from repro.systolic.array import SystolicArray, GemmRunReport, SiteCost
from repro.systolic.stat_unit import Log2LinearUnit, StatisticalUnit, StatUnitReading

__all__ = [
    "Dataflow",
    "WS",
    "OS",
    "tile_latency_cycles",
    "TileJob",
    "TilingPlan",
    "iter_tiles",
    "plan_cycles",
    "tile_counts",
    "tiling_plan",
    "SystolicArray",
    "GemmRunReport",
    "SiteCost",
    "Log2LinearUnit",
    "StatisticalUnit",
    "StatUnitReading",
]
