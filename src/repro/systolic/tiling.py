"""GEMM tiling onto a fixed-size systolic array."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class TileJob:
    """One sub-GEMM: output block (rows i0:i1, cols j0:j1), reduction k0:k1."""

    i0: int
    i1: int
    j0: int
    j1: int
    k0: int
    k1: int

    @property
    def m(self) -> int:
        return self.i1 - self.i0

    @property
    def n(self) -> int:
        return self.j1 - self.j0

    @property
    def k(self) -> int:
        return self.k1 - self.k0

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k


def tile_counts(m: int, k: int, n: int, size: int) -> tuple[int, int, int]:
    """Number of tiles along each GEMM dimension for an array of ``size``."""
    return (
        math.ceil(m / size),
        math.ceil(k / size),
        math.ceil(n / size),
    )


def iter_tiles(m: int, k: int, n: int, size: int) -> Iterator[TileJob]:
    """Yield tile jobs covering an ``m x k x n`` GEMM, k-innermost order.

    The k-innermost order matches accumulate-in-place scheduling: all
    reduction tiles of one output block run back to back.
    """
    if min(m, k, n) <= 0:
        raise ValueError("GEMM dimensions must be positive")
    if size <= 0:
        raise ValueError("array size must be positive")
    for i0 in range(0, m, size):
        for j0 in range(0, n, size):
            for k0 in range(0, k, size):
                yield TileJob(
                    i0=i0,
                    i1=min(i0 + size, m),
                    j0=j0,
                    j1=min(j0 + size, n),
                    k0=k0,
                    k1=min(k0 + size, k),
                )
