"""GEMM tiling onto a fixed-size systolic array.

Besides the per-tile iterator (:func:`iter_tiles`, used by the functional
simulator when faults must be injected tile by tile), this module memoizes
**tiling plans**: for a given ``(m, k, n, size)`` the tile count, MAC count,
and total latency cycles per dataflow are closed-form sums over the tile
edge lengths, computed once and cached (:func:`tiling_plan`,
:func:`plan_cycles`). The cost instrument of the GEMM dispatch pipeline
(see DESIGN.md section 8) hits these caches on every call, so hardware cost
accounting stays off the hot path: the handful of distinct GEMM shapes a
model executes resolve to dictionary lookups after the first forward.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.systolic.dataflow import Dataflow


@dataclass(frozen=True)
class TileJob:
    """One sub-GEMM: output block (rows i0:i1, cols j0:j1), reduction k0:k1."""

    i0: int
    i1: int
    j0: int
    j1: int
    k0: int
    k1: int

    @property
    def m(self) -> int:
        return self.i1 - self.i0

    @property
    def n(self) -> int:
        return self.j1 - self.j0

    @property
    def k(self) -> int:
        return self.k1 - self.k0

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k


def tile_counts(m: int, k: int, n: int, size: int) -> tuple[int, int, int]:
    """Number of tiles along each GEMM dimension for an array of ``size``."""
    return (
        math.ceil(m / size),
        math.ceil(k / size),
        math.ceil(n / size),
    )


def _edge_sizes(dim: int, size: int) -> np.ndarray:
    """Tile edge lengths along one dimension: ``size`` repeated, then the
    remainder (if any)."""
    full, rem = divmod(dim, size)
    edges = [size] * full
    if rem:
        edges.append(rem)
    return np.asarray(edges, dtype=np.int64)


@dataclass(frozen=True)
class TilingPlan:
    """Memoized tiling of one ``m x k x n`` GEMM onto a ``size``-PE array."""

    m: int
    k: int
    n: int
    size: int
    tiles: int
    macs: int

    def cycles(self, dataflow: Dataflow, with_checksum: bool = False) -> int:
        """Total latency cycles of the plan's tile walk (memoized)."""
        return plan_cycles(self.m, self.k, self.n, self.size, dataflow, with_checksum)


@functools.lru_cache(maxsize=None)
def tiling_plan(m: int, k: int, n: int, size: int) -> TilingPlan:
    """The memoized plan for an ``m x k x n`` GEMM on a ``size`` array.

    Cached per unique shape (a model executes only a handful), so the
    dispatch pipeline's cost instrument never re-walks tiles per call.
    """
    if min(m, k, n) <= 0:
        raise ValueError("GEMM dimensions must be positive")
    if size <= 0:
        raise ValueError("array size must be positive")
    nm, nk, nn = tile_counts(m, k, n, size)
    return TilingPlan(m=m, k=k, n=n, size=size, tiles=nm * nk * nn, macs=m * k * n)


@functools.lru_cache(maxsize=None)
def plan_cycles(
    m: int, k: int, n: int, size: int, dataflow: Dataflow, with_checksum: bool = False
) -> int:
    """Total cycles of the full tile walk — the vectorized (closed-form)
    equivalent of summing :func:`~repro.systolic.dataflow.tile_latency_cycles`
    over :func:`iter_tiles`, asserted equal in ``tests/test_dispatch.py``.

    Per-tile latencies are separable sums of the tile edge lengths
    (``k_i + m_i + n_i - 1`` for WS/IS, ``+ min(m_i, n_i) - 1`` more for
    OS), so the walk collapses to products of tile counts with whole-dim
    sums plus, for OS, one outer ``min`` over the m/n edge vectors.
    """
    if min(m, k, n) <= 0:
        raise ValueError("GEMM dimensions must be positive")
    if size <= 0:
        raise ValueError("array size must be positive")
    nm, nk, nn = tile_counts(m, k, n, size)
    tiles = nm * nk * nn
    checksum = 1 if with_checksum else 0
    # sum over all tiles of (k_i + m_i + n_i): each edge sum telescopes to
    # the whole dimension, repeated once per tile of the other two axes.
    edge_total = nk * nn * m + nm * nn * k + nm * nk * n
    if dataflow is Dataflow.OS:
        drain = int(
            np.minimum.outer(_edge_sizes(m, size), _edge_sizes(n, size)).sum()
        ) * nk
        return edge_total + tiles * (checksum - 2) + drain
    return edge_total + tiles * (checksum - 1)


def iter_tiles(m: int, k: int, n: int, size: int) -> Iterator[TileJob]:
    """Yield tile jobs covering an ``m x k x n`` GEMM, k-innermost order.

    The k-innermost order matches accumulate-in-place scheduling: all
    reduction tiles of one output block run back to back.
    """
    if min(m, k, n) <= 0:
        raise ValueError("GEMM dimensions must be positive")
    if size <= 0:
        raise ValueError("array size must be positive")
    for i0 in range(0, m, size):
        for j0 in range(0, n, size):
            for k0 in range(0, k, size):
                yield TileJob(
                    i0=i0,
                    i1=min(i0 + size, m),
                    j0=j0,
                    j1=min(j0 + size, n),
                    k0=k0,
                    k1=min(k0 + size, k),
                )
