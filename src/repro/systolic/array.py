"""Tile-level functional simulation of the ABFT-protected systolic array.

:class:`SystolicArray` executes integer GEMMs tile by tile, injecting
transient faults per tile, evaluating the attached protection scheme on the
tile's checksum report, and re-running faulty tiles at nominal voltage when
recovery triggers — while accounting cycles for computation, checksum
pipeline, and recovery. This is the substrate for Fig. 7 (functional
correctness + latency overhead) and for the recovery-latency numbers in
Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.abft.checksums import checksum_report
from repro.abft.protectors import Protector
from repro.errors.injector import ErrorInjector
from repro.errors.sites import Component, GemmSite, Stage
from repro.quant.gemm import gemm_int32, wrap_int32
from repro.systolic.dataflow import Dataflow, tile_latency_cycles
from repro.systolic.tiling import iter_tiles


@dataclass
class GemmRunReport:
    """Cycle and recovery accounting for one tiled GEMM execution."""

    tiles: int = 0
    compute_cycles: int = 0
    recovery_cycles: int = 0
    recovered_tiles: int = 0
    injected_tiles: int = 0
    macs: int = 0
    recovered_macs: int = 0

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.recovery_cycles

    @property
    def recovery_overhead(self) -> float:
        """Recovery cycles as a fraction of compute cycles."""
        return self.recovery_cycles / self.compute_cycles if self.compute_cycles else 0.0

    def merge(self, other: "GemmRunReport") -> None:
        self.tiles += other.tiles
        self.compute_cycles += other.compute_cycles
        self.recovery_cycles += other.recovery_cycles
        self.recovered_tiles += other.recovered_tiles
        self.injected_tiles += other.injected_tiles
        self.macs += other.macs
        self.recovered_macs += other.recovered_macs


_DEFAULT_SITE = GemmSite(layer=0, component=Component.Q, stage=Stage.PREFILL)


class SystolicArray:
    """An ``size x size`` systolic array with optional ABFT protection.

    Parameters
    ----------
    size:
        Array dimension (the paper synthesizes 256 x 256; tests use small
        sizes — the functional behaviour is size-independent).
    dataflow:
        WS or OS; affects cycle accounting and the hardware inventory used
        by :mod:`repro.circuits`.
    """

    def __init__(self, size: int, dataflow: Dataflow = Dataflow.WS) -> None:
        if size <= 0:
            raise ValueError("array size must be positive")
        self.size = size
        self.dataflow = dataflow

    def gemm(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        injector: Optional[ErrorInjector] = None,
        protector: Optional[Protector] = None,
        site: GemmSite = _DEFAULT_SITE,
    ) -> tuple[np.ndarray, GemmRunReport]:
        """Tiled integer GEMM with per-tile injection/protection.

        Returns the int32-valued result (int64 storage) and the run report.
        Accumulation across reduction tiles uses 32-bit wraparound, matching
        the accumulator registers.
        """
        if a_q.ndim != 2 or b_q.ndim != 2 or a_q.shape[1] != b_q.shape[0]:
            raise ValueError(
                f"incompatible GEMM operands {a_q.shape} @ {b_q.shape}"
            )
        m, k = a_q.shape
        n = b_q.shape[1]
        with_checksum = protector is not None
        out = np.zeros((m, n), dtype=np.int64)
        report = GemmRunReport()
        for tile in iter_tiles(m, k, n, self.size):
            a_tile = a_q[tile.i0 : tile.i1, tile.k0 : tile.k1]
            b_tile = b_q[tile.k0 : tile.k1, tile.j0 : tile.j1]
            clean = gemm_int32(a_tile, b_tile)
            observed = clean
            if injector is not None:
                observed = injector.corrupt(clean, site)
            cycles = tile_latency_cycles(
                self.dataflow, tile.m, tile.k, tile.n, with_checksum
            )
            report.tiles += 1
            report.compute_cycles += cycles
            report.macs += tile.macs
            if np.any(observed != clean):
                report.injected_tiles += 1
            if protector is not None:
                tile_report = checksum_report(a_tile, b_tile, observed)
                if protector.inspect(tile_report, site, tile.macs):
                    observed = clean  # recompute at nominal voltage
                    report.recovered_tiles += 1
                    report.recovered_macs += tile.macs
                    report.recovery_cycles += tile_latency_cycles(
                        self.dataflow, tile.m, tile.k, tile.n, with_checksum
                    )
            block = out[tile.i0 : tile.i1, tile.j0 : tile.j1]
            out[tile.i0 : tile.i1, tile.j0 : tile.j1] = wrap_int32(block + observed)
        return out, report

    def reference_gemm(self, a_q: np.ndarray, b_q: np.ndarray) -> np.ndarray:
        """Fault-free GEMM through the same tiling path (oracle for tests)."""
        result, _ = self.gemm(a_q, b_q)
        return result
