"""Tile-level functional simulation of the ABFT-protected systolic array.

:class:`SystolicArray` executes integer GEMMs tile by tile, injecting
transient faults per tile, evaluating the attached protection scheme on the
tile's checksum report, and re-running faulty tiles at nominal voltage when
recovery triggers — while accounting cycles for computation, checksum
pipeline, and recovery. This is the substrate for Fig. 7 (functional
correctness + latency overhead) and for the recovery-latency numbers in
Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.abft.checksums import checksum_report
from repro.abft.protectors import Protector
from repro.errors.injector import ErrorInjector
from repro.errors.sites import Component, GemmSite, Stage
from repro.quant.gemm import gemm_int32, wrap_int32
from repro.systolic.dataflow import Dataflow, tile_latency_cycles
from repro.systolic.tiling import iter_tiles, tiling_plan


@dataclass
class SiteCost:
    """Cycle and recovery accounting charged to one :class:`GemmSite`."""

    tiles: int = 0
    compute_cycles: int = 0
    recovery_cycles: int = 0
    recovered_tiles: int = 0
    injected_tiles: int = 0
    macs: int = 0
    recovered_macs: int = 0

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.recovery_cycles

    @property
    def recovery_overhead(self) -> float:
        """Recovery cycles as a fraction of compute cycles."""
        return self.recovery_cycles / self.compute_cycles if self.compute_cycles else 0.0

    def merge(self, other: "SiteCost") -> None:
        self.tiles += other.tiles
        self.compute_cycles += other.compute_cycles
        self.recovery_cycles += other.recovery_cycles
        self.recovered_tiles += other.recovered_tiles
        self.injected_tiles += other.injected_tiles
        self.macs += other.macs
        self.recovered_macs += other.recovered_macs


@dataclass
class GemmRunReport(SiteCost):
    """Cycle and recovery accounting for a run of (tiled) GEMM executions.

    Totals live on the inherited :class:`SiteCost` counters; ``by_site``
    keeps the same counters **keyed by** :class:`GemmSite`, so merging
    reports from many GEMMs preserves the per-layer/per-component/per-stage
    breakdown instead of lumping every call together. All mutation goes
    through :meth:`charge` (or :meth:`merge`), which updates both views in
    lock step.
    """

    by_site: dict[GemmSite, SiteCost] = field(default_factory=dict)

    def charge(
        self,
        site: GemmSite,
        tiles: int = 0,
        compute_cycles: int = 0,
        recovery_cycles: int = 0,
        recovered_tiles: int = 0,
        injected_tiles: int = 0,
        macs: int = 0,
        recovered_macs: int = 0,
    ) -> None:
        """Charge one execution's counters to ``site`` (and the totals)."""
        delta = SiteCost(
            tiles=tiles,
            compute_cycles=compute_cycles,
            recovery_cycles=recovery_cycles,
            recovered_tiles=recovered_tiles,
            injected_tiles=injected_tiles,
            macs=macs,
            recovered_macs=recovered_macs,
        )
        SiteCost.merge(self, delta)
        cost = self.by_site.get(site)
        if cost is None:
            self.by_site[site] = delta
        else:
            cost.merge(delta)

    def merge(self, other: "GemmRunReport") -> None:
        """Aggregate ``other`` per site (not lumped): each of its
        :class:`GemmSite` entries merges into the matching entry here, so
        layerwise/component cost breakdowns survive aggregation."""
        SiteCost.merge(self, other)
        for site, cost in other.by_site.items():
            mine = self.by_site.get(site)
            if mine is None:
                self.by_site[site] = SiteCost(**vars(cost))
            else:
                mine.merge(cost)

    def component_totals(self) -> dict[str, SiteCost]:
        """Per-component aggregation of the per-site breakdown."""
        out: dict[str, SiteCost] = {}
        for site, cost in self.by_site.items():
            key = site.component.value
            agg = out.get(key)
            if agg is None:
                out[key] = SiteCost(**vars(cost))
            else:
                agg.merge(cost)
        return out


_DEFAULT_SITE = GemmSite(layer=0, component=Component.Q, stage=Stage.PREFILL)


class SystolicArray:
    """An ``size x size`` systolic array with optional ABFT protection.

    Parameters
    ----------
    size:
        Array dimension (the paper synthesizes 256 x 256; tests use small
        sizes — the functional behaviour is size-independent).
    dataflow:
        WS or OS; affects cycle accounting and the hardware inventory used
        by :mod:`repro.circuits`.
    """

    def __init__(self, size: int, dataflow: Dataflow = Dataflow.WS) -> None:
        if size <= 0:
            raise ValueError("array size must be positive")
        self.size = size
        self.dataflow = dataflow

    def gemm(
        self,
        a_q: np.ndarray,
        b_q: np.ndarray,
        injector: Optional[ErrorInjector] = None,
        protector: Optional[Protector] = None,
        site: GemmSite = _DEFAULT_SITE,
    ) -> tuple[np.ndarray, GemmRunReport]:
        """Tiled integer GEMM with per-tile injection/protection.

        Returns the int32-valued result (int64 storage) and the run report.
        Accumulation across reduction tiles uses 32-bit wraparound, matching
        the accumulator registers.
        """
        if a_q.ndim != 2 or b_q.ndim != 2 or a_q.shape[1] != b_q.shape[0]:
            raise ValueError(
                f"incompatible GEMM operands {a_q.shape} @ {b_q.shape}"
            )
        m, k = a_q.shape
        n = b_q.shape[1]
        with_checksum = protector is not None
        report = GemmRunReport()
        if injector is None and protector is None:
            # Un-instrumented run: per-tile wraparound accumulation equals
            # the monolithic wrapped GEMM (modular addition is associative),
            # and the cycle walk collapses to the memoized tiling plan — so
            # skip the Python tile loop entirely, bit-identically.
            plan = tiling_plan(m, k, n, self.size)
            report.charge(
                site,
                tiles=plan.tiles,
                compute_cycles=plan.cycles(self.dataflow, with_checksum),
                macs=plan.macs,
            )
            return gemm_int32(a_q, b_q), report
        out = np.zeros((m, n), dtype=np.int64)
        for tile in iter_tiles(m, k, n, self.size):
            a_tile = a_q[tile.i0 : tile.i1, tile.k0 : tile.k1]
            b_tile = b_q[tile.k0 : tile.k1, tile.j0 : tile.j1]
            clean = gemm_int32(a_tile, b_tile)
            observed = clean
            if injector is not None:
                observed = injector.corrupt(clean, site)
            cycles = tile_latency_cycles(
                self.dataflow, tile.m, tile.k, tile.n, with_checksum
            )
            injected = bool(np.any(observed != clean))
            recovered = False
            if protector is not None:
                tile_report = checksum_report(a_tile, b_tile, observed)
                if protector.inspect(tile_report, site, tile.macs):
                    observed = clean  # recompute at nominal voltage
                    recovered = True
            report.charge(
                site,
                tiles=1,
                compute_cycles=cycles,
                macs=tile.macs,
                injected_tiles=int(injected),
                recovered_tiles=int(recovered),
                recovered_macs=tile.macs if recovered else 0,
                recovery_cycles=cycles if recovered else 0,
            )
            block = out[tile.i0 : tile.i1, tile.j0 : tile.j1]
            out[tile.i0 : tile.i1, tile.j0 : tile.j1] = wrap_int32(block + observed)
        return out, report

    def reference_gemm(self, a_q: np.ndarray, b_q: np.ndarray) -> np.ndarray:
        """Fault-free GEMM through the same tiling path (oracle for tests)."""
        result, _ = self.gemm(a_q, b_q)
        return result
