"""Behavioral model of the paper's statistical unit (Fig. 7c).

The unit receives the two checksum streams (``e^T W X`` from the checksum
column and ``e^T Y`` from the output accumulators), subtracts them column by
column, accumulates the absolute differences into the MSD, stores each
per-column difference in one of ``n`` buffers, computes ``theta_mag``
through a **Log2LinearFunction** block, and finally counts buffered
magnitudes above the threshold with a parallel comparator bank ("countif").

The Log2LinearFunction is modeled bit-faithfully: hardware cannot afford a
real logarithm, so ``log2(MSD)`` is approximated by leading-one detection
(the integer part) plus the next ``frac_bits`` mantissa bits (a linear
interpolation between powers of two). The resulting ``theta_mag`` is a
power-of-two-times-linear-fraction value, slightly different from the exact
software threshold — the agreement between the two is covered by tests and
the Fig. 7 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Log2LinearUnit:
    """Hardware log2 approximation + the ``theta_mag`` affine map.

    Computes ``theta_mag = 2 ** clamp(b - (a - 1) * log2hw(msd), 0, 31)``
    where ``log2hw`` uses leading-one detection with ``frac_bits`` of linear
    mantissa. Coefficients are held in fixed point with ``coeff_frac_bits``
    fractional bits, as a small multiplier array would.
    """

    a: float
    b: float
    frac_bits: int = 4
    coeff_frac_bits: int = 8

    def log2_hw(self, value: int) -> float:
        """Leading-one-detector log2 with linear fractional interpolation."""
        if value <= 0:
            return 0.0
        integer = int(value).bit_length() - 1
        if integer == 0:
            return 0.0
        # Take frac_bits below the leading one; linear mantissa approximation.
        remainder = value - (1 << integer)
        frac = remainder / (1 << integer)
        quantized = np.floor(frac * (1 << self.frac_bits)) / (1 << self.frac_bits)
        return integer + quantized

    def _fixed(self, x: float) -> float:
        scale = 1 << self.coeff_frac_bits
        return np.floor(x * scale) / scale

    def theta_mag(self, msd: int) -> float:
        """Hardware-computed magnitude threshold for an observed MSD."""
        if msd <= 0:
            return 0.0
        log_msd = self.log2_hw(int(msd))
        exponent = self._fixed(self.b) - self._fixed(self.a - 1.0) * log_msd
        exponent = min(max(exponent, 0.0), 31.0)
        # Hardware realizes 2**e as a shift of the integer part and a linear
        # fraction for the remainder.
        integer = int(np.floor(exponent))
        frac = exponent - integer
        return float((1 << integer) * (1.0 + frac))


@dataclass
class StatUnitReading:
    """Outputs latched by the statistical unit after one GEMM tile."""

    msd: int
    theta_mag: float
    freq_eff: int
    buffer_overflowed: bool


class StatisticalUnit:
    """Subtractor + accumulator + Log2LinearFunction + buffers + countif.

    ``n_buffers`` bounds how many per-column differences the silicon can
    hold (one per array column in the paper's design). Wider GEMM tiles are
    processed column-stripe by column-stripe, so the model flags (rather
    than hides) any overflow.
    """

    def __init__(self, a: float, b: float, theta_freq: float, n_buffers: int) -> None:
        if n_buffers <= 0:
            raise ValueError("n_buffers must be positive")
        self.log2linear = Log2LinearUnit(a=a, b=b)
        self.theta_freq = theta_freq
        self.n_buffers = n_buffers

    def evaluate(self, diffs: np.ndarray) -> StatUnitReading:
        """Process per-column checksum differences exactly as hardware does."""
        diffs = np.asarray(diffs, dtype=np.int64)
        overflow = diffs.size > self.n_buffers
        window = np.abs(diffs[: self.n_buffers])
        msd = int(window.sum())
        thr = self.log2linear.theta_mag(msd)
        freq_eff = int(np.count_nonzero(window > thr))
        return StatUnitReading(
            msd=msd, theta_mag=thr, freq_eff=freq_eff, buffer_overflowed=overflow
        )

    def should_recover(self, diffs: np.ndarray) -> bool:
        """Recovery decision for one tile (the paper's rule)."""
        reading = self.evaluate(diffs)
        return reading.freq_eff > self.theta_freq
