"""Dataflow definitions and cycle models for the systolic array.

Latency formulas follow the standard systolic pipelines:

- **WS** (weight stationary, Fig. 7a): weights preloaded column-major
  (``k`` cycles), activations streamed row by row; the last of ``m`` input
  rows drains after crossing ``n`` columns, giving
  ``k + m + n - 1`` cycles per tile. The ABFT checksum column rides along
  the same wavefront and the bottom adder row adds one pipeline stage.
- **OS** (output stationary, Fig. 7b): operands stream in along ``k``; the
  result matrix forms in place after ``k + m + n - 2`` cycles and drains
  over ``min(m, n)`` diagonals; the extra checksum-PE row adds one stage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Dataflow(enum.Enum):
    """Systolic dataflow variants supported by the paper's design.

    The paper details WS and OS and notes the scheme "is also compatible
    with input stationary (IS) dataflow"; IS is included with the mirrored
    cycle model (inputs resident, weights streamed — symmetric to WS with
    the operand roles swapped).
    """

    WS = "weight-stationary"
    OS = "output-stationary"
    IS = "input-stationary"


#: Convenient aliases.
WS = Dataflow.WS
OS = Dataflow.OS
IS = Dataflow.IS


@dataclass(frozen=True)
class TileShape:
    """Dimensions of one GEMM tile mapped onto the array."""

    m: int
    k: int
    n: int


def tile_latency_cycles(
    dataflow: Dataflow, m: int, k: int, n: int, with_checksum: bool = False
) -> int:
    """Cycles to execute an ``m x k x n`` tile on the array.

    ``with_checksum`` accounts for the ABFT hardware: one extra pipeline
    stage for the checksum column/row (its computation is overlapped with
    the normal wavefront, so the overhead is a single drain cycle — the
    "negligible latency" claim of Sec. V-B).
    """
    if min(m, k, n) <= 0:
        raise ValueError("tile dimensions must be positive")
    if dataflow is Dataflow.WS:
        cycles = k + m + n - 1
    elif dataflow is Dataflow.IS:
        # inputs resident (k preload), weights streamed over n, outputs
        # drain across m columns — WS with operand roles mirrored
        cycles = k + n + m - 1
    else:
        cycles = k + m + n - 2 + min(m, n)
    return cycles + (1 if with_checksum else 0)
