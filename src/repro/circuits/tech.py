"""Technology constants for the parametric 14nm-style circuit model.

Component areas are representative synthesized-macro figures for a 14nm
FinFET library at the paper's operating point (0.9V nominal, 500ps clock).
Absolute values matter less than ratios: the model reproduces *relative*
overheads (Fig. 8), which is what the paper reports. Sources for the
ballpark figures: published INT8 MAC-array silicon (TPU-class PEs land at a
few hundred um^2 in 14/16nm) and standard-cell datasheets for adders,
comparators, and flip-flops.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechModel:
    """Per-block area (um^2) and power densities for one technology node.

    Power model: ``P = density * area * activity * (V / v_nominal)^2`` for
    dynamic power plus ``leakage_density * area`` for leakage; densities are
    in mW per um^2 at nominal voltage and the nominal clock.
    """

    name: str
    v_nominal: float
    clock_ps: float

    # Datapath block areas (um^2).
    mult_8x8_um2: float
    mult_16x8_um2: float
    adder_32_um2: float
    subtractor_32_um2: float
    comparator_32_um2: float
    reg_bit_um2: float
    lod_32_um2: float          # leading-one detector (log2 integer part)
    shifter_32_um2: float      # barrel shifter for 2**e reconstruction
    control_overhead: float    # fractional control/wiring markup on add-ons

    # Power densities (mW / um^2) at v_nominal.
    dynamic_density: float
    leakage_density: float

    def reg_um2(self, bits: int) -> float:
        return self.reg_bit_um2 * bits


#: Default technology: commercial-14nm-like figures (see module docstring).
TECH_14NM = TechModel(
    name="generic-14nm",
    v_nominal=0.9,
    clock_ps=500.0,
    mult_8x8_um2=300.0,
    mult_16x8_um2=840.0,
    adder_32_um2=80.0,
    subtractor_32_um2=85.0,
    comparator_32_um2=40.0,
    reg_bit_um2=2.8,
    lod_32_um2=110.0,
    shifter_32_um2=160.0,
    control_overhead=0.32,
    dynamic_density=1.1e-5,
    leakage_density=6.0e-7,
)
