"""Circuit-level models (paper Sec. VI-A/B).

Parametric 14nm-style area/power models of the systolic array and the four
protection schemes (none / classical ABFT / ApproxABFT / statistical ABFT),
plus the voltage-to-BER map calibrated to the paper's Fig. 1. Substitutes
for the Synopsys DC + commercial PDK flow; see DESIGN.md section 2.
"""

from repro.circuits.tech import TechModel, TECH_14NM
from repro.circuits.area import ProtectionScheme, array_area_um2, protection_area_um2, area_overhead
from repro.circuits.power import array_power_mw, protection_power_mw, power_overhead
from repro.circuits.voltage import VoltageBerModel
from repro.circuits.synthesis import overhead_report

__all__ = [
    "TechModel",
    "TECH_14NM",
    "ProtectionScheme",
    "array_area_um2",
    "protection_area_um2",
    "area_overhead",
    "array_power_mw",
    "protection_power_mw",
    "power_overhead",
    "VoltageBerModel",
    "overhead_report",
]
