"""Voltage-to-BER model calibrated to the paper's Fig. 1.

The paper obtains bit-error rates at reduced voltages from PrimeTime/HSPICE
timing analysis of a commercial 14nm systolic array (nominal 0.9V, 500ps
clock), showing BER rising from ~1e-8 near 0.84V to ~1e-2 near 0.60V. Timing-
slack distributions make log10(BER) approximately linear in voltage over
this window — the standard empirical model in the voltage-underscaling
literature [11], [22], [23] — so the substitute is a log-linear
interpolation through the paper's two anchor points, floored well below any
rate that matters and capped at 0.5 (a fully random bit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class VoltageBerModel:
    """Log-linear BER(V) with anchors ``(v_hi, ber_hi)`` and ``(v_lo, ber_lo)``.

    Defaults reproduce Fig. 1: 1e-8 at 0.84V, 1e-2 at 0.60V.
    """

    v_nominal: float = 0.9
    v_hi: float = 0.84
    ber_hi: float = 1e-8
    v_lo: float = 0.60
    ber_lo: float = 1e-2
    ber_floor: float = 1e-12
    ber_cap: float = 0.5

    def __post_init__(self) -> None:
        if not (self.v_lo < self.v_hi <= self.v_nominal):
            raise ValueError("require v_lo < v_hi <= v_nominal")
        if not (0 < self.ber_hi < self.ber_lo <= self.ber_cap):
            raise ValueError("require 0 < ber_hi < ber_lo <= ber_cap")

    @property
    def _slope(self) -> float:
        """Decades of BER per volt of underscaling (positive)."""
        return (np.log10(self.ber_lo) - np.log10(self.ber_hi)) / (
            self.v_hi - self.v_lo
        )

    def ber(self, voltage: float) -> float:
        """Bit error rate at an operating voltage."""
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        log_ber = np.log10(self.ber_hi) + self._slope * (self.v_hi - voltage)
        return float(np.clip(10.0**log_ber, self.ber_floor, self.ber_cap))

    def voltage_for_ber(self, ber: float) -> float:
        """Inverse map (within the unclamped region)."""
        if not self.ber_floor <= ber <= self.ber_cap:
            raise ValueError(f"ber {ber} outside model range")
        return float(self.v_hi - (np.log10(ber) - np.log10(self.ber_hi)) / self._slope)

    def energy_scale(self, voltage: float) -> float:
        """Dynamic-energy ratio vs. nominal: ``(V / v_nom)^2`` (CV^2)."""
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        return float((voltage / self.v_nominal) ** 2)
