"""Synthesis-style overhead report reproducing Fig. 8."""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.area import (
    ProtectionScheme,
    area_overhead,
    array_area_um2,
    protection_area_um2,
)
from repro.circuits.power import (
    array_power_mw,
    power_overhead,
    protection_power_mw,
)
from repro.circuits.tech import TechModel, TECH_14NM
from repro.systolic.dataflow import Dataflow


@dataclass(frozen=True)
class OverheadRow:
    """One (dataflow, scheme) entry of the Fig. 8 comparison."""

    dataflow: str
    scheme: str
    area_mm2: float
    area_overhead_pct: float
    power_mw: float
    power_overhead_pct: float


def overhead_report(
    n: int = 256, tech: TechModel = TECH_14NM
) -> list[OverheadRow]:
    """Area/power of both dataflows under all four protection schemes."""
    rows: list[OverheadRow] = []
    for dataflow in (Dataflow.WS, Dataflow.OS):
        base_area = array_area_um2(n, dataflow, tech)
        base_power = array_power_mw(n, dataflow, tech=tech)
        for scheme in ProtectionScheme:
            extra_area = protection_area_um2(n, dataflow, scheme, tech)
            extra_power = protection_power_mw(n, dataflow, scheme, tech=tech)
            rows.append(
                OverheadRow(
                    dataflow=dataflow.name,
                    scheme=scheme.value,
                    area_mm2=(base_area + extra_area) / 1e6,
                    area_overhead_pct=100.0 * area_overhead(n, dataflow, scheme, tech),
                    power_mw=base_power + extra_power,
                    power_overhead_pct=100.0 * power_overhead(n, dataflow, scheme, tech),
                )
            )
    return rows
