"""Power model for the array and protection hardware (Fig. 8b).

``P = dynamic_density * area * activity * (V / v_nom)^2 + leakage_density *
area``. Activity factors reflect real LLM inference toggle rates, in line
with the paper's PrimeTime methodology: the MAC array toggles on roughly
half the cycles (operand reuse), while the checksum path accumulates every
cycle — this is why the paper's power overhead (1.79%) slightly exceeds its
area overhead (1.42%), a relation the model reproduces.
"""

from __future__ import annotations

from repro.circuits.area import (
    ProtectionScheme,
    array_area_um2,
    protection_area_um2,
)
from repro.circuits.tech import TechModel, TECH_14NM
from repro.systolic.dataflow import Dataflow

#: Toggle-rate assumptions (fraction of cycles with switching activity).
ARRAY_ACTIVITY = 0.50
CHECKSUM_ACTIVITY = 0.68


def _power_mw(area_um2: float, activity: float, voltage: float, tech: TechModel) -> float:
    scale = (voltage / tech.v_nominal) ** 2
    dynamic = tech.dynamic_density * area_um2 * activity * scale
    leakage = tech.leakage_density * area_um2
    return dynamic + leakage


def array_power_mw(
    n: int,
    dataflow: Dataflow,
    voltage: float | None = None,
    tech: TechModel = TECH_14NM,
) -> float:
    """Power of the unprotected array at the given voltage."""
    voltage = tech.v_nominal if voltage is None else voltage
    return _power_mw(array_area_um2(n, dataflow, tech), ARRAY_ACTIVITY, voltage, tech)


def protection_power_mw(
    n: int,
    dataflow: Dataflow,
    scheme: ProtectionScheme,
    voltage: float | None = None,
    tech: TechModel = TECH_14NM,
) -> float:
    """Power of the protection add-on at the given voltage."""
    voltage = tech.v_nominal if voltage is None else voltage
    area = protection_area_um2(n, dataflow, scheme, tech)
    return _power_mw(area, CHECKSUM_ACTIVITY, voltage, tech)


def power_overhead(
    n: int,
    dataflow: Dataflow,
    scheme: ProtectionScheme,
    tech: TechModel = TECH_14NM,
) -> float:
    """Fractional power overhead vs. the unprotected array (Fig. 8b)."""
    return protection_power_mw(n, dataflow, scheme, tech=tech) / array_power_mw(
        n, dataflow, tech=tech
    )
