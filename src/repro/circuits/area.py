"""Area model of the systolic array and its protection hardware (Fig. 8a).

Hardware inventories follow the paper's architecture description (Sec. V-B):

- **WS dataflow**: the baseline PE holds an 8-bit weight register, an 8x8
  multiplier, a 32-bit accumulate adder and pipeline registers. Protection
  adds a right-hand column of ``n`` *checksum PEs* (16-bit weight register
  and a 16x8 multiplier, since ``e^T W`` exceeds 8 bits) plus a bottom row
  of ``n`` 32-bit adders accumulating ``e^T Y``.
- **OS dataflow**: the baseline PE accumulates in place; protection adds a
  left column of 32-bit adders (computing ``e^T W``) and a bottom row of
  checksum PEs with 16x8 multipliers propagating ``e^T W X``.

Scheme-specific detection back-ends:

- *classical*: a bank of ``n`` 32-bit comparators (exact per-column check).
- *approx* (ApproxABFT): one subtractor + MSD accumulator + one comparator.
- *statistical* (ours): the approx back-end plus ``n`` 32-bit buffers, an
  ``n``-wide comparator bank (countif) and the Log2LinearFunction unit —
  the "statistical unit" of Fig. 7c.
"""

from __future__ import annotations

import enum

from repro.circuits.tech import TechModel, TECH_14NM
from repro.systolic.dataflow import Dataflow


class ProtectionScheme(enum.Enum):
    """Protection variants compared in Fig. 8."""

    NONE = "no-protection"
    CLASSICAL = "classical-abft"
    APPROX = "approx-abft"
    STATISTICAL = "statistical-abft"


def pe_area_um2(tech: TechModel, dataflow: Dataflow) -> float:
    """Baseline processing element area."""
    if dataflow in (Dataflow.WS, Dataflow.IS):
        # stationary operand reg (8b) + streamed operand pipe reg (8b)
        # + psum pipe reg (32b)
        regs = tech.reg_um2(8) + tech.reg_um2(8) + tech.reg_um2(32)
    else:
        # in-place 32b accumulator + operand pipe regs (8b + 8b)
        regs = tech.reg_um2(32) + tech.reg_um2(8) + tech.reg_um2(8)
    return tech.mult_8x8_um2 + tech.adder_32_um2 + regs


def checksum_pe_area_um2(tech: TechModel) -> float:
    """Checksum PE: 16-bit weight register + 16x8 multiplier + 32b path."""
    regs = tech.reg_um2(16) + tech.reg_um2(8) + tech.reg_um2(32)
    return tech.mult_16x8_um2 + tech.adder_32_um2 + regs


def array_area_um2(n: int, dataflow: Dataflow, tech: TechModel = TECH_14NM) -> float:
    """Area of the unprotected ``n x n`` array."""
    if n <= 0:
        raise ValueError("array size must be positive")
    return n * n * pe_area_um2(tech, dataflow)


def _checksum_generation_area(n: int, dataflow: Dataflow, tech: TechModel) -> float:
    """Checksum row/column hardware common to every ABFT scheme."""
    if dataflow in (Dataflow.WS, Dataflow.IS):
        # Right column of checksum PEs + bottom row of 32b adders (+ regs).
        column = n * checksum_pe_area_um2(tech)
        row = n * (tech.adder_32_um2 + tech.reg_um2(32))
    else:
        # Left column of 32b adders (e^T W) + bottom row of checksum PEs.
        column = n * (tech.adder_32_um2 + tech.reg_um2(32))
        row = n * checksum_pe_area_um2(tech)
    return column + row


def _detector_area(n: int, scheme: ProtectionScheme, tech: TechModel) -> float:
    """Scheme-specific detection back-end."""
    if scheme is ProtectionScheme.CLASSICAL:
        return n * tech.comparator_32_um2
    msd_core = (
        tech.subtractor_32_um2
        + tech.adder_32_um2          # MSD accumulator adder
        + tech.reg_um2(40)           # MSD accumulator register
        + tech.comparator_32_um2     # final decision comparator
    )
    if scheme is ProtectionScheme.APPROX:
        return msd_core
    # STATISTICAL: buffers + countif bank + Log2LinearFunction unit.
    buffers = n * tech.reg_um2(32)
    countif = n * tech.comparator_32_um2
    log2linear = (
        tech.lod_32_um2
        + tech.shifter_32_um2
        + tech.mult_16x8_um2         # (a-1) * log2(MSD) fixed-point multiply
        + tech.adder_32_um2
        + tech.reg_um2(32)
    )
    return msd_core + buffers + countif + log2linear


def protection_area_um2(
    n: int,
    dataflow: Dataflow,
    scheme: ProtectionScheme,
    tech: TechModel = TECH_14NM,
) -> float:
    """Add-on area of one protection scheme (0 for NONE)."""
    if scheme is ProtectionScheme.NONE:
        return 0.0
    raw = _checksum_generation_area(n, dataflow, tech) + _detector_area(n, scheme, tech)
    return raw * (1.0 + tech.control_overhead)


def area_overhead(
    n: int,
    dataflow: Dataflow,
    scheme: ProtectionScheme,
    tech: TechModel = TECH_14NM,
) -> float:
    """Fractional area overhead vs. the unprotected array (Fig. 8a)."""
    return protection_area_um2(n, dataflow, scheme, tech) / array_area_um2(
        n, dataflow, tech
    )
