/* Cache-blocked int8 x int8 -> int64 GEMM with a packed-B panel layout.
 *
 * The one hot primitive of the repro engine (DESIGN.md section 13): every
 * quantized GEMM reduces int8 codes exactly.  This kernel computes the
 * mathematically exact product -- identical to a widening int64 matmul --
 * so the Python `native` backend can declare `exact = True` and share
 * clean-trace keys with the numpy-f64 oracle.
 *
 * Layout
 * ------
 * B is packed once per weight buffer into column panels of width NR.
 * The packed buffer is an opaque mirror: its layout is private to the
 * translation unit (`repro_gemm_i8_packed_bytes` sizes it, pack and
 * compute agree by construction), so the two code paths below may use
 * different layouts without any ABI impact.
 *
 * Two compute paths, selected at compile time:
 *
 * - AVX512-VNNI (`__AVX512VNNI__`): panels interleave groups of 4 k
 *   values per column so `vpdpbusd` reduces 4 products per int32 lane
 *   per instruction.  `vpdpbusd` is unsigned x signed, so A bytes are
 *   biased by +128 (XOR 0x80) and the bias is subtracted exactly via
 *   per-block column sums of B computed once at pack time:
 *   sum (a+128)*b = sum a*b + 128 * colsum(b).
 * - Portable C99: panels are plain (k x NR) row-major; the micro-kernel
 *   streams MR rows of A against one panel so each packed row is loaded
 *   and sign-extended once per MR*NR multiply-accumulates, which the
 *   compiler vectorizes as NR-wide int32 lanes.
 *
 * Exactness
 * ---------
 * Products are bounded by 128^2 = 2^14, so up to 2^31 / 2^14 = 2^17 of
 * them accumulate in int32 without overflow.  KBLOCK = 2^15 keeps a 4x
 * safety margin (biased VNNI products are < 2x larger: still > 2x
 * margin); block sums widen into int64 accumulators, which can never
 * overflow for any representable array (k < 2^49).
 *
 * Threading
 * ---------
 * No threads in here: `repro_gemm_i8_packed` takes a [row0, row1) range
 * so the caller partitions rows across its own pool (ctypes releases the
 * GIL for the duration of each call).
 *
 * Pure C99 + stdint; no Python.h, so the same translation unit serves
 * both the setup.py build_ext route and the runtime `cc` compile.
 */

#include <stdint.h>
#include <string.h>

#define REPRO_GEMM_I8_ABI 1
#define NR 16
#define MR 4
#define KBLOCK 32768

int64_t repro_gemm_i8_abi(void) { return REPRO_GEMM_I8_ABI; }

int64_t repro_gemm_i8_panel_width(void) { return NR; }

#if defined(__AVX512VNNI__) && defined(__AVX512F__)
/* ------------------------------------------------------------------ */
/* AVX512-VNNI path: vpdpbusd, 4-way k-interleaved panels.            */
/* ------------------------------------------------------------------ */
#include <immintrin.h>

#define KGROUP 4
#define GROUPS_PER_BLOCK (KBLOCK / KGROUP)

int64_t repro_gemm_i8_isa(void) { return 1; }

/* Packed mirror = byte panels [panels][groups][NR][KGROUP] followed by
 * per-block int32 column sums [panels][nblocks][NR] (for the unsigned
 * bias correction).  The byte region is a multiple of 64 bytes, so the
 * int32 region that follows it stays naturally aligned. */
int64_t repro_gemm_i8_packed_bytes(int64_t k, int64_t n) {
    int64_t panels = (n + NR - 1) / NR;
    int64_t groups = (k + KGROUP - 1) / KGROUP;
    int64_t nblocks = (k + KBLOCK - 1) / KBLOCK;
    return panels * groups * NR * KGROUP +
           panels * nblocks * NR * (int64_t)sizeof(int32_t);
}

void repro_gemm_i8_pack_b(const int8_t *restrict b, int64_t k, int64_t n,
                          int64_t ldb, int8_t *restrict packed) {
    int64_t panels = (n + NR - 1) / NR;
    int64_t groups = (k + KGROUP - 1) / KGROUP;
    int64_t nblocks = (k + KBLOCK - 1) / KBLOCK;
    int32_t *colsums = (int32_t *)(packed + panels * groups * NR * KGROUP);
    int64_t p, g, j, t;
    memset(colsums, 0, (size_t)(panels * nblocks * NR) * sizeof(int32_t));
    for (p = 0; p < panels; ++p) {
        int64_t j0 = p * NR;
        int64_t width = (n - j0) < NR ? (n - j0) : NR;
        int8_t *dst = packed + p * groups * NR * KGROUP;
        for (g = 0; g < groups; ++g) {
            int32_t *cs = colsums + (p * nblocks + (g / GROUPS_PER_BLOCK)) * NR;
            for (j = 0; j < NR; ++j) {
                for (t = 0; t < KGROUP; ++t) {
                    int64_t kk = g * KGROUP + t;
                    int8_t v = (kk < k && j < width) ? b[kk * ldb + j0 + j] : 0;
                    dst[(g * NR + j) * KGROUP + t] = v;
                    cs[j] += v;
                }
            }
        }
    }
}

/* Biased A word for k-group g of one row: 4 bytes XOR 0x80 (== +128,
 * mapping int8 onto uint8), zero-padded codes past k biasing to 0x80 --
 * harmless, since the matching packed B bytes are zero. */
static inline uint32_t biased_a_word(const int8_t *arow, int64_t g,
                                     int64_t k) {
    uint32_t w = 0;
    int64_t kk = g * KGROUP;
    if (kk + KGROUP <= k) {
        memcpy(&w, arow + kk, KGROUP);
    } else {
        memcpy(&w, arow + kk, (size_t)(k - kk));
    }
    return w ^ 0x80808080u;
}

/* MR rows x one packed panel.  acc32 lanes hold sums of biased products
 * (< 2^31 per KBLOCK, see header); each block widens into acc64 minus
 * the exact 128 * colsum(B) bias. */
static void gemm_panel_rows(const int8_t *restrict a, int64_t lda,
                            const int8_t *restrict panel,
                            const int32_t *restrict colsums, int64_t k,
                            int64_t rows, int64_t width,
                            int64_t *restrict out, int64_t ldo) {
    int64_t groups = (k + KGROUP - 1) / KGROUP;
    int64_t nblocks = (groups + GROUPS_PER_BLOCK - 1) / GROUPS_PER_BLOCK;
    int64_t acc64[MR][NR];
    int32_t lanes[MR][NR] __attribute__((aligned(64)));
    int64_t r, j, bi;
    for (r = 0; r < rows; ++r)
        for (j = 0; j < NR; ++j) acc64[r][j] = 0;
    for (bi = 0; bi < nblocks; ++bi) {
        int64_t g0 = bi * GROUPS_PER_BLOCK;
        int64_t gend = (g0 + GROUPS_PER_BLOCK) < groups
                           ? (g0 + GROUPS_PER_BLOCK)
                           : groups;
        const int32_t *cs = colsums + bi * NR;
        __m512i acc[MR];
        int64_t g;
        for (r = 0; r < MR; ++r) acc[r] = _mm512_setzero_si512();
        if (rows == MR) {
            /* Hot path: fixed trip count keeps MR accumulators in
             * registers with one panel load per k-group. */
            for (g = g0; g < gend; ++g) {
                __m512i bz = _mm512_loadu_si512(
                    (const void *)(panel + g * NR * KGROUP));
                for (r = 0; r < MR; ++r) {
                    __m512i aw = _mm512_set1_epi32(
                        (int32_t)biased_a_word(a + r * lda, g, k));
                    acc[r] = _mm512_dpbusd_epi32(acc[r], aw, bz);
                }
            }
        } else {
            for (g = g0; g < gend; ++g) {
                __m512i bz = _mm512_loadu_si512(
                    (const void *)(panel + g * NR * KGROUP));
                for (r = 0; r < rows; ++r) {
                    __m512i aw = _mm512_set1_epi32(
                        (int32_t)biased_a_word(a + r * lda, g, k));
                    acc[r] = _mm512_dpbusd_epi32(acc[r], aw, bz);
                }
            }
        }
        for (r = 0; r < rows; ++r) {
            _mm512_store_si512((void *)lanes[r], acc[r]);
            for (j = 0; j < NR; ++j)
                acc64[r][j] += (int64_t)lanes[r][j] - 128 * (int64_t)cs[j];
        }
    }
    for (r = 0; r < rows; ++r)
        for (j = 0; j < width; ++j) out[r * ldo + j] = acc64[r][j];
}

void repro_gemm_i8_packed(const int8_t *restrict a,
                          const int8_t *restrict packed, int64_t k, int64_t n,
                          int64_t lda, int64_t row0, int64_t row1,
                          int64_t *restrict out, int64_t ldo) {
    int64_t panels = (n + NR - 1) / NR;
    int64_t groups = (k + KGROUP - 1) / KGROUP;
    int64_t nblocks = (k + KBLOCK - 1) / KBLOCK;
    const int32_t *colsums =
        (const int32_t *)(packed + panels * groups * NR * KGROUP);
    int64_t i, p;
    if (k <= 0) { /* empty reduction: the product is exactly zero */
        int64_t j;
        for (i = row0; i < row1; ++i)
            for (j = 0; j < n; ++j) out[i * ldo + j] = 0;
        return;
    }
    for (i = row0; i < row1; i += MR) {
        int64_t rows = (row1 - i) < MR ? (row1 - i) : MR;
        for (p = 0; p < panels; ++p) {
            int64_t j0 = p * NR;
            int64_t width = (n - j0) < NR ? (n - j0) : NR;
            gemm_panel_rows(a + i * lda, lda,
                            packed + p * groups * NR * KGROUP,
                            colsums + p * nblocks * NR, k, rows, width,
                            out + i * ldo + j0, ldo);
        }
    }
}

#else /* !__AVX512VNNI__ */
/* ------------------------------------------------------------------ */
/* Portable C99 path: (k x NR) row-major panels, auto-vectorized.     */
/* ------------------------------------------------------------------ */

int64_t repro_gemm_i8_isa(void) { return 0; }

/* Bytes required for the packed mirror of a (k x n) B. */
int64_t repro_gemm_i8_packed_bytes(int64_t k, int64_t n) {
    int64_t panels = (n + NR - 1) / NR;
    return panels * k * NR;
}

/* Pack row-major B (k x n, leading dimension ldb) into NR-wide column
 * panels, zero-padding the tail panel so the compute kernel never needs
 * a ragged edge. */
void repro_gemm_i8_pack_b(const int8_t *restrict b, int64_t k, int64_t n,
                          int64_t ldb, int8_t *restrict packed) {
    int64_t panels = (n + NR - 1) / NR;
    int64_t p, kk, j;
    for (p = 0; p < panels; ++p) {
        int64_t j0 = p * NR;
        int64_t width = (n - j0) < NR ? (n - j0) : NR;
        int8_t *dst = packed + p * k * NR;
        for (kk = 0; kk < k; ++kk) {
            const int8_t *src = b + kk * ldb + j0;
            int8_t *row = dst + kk * NR;
            for (j = 0; j < width; ++j) row[j] = src[j];
            for (; j < NR; ++j) row[j] = 0;
        }
    }
}

/* Micro-kernel: MR rows of A against one packed (k x NR) panel.  Each
 * packed row is loaded and widened once and multiply-accumulated into MR
 * register accumulators, amortizing the panel stream across rows. */
static void gemm_panel_rows(const int8_t *restrict a, int64_t lda,
                            const int8_t *restrict panel, int64_t k,
                            int64_t rows, int64_t width,
                            int64_t *restrict out, int64_t ldo) {
    int64_t acc64[MR][NR];
    int64_t r, j, kb, kk;
    for (r = 0; r < rows; ++r)
        for (j = 0; j < NR; ++j) acc64[r][j] = 0;
    for (kb = 0; kb < k; kb += KBLOCK) {
        int64_t kend = (kb + KBLOCK) < k ? (kb + KBLOCK) : k;
        int32_t acc32[MR][NR];
        for (r = 0; r < rows; ++r)
            for (j = 0; j < NR; ++j) acc32[r][j] = 0;
        if (rows == MR) {
            /* Hot path: fixed trip count so the r loop fully unrolls into
             * MR independent accumulator vectors. */
            for (kk = kb; kk < kend; ++kk) {
                const int8_t *brow = panel + kk * NR;
                int32_t bw[NR];
                for (j = 0; j < NR; ++j) bw[j] = brow[j];
                for (r = 0; r < MR; ++r) {
                    int32_t ail = a[r * lda + kk];
                    for (j = 0; j < NR; ++j) acc32[r][j] += ail * bw[j];
                }
            }
        } else {
            for (kk = kb; kk < kend; ++kk) {
                const int8_t *brow = panel + kk * NR;
                int32_t bw[NR];
                for (j = 0; j < NR; ++j) bw[j] = brow[j];
                for (r = 0; r < rows; ++r) {
                    int32_t ail = a[r * lda + kk];
                    for (j = 0; j < NR; ++j) acc32[r][j] += ail * bw[j];
                }
            }
        }
        for (r = 0; r < rows; ++r)
            for (j = 0; j < NR; ++j) acc64[r][j] += acc32[r][j];
    }
    for (r = 0; r < rows; ++r)
        for (j = 0; j < width; ++j) out[r * ldo + j] = acc64[r][j];
}

/* out[i] = A[i] @ B for rows i in [row0, row1): A is int8 (rows x k,
 * leading dimension lda), B is the packed mirror above, out is int64
 * (rows x n, leading dimension ldo).  Exact for every int8 input. */
void repro_gemm_i8_packed(const int8_t *restrict a,
                          const int8_t *restrict packed, int64_t k, int64_t n,
                          int64_t lda, int64_t row0, int64_t row1,
                          int64_t *restrict out, int64_t ldo) {
    int64_t panels = (n + NR - 1) / NR;
    int64_t i, p;
    for (i = row0; i < row1; i += MR) {
        int64_t rows = (row1 - i) < MR ? (row1 - i) : MR;
        for (p = 0; p < panels; ++p) {
            int64_t j0 = p * NR;
            int64_t width = (n - j0) < NR ? (n - j0) : NR;
            gemm_panel_rows(a + i * lda, lda, packed + p * k * NR, k, rows,
                            width, out + i * ldo + j0, ldo);
        }
    }
}

#endif /* __AVX512VNNI__ */
