#!/usr/bin/env python
"""Guard committed benchmark baselines against throughput regressions.

Compares freshly-emitted ``BENCH_*.json`` files against the baselines
committed under ``benchmarks/results/`` and fails when a benchmark's
headline throughput metric regressed by more than ``--threshold``
(default 25%).

Only *relative* metrics (speedups, overhead percentages) are compared —
absolute trials/sec numbers depend on the machine, but a speedup is a
ratio of two runs on the *same* machine, so it transfers across hosts.
Smoke-mode payloads (``"smoke": true``) time sub-millisecond cells, so
their threshold is relaxed (``--smoke-threshold``, default 60%): in CI the
check is a tripwire for catastrophic regressions, while full benchmark
runs enforce the tight bound.

CI usage (see ``.github/workflows/ci.yml``): snapshot the committed
baselines before the smoke benchmarks overwrite ``benchmarks/results/``,
then compare::

    cp benchmarks/results/BENCH_*.json "$BASELINES/"
    ...run smoke benchmarks...
    python tools/bench_compare.py --baseline "$BASELINES" --fresh benchmarks/results
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"

#: Headline metric(s) per benchmark payload: ``name -> [(key, direction,
#: skip_smoke)]`` where direction is "higher" (speedup-like) or "lower"
#: (overhead-like). A metric missing from either payload is skipped (new
#: benchmarks gain baselines on their first committed run). ``skip_smoke``
#: exempts a metric whenever either payload is a smoke run: bench_replay's
#: smoke cells time a single sub-millisecond trial, and its own header
#: documents that smoke ratios legitimately span below 1x — a noise band
#: wider than any threshold worth failing CI over. The lanes/dispatch
#: smoke ratios come from larger cells and stay comparable under load.
METRICS: dict[str, list[tuple[str, str, bool]]] = {
    "BENCH_replay.json": [("deep_layer_speedup", "higher", True)],
    # telemetry_overhead_pct is a per-op measurement over a sub-percent
    # base value, so even small absolute wobble reads as a large relative
    # change on a smoke cell's millisecond denominator; the absolute <2%
    # cap is asserted inside bench_trial_lanes itself (smoke included),
    # and this entry guards full-run drift on top of it.
    "BENCH_lanes.json": [
        ("speedup", "higher", False),
        ("telemetry_overhead_pct", "lower", True),
        ("backend_speedup", "higher", False),
        # Steady-state weight-prepack hit rate: a drop means weight panels
        # are being re-packed per call (cache keying / invalidation bug).
        ("prepack_hit_rate", "higher", False),
    ],
    "BENCH_dispatch.json": [("overhead_pct", "lower", False)],
}


def regression(baseline: float, fresh: float, direction: str) -> float:
    """Relative worsening of ``fresh`` vs ``baseline`` (negative = improved)."""
    if baseline == 0:
        return 0.0
    if direction == "higher":
        return (baseline - fresh) / abs(baseline)
    return (fresh - baseline) / abs(baseline)


def compare_payloads(
    name: str,
    baseline: dict,
    fresh: dict,
    threshold: float,
    smoke_threshold: float,
) -> list[str]:
    """Failure messages for one benchmark's payload pair (empty = pass)."""
    smoke = bool(baseline.get("smoke") or fresh.get("smoke"))
    limit = smoke_threshold if smoke else threshold
    failures = []
    for key, direction, skip_smoke in METRICS.get(name, []):
        if key not in baseline or key not in fresh:
            continue
        if smoke and skip_smoke:
            print(f"{name}: {key} exempt in smoke runs (sub-ms noise) — skipping")
            continue
        reg = regression(float(baseline[key]), float(fresh[key]), direction)
        verdict = "FAIL" if reg > limit else "ok"
        print(
            f"{name}: {key} baseline={baseline[key]} fresh={fresh[key]} "
            f"({'+' if reg <= 0 else '-'}{abs(reg) * 100:.1f}% "
            f"{'improvement' if reg <= 0 else 'regression'}, "
            f"limit {limit * 100:.0f}%) [{verdict}]"
        )
        if reg > limit:
            failures.append(
                f"{name}: {key} regressed {reg * 100:.1f}% "
                f"({baseline[key]} -> {fresh[key]}, limit {limit * 100:.0f}%)"
            )
    return failures


def compare_dirs(
    baseline_dir: Path,
    fresh_dir: Path,
    threshold: float,
    smoke_threshold: float,
) -> list[str]:
    failures: list[str] = []
    compared = 0
    for name in sorted(METRICS):
        baseline_path = baseline_dir / name
        fresh_path = fresh_dir / name
        if not baseline_path.exists():
            print(f"{name}: no committed baseline — skipping")
            continue
        if not fresh_path.exists():
            print(f"{name}: not re-emitted by this run — skipping")
            continue
        baseline = json.loads(baseline_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        failures.extend(
            compare_payloads(name, baseline, fresh, threshold, smoke_threshold)
        )
        compared += 1
    if compared == 0:
        failures.append(
            f"no benchmark payloads compared between {baseline_dir} and "
            f"{fresh_dir} — wrong directories?"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=RESULTS_DIR,
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh", type=Path, required=True,
        help="directory holding the freshly-emitted BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="max tolerated relative regression for full runs (0.25 = 25%%)",
    )
    parser.add_argument(
        "--smoke-threshold", type=float, default=0.60,
        help="relaxed bound when either payload was a smoke run",
    )
    args = parser.parse_args(argv)
    failures = compare_dirs(
        args.baseline, args.fresh, args.threshold, args.smoke_threshold
    )
    for failure in failures:
        print(f"bench-compare: {failure}", file=sys.stderr)
    if not failures:
        print("bench-compare: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
