#!/usr/bin/env python
"""Docs-integrity check: every ``DESIGN.md`` citation must resolve.

Scans the source tree (and top-level docs) for references of the form
``DESIGN.md`` or ``DESIGN.md section N`` and fails if the file is missing or
a cited section number has no matching ``## N.`` heading. Run directly or
via ``tests/test_docs_integrity.py``; CI runs it as a dedicated step.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DESIGN = REPO_ROOT / "DESIGN.md"

#: Where citations may live.
SCAN_GLOBS = ("src/**/*.py", "benchmarks/*.py", "tests/*.py", "examples/*.py",
              "README.md", "ROADMAP.md", "CHANGES.md")

CITATION = re.compile(r"DESIGN\.md(?:\s+section\s+(\d+))?", re.IGNORECASE)
HEADING = re.compile(r"^##\s*(\d+)\.", re.MULTILINE)


def find_citations() -> list[tuple[Path, str | None]]:
    """Return (file, cited_section_or_None) pairs."""
    citations: list[tuple[Path, str | None]] = []
    for pattern in SCAN_GLOBS:
        for path in sorted(REPO_ROOT.glob(pattern)):
            if path == DESIGN:
                continue
            text = path.read_text(encoding="utf-8")
            # Citations may wrap across a line break ("DESIGN.md\nsection 1").
            for match in CITATION.finditer(re.sub(r"\s+", " ", text)):
                citations.append((path, match.group(1)))
    return citations


def check() -> list[str]:
    """Return a list of failure messages (empty when everything resolves)."""
    failures: list[str] = []
    citations = find_citations()
    if not citations:
        failures.append("no DESIGN.md citations found anywhere — scan globs broken?")
        return failures
    if not DESIGN.exists():
        cited_from = sorted({str(p.relative_to(REPO_ROOT)) for p, _ in citations})
        failures.append(f"DESIGN.md missing but cited from: {', '.join(cited_from)}")
        return failures
    sections = set(HEADING.findall(DESIGN.read_text(encoding="utf-8")))
    for path, section in citations:
        if section is not None and section not in sections:
            failures.append(
                f"{path.relative_to(REPO_ROOT)}: cites DESIGN.md section {section}, "
                f"but DESIGN.md has sections {{{', '.join(sorted(sections))}}}"
            )
    return failures


def main() -> int:
    failures = check()
    if failures:
        for failure in failures:
            print(f"docs-integrity: {failure}", file=sys.stderr)
        return 1
    n_cites = len(find_citations())
    print(f"docs-integrity: OK ({n_cites} DESIGN.md citations resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
