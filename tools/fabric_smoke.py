#!/usr/bin/env python
"""Distributed-fabric smoke: real broker + worker fleet under process faults.

CI's end-to-end proof that the ``campaign serve`` / ``campaign worker``
CLI pair survives the faults the fabric promises to absorb (DESIGN.md
section 14). The script:

1. runs the campaign serially in-process (the ground-truth store),
2. starts a broker subprocess and two worker subprocesses on localhost,
   the workers under ``REPRO_CHAOS`` network faults (message drops,
   duplicated deliveries, delays, forced disconnects),
3. SIGKILLs one worker once the first result lands (mid-campaign, so the
   broker must steal whatever lease it held and requeue the pack),
4. asserts the campaign completes with 0 failed / 0 quarantined and a
   store bit-identical to the serial run (volatile fields zeroed).

Artifacts — the broker log, both worker logs, the spec, and the progress
history — are written to ``--out`` for CI upload, so a red run is
debuggable from the workflow page alone.

Usage::

    PYTHONPATH=src python tools/fabric_smoke.py --out /tmp/fabric-smoke
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

import os  # noqa: E402  (after sys.path so `import repro` resolves below)

from repro.campaigns import ErrorSpec, SiteSpec  # noqa: E402
from repro.campaigns.executor import run_campaign  # noqa: E402
from repro.campaigns.spec import CampaignSpec  # noqa: E402
from repro.campaigns.store import ResultStore  # noqa: E402
from repro.campaigns.supervise import SuperviseConfig  # noqa: E402

#: Network faults only — worker kills come from this harness's SIGKILL, so
#: the smoke proves the *fleet* recovery path, not the in-trial chaos the
#: single-box CI job already covers. Rates are per attempt-0 message site,
#: pure-hash deterministic (see campaigns/chaos.py).
NET_CHAOS = (
    "seed=11,drop=0.25,dup=0.25,delay=0.25,disconnect=0.25,net_delay_s=0.05"
)


def _spec() -> CampaignSpec:
    return CampaignSpec(
        name="fabric-smoke",
        models=("opt-mini",),
        sites=(SiteSpec.only(components=["K"], stages=["prefill"]),),
        errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
        seeds=tuple(range(4)),
        supervise=SuperviseConfig(
            trial_timeout=60.0, backoff_base_s=0.01, backoff_cap_s=0.1,
            poll_interval_s=0.02,
        ),
    )


def _canonical_records(directory: Path) -> dict:
    index = directory / "index.sqlite"
    if index.exists():
        index.unlink()  # rebuild from the JSONL log: compare durable state
    with ResultStore(directory) as store:
        out = {}
        for record in store.records():
            result = record.result.to_dict()
            result["elapsed_s"] = 0.0
            result["worker"] = 0
            out[record.key] = (record.trial.to_dict(), result)
    return out


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _log_lines(store_dir: Path) -> int:
    path = store_dir / "results.jsonl"
    return len(path.read_text().splitlines()) if path.exists() else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", required=True, metavar="DIR",
                        help="artifact directory (logs, history, stores)")
    parser.add_argument("--timeout", type=float, default=420.0,
                        help="overall deadline for the fabric run")
    args = parser.parse_args()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    spec = _spec()
    spec_path = out / "grid.json"
    spec_path.write_text(json.dumps(spec.to_dict(), indent=2))

    print("[1/4] serial ground-truth run", flush=True)
    serial_dir = out / "serial-store"
    with ResultStore(serial_dir) as store:
        serial = run_campaign(spec, store, workers=0, lane_width=1)
    assert serial.failed == 0 and serial.quarantined == 0, serial.summary()

    store_dir = out / "fabric-store"
    port = _free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")

    print(f"[2/4] broker + 2 workers on port {port} "
          f"(workers under REPRO_CHAOS={NET_CHAOS})", flush=True)
    broker_log = (out / "broker.log").open("w")
    broker = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "serve",
            "--spec", str(spec_path), "--store", str(store_dir),
            "--port", str(port), "--heartbeat", "0.5",
            "--grace", "120", "--local-workers", "0", "--lanes", "1",
        ],
        env=env, stdout=broker_log, stderr=subprocess.STDOUT, text=True,
    )
    worker_env = dict(env)
    worker_env["REPRO_CHAOS"] = NET_CHAOS
    worker_logs, workers = [], []
    for i in range(2):
        handle = (out / f"worker-{i}.log").open("w")
        worker_logs.append(handle)
        workers.append(subprocess.Popen(
            [
                sys.executable, "-m", "repro", "campaign", "worker",
                "--connect", f"http://127.0.0.1:{port}",
                "--id", f"smoke-{i}",
            ],
            env=worker_env, stdout=handle, stderr=subprocess.STDOUT, text=True,
        ))

    deadline = time.monotonic() + args.timeout
    try:
        print("[3/4] waiting for first result, then SIGKILL worker 0",
              flush=True)
        while _log_lines(store_dir) < 1:
            assert broker.poll() is None, "broker died before any result"
            assert time.monotonic() < deadline, "no results before deadline"
            time.sleep(0.1)
        workers[0].kill()  # SIGKILL mid-campaign: its lease must be stolen

        rc = broker.wait(timeout=max(1.0, deadline - time.monotonic()))
        assert rc == 0, f"broker exited {rc} (see broker.log)"
    finally:
        for proc in [broker, *workers]:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in [broker, *workers]:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        broker_log.close()
        for handle in worker_logs:
            handle.close()

    print("[4/4] verifying store and dumping progress history", flush=True)
    status = subprocess.run(
        [
            sys.executable, "-m", "repro", "campaign", "status",
            "--spec", str(spec_path), "--store", str(store_dir),
            "--history", str(out / "history.json"),
        ],
        env=env, capture_output=True, text=True,
    )
    sys.stdout.write(status.stdout)
    assert status.returncode == 0, status.stderr

    quarantine = store_dir / "quarantine.jsonl"
    assert not quarantine.exists() or not quarantine.read_text().strip(), (
        "trials were quarantined under pure network faults"
    )
    fabric = _canonical_records(store_dir)
    clean = _canonical_records(serial_dir)
    assert fabric == clean, (
        f"fabric store diverged from serial run: "
        f"{sorted(set(fabric) ^ set(clean)) or 'same keys, different results'}"
    )
    history = json.loads((out / "history.json").read_text())
    assert history and history[-1]["state"] == "finished", history[-1:]
    totals = history[-1]["totals"]
    assert totals["failed"] == 0 and totals["quarantined"] == 0, totals

    print(f"fabric smoke PASSED: {len(fabric)} trials bit-identical to the "
          f"serial run; artifacts in {out}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
