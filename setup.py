"""Shim enabling legacy editable installs in offline environments.

The sandbox has no ``wheel`` package and no network, so PEP 517 editable
builds (which require ``bdist_wheel``) fail; ``pip install -e .`` falls back
to ``setup.py develop`` via this shim (pip adds ``--no-use-pep517``
automatically when invoked as documented in README).
"""

from setuptools import setup

setup()
