"""Shim enabling legacy editable installs in offline environments.

The sandbox has no ``wheel`` package and no network, so PEP 517 editable
builds (which require ``bdist_wheel``) fail; ``pip install -e .`` falls back
to ``setup.py develop`` via this shim (pip adds ``--no-use-pep517``
automatically when invoked as documented in README).

``python setup.py build_ext --inplace`` additionally compiles the optional
native GEMM kernel (``csrc/gemm_int8.c``) to ``src/repro/_native_gemm*.so``.
The artifact is loaded via ``ctypes`` by the ``native`` backend — never
imported as a Python module, so it needs no ``PyInit`` symbol — and is
entirely optional: without it the backend falls back to a runtime ``cc``
compile, and without a compiler it degrades to the exact default backend.
The extension is only wired up when ``build_ext`` is actually requested so
the plain ``develop`` shim keeps working on hosts with no C toolchain.
"""

import sys

from setuptools import setup

kwargs = {}
if "build_ext" in sys.argv:
    from setuptools import Extension

    kwargs.update(
        ext_modules=[
            Extension(
                "repro._native_gemm",
                sources=["csrc/gemm_int8.c"],
                extra_compile_args=["-O3", "-std=c99"],
            )
        ],
        packages=["repro"],
        package_dir={"": "src"},
    )

setup(**kwargs)
