"""Clean-trace replay engine equivalence tests.

The contract (DESIGN.md section 7): a resumed forward is indistinguishable
from a full one — **exact** logit/NLL/token equality (``assert_array_equal``
/ ``==``, never ``allclose``), identical injector RNG streams and
statistics, identical protector statistics — for prefill and decode, single
and batched inputs, with and without ABFT protectors attached. Shared-memory
packs must rebuild engines and traces bit-identically as zero-copy views.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft.protectors import ClassicalABFT
from repro.characterization.evaluator import (
    ModelEvaluator,
    _bundle_fingerprint,
    quantized_model_for,
)
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel
from repro.errors.sites import Component, SiteFilter, Stage
from repro.models.replay import CleanTrace, ReplaySession, TraceStore
from repro.models.sharing import attach_model, attach_traces, publish_bundle


@pytest.fixture()
def session():
    """A private trace store so tests never see each other's traces."""
    return ReplaySession("test-model", store=TraceStore())


def _tokens(model, n=3, length=20, stride=3):
    vocab = model.config.vocab_size
    return np.stack([(np.arange(length) * (1 + i * stride)) % vocab for i in range(n)])


FILTERS = [
    SiteFilter.only(layers=[1]),
    SiteFilter.only(layers=[0]),
    SiteFilter.only(components=[Component.O]),
    SiteFilter.only(stages=[Stage.DECODE]),
    SiteFilter.everywhere(),
]


class TestSiteFilterReasoning:
    def test_earliest_layer_basics(self):
        assert SiteFilter.everywhere().earliest_layer(4) == 0
        assert SiteFilter.only(layers=[2, 3]).earliest_layer(4) == 2
        assert SiteFilter.only(layers=[7]).earliest_layer(4) is None

    def test_stage_and_component_pruning(self):
        decode_only = SiteFilter.only(stages=[Stage.DECODE])
        assert decode_only.earliest_layer(4, stage=Stage.PREFILL) is None
        assert decode_only.earliest_layer(4, stage=Stage.DECODE) == 0
        mlp = SiteFilter.only(components=[Component.GATE])
        opt_components = (Component.Q, Component.O, Component.FC1)
        assert mlp.earliest_layer(4, components=opt_components) is None
        assert mlp.earliest_layer(4) == 0

    def test_targets(self):
        assert SiteFilter.only(layers=[1]).targets(4)
        assert not SiteFilter.only(layers=[9]).targets(4)
        assert SiteFilter.everywhere().targets_stage(Stage.DECODE)
        assert not SiteFilter.only(stages=[Stage.PREFILL]).targets_stage(Stage.DECODE)

    def test_earliest_layer_memoization_never_changes_answer(self):
        """The memoized hot path must agree with the uncached computation
        for every (n_layers, components, stage) argument combination —
        including ``None`` answers, which the cache must also store."""
        opt_components = (Component.Q, Component.K, Component.O, Component.FC1)
        filters = [
            SiteFilter.everywhere(),
            SiteFilter.only(layers=[2, 5]),
            SiteFilter.only(layers=[9]),
            SiteFilter.only(components=[Component.O]),
            SiteFilter.only(components=[Component.GATE]),
            SiteFilter.only(stages=[Stage.DECODE]),
            SiteFilter.only(layers=[1], components=[Component.K], stages=[Stage.PREFILL]),
        ]
        cases = [
            (n_layers, components, stage)
            for n_layers in (2, 4, 8)
            for components in (None, opt_components)
            for stage in (None, Stage.PREFILL, Stage.DECODE)
        ]
        for flt in filters:
            for n_layers, components, stage in cases:
                uncached = flt._earliest_layer(n_layers, components, stage)
                for _ in range(3):  # first call fills the cache, rest hit it
                    assert (
                        flt.earliest_layer(n_layers, components=components, stage=stage)
                        == uncached
                    )
            assert flt._earliest_cache  # the hot path actually memoizes


def _tiny_trace(n_floats: int) -> CleanTrace:
    return CleanTrace(
        kind="full",
        boundaries=[np.zeros(n_floats)],
        calls_by_layer=[[]],
        logits=np.zeros(1),
    )


class TestTraceStoreEviction:
    """The store is a byte-capped LRU: long sweeps must not grow unbounded."""

    def test_lru_eviction_and_recency(self):
        one = _tiny_trace(128).nbytes  # all traces same size
        store = TraceStore(max_bytes=3 * one)
        for key in ("a", "b", "c"):
            store.put(key, _tiny_trace(128))
        assert store.get("a") is not None  # refresh "a": now "b" is LRU
        store.put("d", _tiny_trace(128))
        assert store.get("b") is None
        assert store.get("a") is not None and store.get("d") is not None
        assert len(store) == 3 and store.nbytes == 3 * one

    def test_oversized_trace_is_kept(self):
        store = TraceStore(max_bytes=16)
        store.put("big", _tiny_trace(4096))
        assert store.get("big") is not None  # never evict the sole trace
        store.put("next", _tiny_trace(4096))
        assert store.get("big") is None and store.get("next") is not None

    def test_replace_and_clear_track_bytes(self):
        store = TraceStore(max_bytes=1 << 20)
        store.put("k", _tiny_trace(128))
        store.put("k", _tiny_trace(256))
        assert store.nbytes == _tiny_trace(256).nbytes and len(store) == 1
        store.clear()
        assert store.nbytes == 0 and len(store) == 0


@pytest.mark.parametrize("model_fixture", ["opt_quant", "llama_quant"])
class TestExactForwardEquivalence:
    """Resumed forward_full == full forward_full, bit for bit."""

    @pytest.mark.parametrize("protect", [False, True])
    def test_forward_full_under_injection(self, model_fixture, protect, request, session):
        model = request.getfixturevalue(model_fixture)
        tokens = _tokens(model)
        with model.replay_into(session):
            clean = model.forward_full(tokens)
        np.testing.assert_array_equal(clean, model.forward_full(tokens))
        for flt in FILTERS:
            injectors, protectors, outputs = [], [], []
            for use_replay in (False, True):
                injector = ErrorInjector(BitFlipModel(2e-3), flt, seed=7)
                protector = ClassicalABFT() if protect else None
                model.attach(injector, protector)
                try:
                    with model.replay_into(session if use_replay else None):
                        outputs.append(model.forward_full(tokens))
                finally:
                    model.attach(None, None)
                injectors.append(injector)
                protectors.append(protector)
            np.testing.assert_array_equal(outputs[0], outputs[1])
            full, resumed = injectors
            assert full.stats.gemm_calls == resumed.stats.gemm_calls
            assert full.stats.targeted_calls == resumed.stats.targeted_calls
            assert full.stats.injected_errors == resumed.stats.injected_errors
            assert full.stats.per_site_errors == resumed.stats.per_site_errors
            if protect:
                assert protectors[0].stats.inspected == protectors[1].stats.inspected
                assert protectors[0].stats.recovered == protectors[1].stats.recovered
                assert (
                    protectors[0].stats.recovered_macs
                    == protectors[1].stats.recovered_macs
                )

    def test_single_sequence_input(self, model_fixture, request, session):
        model = request.getfixturevalue(model_fixture)
        seq = _tokens(model, n=1)[0]
        with model.replay_into(session):
            clean = model.forward_full(seq)
        injector = ErrorInjector(BitFlipModel(2e-3), SiteFilter.only(layers=[1]), seed=3)
        model.attach(injector, None)
        try:
            full = model.forward_full(seq)
        finally:
            model.attach(None, None)
        model.attach(ErrorInjector(BitFlipModel(2e-3), SiteFilter.only(layers=[1]), seed=3), None)
        try:
            with model.replay_into(session):
                resumed = model.forward_full(seq)
        finally:
            model.attach(None, None)
        assert clean.shape == full.shape == resumed.shape
        np.testing.assert_array_equal(full, resumed)

    def test_nll_exact_equality(self, model_fixture, request, session):
        model = request.getfixturevalue(model_fixture)
        tokens = _tokens(model)
        with model.replay_into(session):
            clean_nll = model.sequence_nll_batch(tokens)
        for flt in FILTERS:
            nlls = []
            for use_replay in (False, True):
                model.attach(ErrorInjector(BitFlipModel(1e-3), flt, seed=5), None)
                try:
                    with model.replay_into(session if use_replay else None):
                        nlls.append(model.sequence_nll_batch(tokens))
                finally:
                    model.attach(None, None)
            np.testing.assert_array_equal(nlls[0], nlls[1])
        with model.replay_into(session):
            np.testing.assert_array_equal(clean_nll, model.sequence_nll_batch(tokens))

    @pytest.mark.parametrize("protect", [False, True])
    def test_generation_under_injection(self, model_fixture, protect, request, session):
        """Prefill resume + full decode: exact token equality."""
        model = request.getfixturevalue(model_fixture)
        prompts = _tokens(model, n=2, length=12)
        with model.replay_into(session):
            clean = model.generate_batch(prompts, 6)
        np.testing.assert_array_equal(clean, model.generate_batch(prompts, 6))
        for flt in FILTERS:
            outs, injectors = [], []
            for use_replay in (False, True):
                injector = ErrorInjector(BitFlipModel(2e-3), flt, seed=11)
                model.attach(injector, ClassicalABFT() if protect else None)
                try:
                    with model.replay_into(session if use_replay else None):
                        outs.append(model.generate_batch(prompts, 6))
                finally:
                    model.attach(None, None)
                injectors.append(injector)
            np.testing.assert_array_equal(outs[0], outs[1])
            assert injectors[0].stats.gemm_calls == injectors[1].stats.gemm_calls
            assert (
                injectors[0].stats.per_site_errors == injectors[1].stats.per_site_errors
            )


class TestAccountingParity:
    def test_mac_counters_match_full_forward(self, opt_quant, session):
        tokens = _tokens(opt_quant)
        with opt_quant.replay_into(session):
            opt_quant.forward_full(tokens)  # record
        injector_filter = SiteFilter.only(layers=[1])
        opt_quant.executor.reset_counters()
        opt_quant.attach(ErrorInjector(BitFlipModel(0.0), injector_filter), None)
        try:
            opt_quant.forward_full(tokens)
        finally:
            opt_quant.attach(None, None)
        full_macs = opt_quant.executor.total_macs
        full_by_component = dict(opt_quant.executor.macs_by_component)
        opt_quant.executor.reset_counters()
        opt_quant.attach(ErrorInjector(BitFlipModel(0.0), injector_filter), None)
        try:
            with opt_quant.replay_into(session):
                opt_quant.forward_full(tokens)
        finally:
            opt_quant.attach(None, None)
        assert opt_quant.executor.total_macs == full_macs
        assert dict(opt_quant.executor.macs_by_component) == full_by_component

    def test_decode_only_filter_skips_whole_scoring_forward(self, opt_quant, session):
        """A decode-only filter leaves a forward_full fully clean: replay
        returns the recorded logits and registers every call untargeted."""
        tokens = _tokens(opt_quant)
        with opt_quant.replay_into(session):
            clean = opt_quant.forward_full(tokens)
        injector = ErrorInjector(
            BitFlipModel(0.5), SiteFilter.only(stages=[Stage.DECODE]), seed=0
        )
        opt_quant.attach(injector, None)
        try:
            with opt_quant.replay_into(session):
                out = opt_quant.forward_full(tokens)
        finally:
            opt_quant.attach(None, None)
        np.testing.assert_array_equal(out, clean)
        cfg = opt_quant.config
        assert injector.stats.gemm_calls == cfg.n_layers * len(cfg.components)
        assert injector.stats.injected_errors == 0


class TestInjectorFastPath:
    def test_memoized_targets_consistent_with_filter(self):
        from repro.errors.sites import GemmSite

        injector = ErrorInjector(BitFlipModel(0.0), SiteFilter.only(layers=[1]))
        site_hit = GemmSite(layer=1, component=Component.Q, stage=Stage.PREFILL)
        site_miss = GemmSite(layer=0, component=Component.Q, stage=Stage.PREFILL)
        for _ in range(3):  # memoized answers stay correct
            assert injector.targets(site_hit)
            assert not injector.targets(site_miss)
        injector.enabled = False
        assert not injector.targets(site_hit)
        injector.enabled = True
        assert injector.targets(site_hit)

    def test_untargeted_corrupt_advances_stream_identically(self):
        from repro.errors.sites import GemmSite

        acc = np.arange(12, dtype=np.int64).reshape(3, 4)
        site_miss = GemmSite(layer=0, component=Component.Q, stage=Stage.PREFILL)
        site_hit = GemmSite(layer=1, component=Component.Q, stage=Stage.PREFILL)
        a = ErrorInjector(BitFlipModel(0.9), SiteFilter.only(layers=[1]), seed=4)
        out_a = a.corrupt(acc.copy(), site_miss)
        np.testing.assert_array_equal(out_a, acc)  # untouched
        hit_a = a.corrupt(acc.copy(), site_hit)
        b = ErrorInjector(BitFlipModel(0.9), SiteFilter.only(layers=[1]), seed=4)
        b.register_untargeted(site_miss)
        hit_b = b.corrupt(acc.copy(), site_hit)
        np.testing.assert_array_equal(hit_a, hit_b)


class TestEvaluatorReplay:
    def test_scores_bit_identical_to_no_replay(self, opt_bundle):
        from repro.campaigns.executor import evaluate_trial
        from repro.campaigns.spec import ErrorSpec, SiteSpec, Trial

        ev_replay = ModelEvaluator(opt_bundle, "perplexity", replay=True)
        ev_full = ModelEvaluator(opt_bundle, "perplexity", replay=False)
        assert ev_replay.clean_score == ev_full.clean_score
        for site in (
            SiteSpec.only(layers=[1]),
            SiteSpec.only(components=["O"], stages=["prefill"]),
            SiteSpec.everywhere(),
        ):
            trial = Trial(
                model=opt_bundle.name,
                task="perplexity",
                site=site,
                error=ErrorSpec.bitflip(1e-3, bits=(30,)),
                seed=2,
            )
            r_replay = evaluate_trial(trial, ev_replay)
            r_full = evaluate_trial(trial, ev_full)
            assert r_replay.score == r_full.score
            assert r_replay.degradation == r_full.degradation
            assert r_replay.injected_errors == r_full.injected_errors
            assert r_replay.gemm_calls == r_full.gemm_calls

    def test_generation_task_scores_match(self, opt_bundle):
        from repro.campaigns.executor import evaluate_trial
        from repro.campaigns.spec import ErrorSpec, SiteSpec, Trial

        ev_replay = ModelEvaluator(opt_bundle, "xsum", replay=True)
        ev_full = ModelEvaluator(opt_bundle, "xsum", replay=False)
        assert ev_replay.clean_score == ev_full.clean_score
        for stages in (["prefill"], ["decode"], None):
            trial = Trial(
                model=opt_bundle.name,
                task="xsum",
                site=SiteSpec.only(stages=stages),
                error=ErrorSpec.bitflip(2e-3, bits=(30,)),
                seed=1,
            )
            assert evaluate_trial(trial, ev_replay).score == evaluate_trial(trial, ev_full).score


class TestSharedMemory:
    def test_pack_attach_bit_identical(self, opt_bundle):
        from repro.models.replay import TRACES

        fingerprint = _bundle_fingerprint(opt_bundle)
        evaluator = ModelEvaluator(opt_bundle, "perplexity", replay=True)
        evaluator.clean_score  # record traces under the global store
        model = quantized_model_for(opt_bundle)
        traces = {k: t for k, t in TRACES.items() if k.startswith(fingerprint)}
        assert traces, "clean scoring should have recorded traces"
        pack = publish_bundle(fingerprint, model, traces)
        try:
            attached = attach_model(pack.manifest)
            tokens = _tokens(model)
            np.testing.assert_array_equal(
                model.forward_full(tokens), attached.forward_full(tokens)
            )
            np.testing.assert_array_equal(
                model.generate_batch(tokens[:, :10], 4),
                attached.generate_batch(tokens[:, :10], 4),
            )
            # attached weights are zero-copy views, not copies
            assert not attached.embed.flags.owndata
            assert not attached.layers[0]["wq"].q.flags.owndata
            assert not attached.layers[0]["wq"].q.flags.writeable
            rebuilt = attach_traces(pack.manifest)
            assert set(rebuilt) == set(traces)
            for key in traces:
                np.testing.assert_array_equal(traces[key].logits, rebuilt[key].logits)
                assert traces[key].calls_by_layer == rebuilt[key].calls_by_layer
        finally:
            pack.close()

    def test_pool_campaign_with_shared_packs(self, tmp_path, opt_bundle):
        """Scores from shared-memory pool workers match the serial route."""
        from repro.campaigns.executor import run_campaign
        from repro.campaigns.spec import CampaignSpec, ErrorSpec, SiteSpec
        from repro.campaigns.store import ResultStore

        spec = CampaignSpec(
            name="shm-test",
            models=(opt_bundle.name,),
            tasks=("perplexity",),
            sites=(SiteSpec.only(components=["O"], stages=["prefill"]),),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
            seeds=(0, 1),
        )
        with ResultStore(str(tmp_path / "pool")) as store:
            report = run_campaign(spec, store, workers=2)
            assert report.executed == 2 and report.failed == 0
            pool_scores = {t.key: store.get(t.key).result.score for t in spec.expand()}
        with ResultStore(str(tmp_path / "serial")) as store:
            report = run_campaign(spec, store, workers=0)
            assert report.executed == 2 and report.failed == 0
            serial_scores = {t.key: store.get(t.key).result.score for t in spec.expand()}
        assert pool_scores == serial_scores
