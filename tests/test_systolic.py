"""Tests for the systolic-array simulator, tiling, and the statistical unit."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abft.protectors import ClassicalABFT, StatisticalABFT
from repro.abft.region import CriticalRegion
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel, MagFreqModel
from repro.errors.sites import Component, GemmSite, SiteFilter, Stage
from repro.quant.gemm import gemm_int32
from repro.systolic.array import SystolicArray
from repro.systolic.dataflow import OS, WS, Dataflow, tile_latency_cycles
from repro.systolic.stat_unit import Log2LinearUnit, StatisticalUnit
from repro.systolic.tiling import iter_tiles, tile_counts

SITE = GemmSite(0, Component.K, Stage.PREFILL)


class TestTiling:
    def test_tiles_cover_gemm_exactly(self):
        covered = np.zeros((10, 7, 9), dtype=int)
        for t in iter_tiles(10, 7, 9, size=4):
            covered[t.i0 : t.i1, t.k0 : t.k1, t.j0 : t.j1] += 1
        np.testing.assert_array_equal(covered, np.ones((10, 7, 9), dtype=int))

    def test_tile_counts(self):
        assert tile_counts(10, 7, 9, 4) == (3, 2, 3)
        assert tile_counts(8, 8, 8, 8) == (1, 1, 1)

    def test_macs_sum_to_gemm_macs(self):
        total = sum(t.macs for t in iter_tiles(10, 7, 9, 4))
        assert total == 10 * 7 * 9

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            list(iter_tiles(0, 4, 4, 2))
        with pytest.raises(ValueError):
            list(iter_tiles(4, 4, 4, 0))


class TestLatencyModel:
    def test_ws_formula(self):
        assert tile_latency_cycles(WS, 8, 8, 8) == 8 + 8 + 8 - 1

    def test_os_formula(self):
        assert tile_latency_cycles(OS, 8, 8, 8) == 8 + 8 + 8 - 2 + 8

    def test_checksum_adds_one_cycle(self):
        base = tile_latency_cycles(WS, 4, 4, 4)
        assert tile_latency_cycles(WS, 4, 4, 4, with_checksum=True) == base + 1

    def test_rejects_empty_tile(self):
        with pytest.raises(ValueError):
            tile_latency_cycles(WS, 0, 4, 4)


@pytest.mark.parametrize("dataflow", [WS, OS])
class TestSystolicGemm:
    def test_matches_reference_gemm(self, dataflow, rng):
        array = SystolicArray(4, dataflow)
        a = rng.integers(-127, 128, size=(9, 11)).astype(np.int8)
        b = rng.integers(-127, 128, size=(11, 6)).astype(np.int8)
        out, report = array.gemm(a, b)
        np.testing.assert_array_equal(out, gemm_int32(a, b))
        assert report.tiles == 3 * 3 * 2
        assert report.macs == 9 * 11 * 6
        assert report.recovery_cycles == 0

    def test_protected_gemm_recovers_exactly(self, dataflow, rng):
        array = SystolicArray(4, dataflow)
        a = rng.integers(-50, 50, size=(8, 8)).astype(np.int8)
        b = rng.integers(-50, 50, size=(8, 8)).astype(np.int8)
        injector = ErrorInjector(BitFlipModel(0.01), seed=5)
        out, report = array.gemm(a, b, injector, ClassicalABFT(), SITE)
        np.testing.assert_array_equal(out, gemm_int32(a, b))
        assert report.injected_tiles > 0
        assert report.recovered_tiles == report.injected_tiles
        assert report.recovery_cycles > 0

    def test_statistical_protection_skips_sporadic_errors(self, dataflow, rng):
        array = SystolicArray(8, dataflow)
        a = rng.integers(-50, 50, size=(8, 8)).astype(np.int8)
        b = rng.integers(-50, 50, size=(8, 8)).astype(np.int8)
        region = CriticalRegion(a=1.5, b=14.0, theta_freq=4.0, kind="resilient")
        protector = StatisticalABFT({"K": region})
        injector = ErrorInjector(MagFreqModel(mag=2**25, freq=2), seed=5)
        out, report = array.gemm(a, b, injector, protector, SITE)
        assert report.injected_tiles == 1
        assert report.recovered_tiles == 0  # sporadic errors accepted
        assert np.any(out != gemm_int32(a, b))

    def test_incompatible_operands_rejected(self, dataflow):
        array = SystolicArray(4, dataflow)
        with pytest.raises(ValueError):
            array.gemm(np.zeros((2, 3), dtype=np.int8), np.zeros((4, 2), dtype=np.int8))

    def test_wraparound_accumulation_across_k_tiles(self, dataflow):
        """Partial sums accumulate with int32 wraparound, matching the
        monolithic wrapped GEMM."""
        array = SystolicArray(4, dataflow)
        k = 4096
        a = np.full((1, k), 127, dtype=np.int8)
        b = np.full((k, 1), 127, dtype=np.int8)
        out, _ = array.gemm(a, b)
        np.testing.assert_array_equal(out, gemm_int32(a, b))


class TestLog2LinearUnit:
    @given(st.integers(min_value=1, max_value=2**31 - 1))
    @settings(max_examples=200, deadline=None)
    def test_hw_log2_close_to_exact(self, value):
        unit = Log2LinearUnit(a=1.5, b=10.0)
        approx = unit.log2_hw(value)
        exact = np.log2(value)
        # linear-mantissa error (<= 0.0861) + 4-bit floor quantization (1/16)
        assert abs(approx - exact) <= 0.16

    def test_log2_exact_at_powers_of_two(self):
        unit = Log2LinearUnit(a=1.5, b=10.0)
        for p in range(1, 31):
            assert unit.log2_hw(1 << p) == pytest.approx(p)

    def test_theta_mag_close_to_software(self):
        from repro.abft.region import theta_mag

        unit = Log2LinearUnit(a=1.5, b=12.0)
        for msd in (2**8, 2**12, 2**16, 2**20, 123456):
            hw = unit.theta_mag(msd)
            sw = theta_mag(1.5, 12.0, msd)
            assert 0.4 * sw <= hw <= 2.5 * sw  # within ~1 octave

    def test_zero_msd(self):
        assert Log2LinearUnit(a=1.5, b=10.0).theta_mag(0) == 0.0


class TestStatisticalUnit:
    def test_matches_software_decision_on_typical_patterns(self):
        unit = StatisticalUnit(a=1.5, b=14.0, theta_freq=4.0, n_buffers=64)
        region = CriticalRegion(a=1.5, b=14.0, theta_freq=4.0)
        diffs = np.zeros(64, dtype=np.int64)
        diffs[:2] = 1 << 26  # sporadic large
        assert unit.should_recover(diffs) == region.predicts_recovery(2**26, 2)
        diffs = np.zeros(64, dtype=np.int64)
        diffs[:32] = 1 << 22  # frequent significant
        assert unit.should_recover(diffs)

    def test_buffer_overflow_flagged(self):
        unit = StatisticalUnit(a=1.5, b=10.0, theta_freq=1.0, n_buffers=4)
        reading = unit.evaluate(np.ones(8, dtype=np.int64))
        assert reading.buffer_overflowed

    def test_countif_semantics(self):
        unit = StatisticalUnit(a=1.5, b=0.0, theta_freq=0.0, n_buffers=16)
        diffs = np.array([0, 5, -50, 500], dtype=np.int64)
        reading = unit.evaluate(diffs)
        assert reading.msd == 555
        assert reading.freq_eff == int(np.count_nonzero(np.abs(diffs) > reading.theta_mag))

    def test_invalid_buffers_rejected(self):
        with pytest.raises(ValueError):
            StatisticalUnit(a=1.5, b=1.0, theta_freq=0.0, n_buffers=0)
