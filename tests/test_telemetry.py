"""Telemetry contract tests (DESIGN.md section 10).

Three guarantees are asserted here:

- **Zero perturbation**: with span tracing and the dispatch trace
  instrument enabled, every score/statistic is bit-identical (``==``,
  never ``allclose``) to the untraced run, solo and lane-packed.
- **Zero footprint when disabled**: the executor's chain and trace slot
  are untouched; ``span()`` hands back one shared no-op singleton.
- **Live progress**: the campaign parent writes ``progress`` snapshots a
  *concurrent* reader (``campaign watch`` in another process) can consume
  while the run is still writing.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import time

import pytest

import repro.telemetry as telemetry
from repro.campaigns.executor import _run_pack_payload, evaluate_trial, run_campaign
from repro.campaigns.progress import (
    build_snapshot,
    read_latest_progress,
    render_metrics,
    render_snapshot,
)
from repro.campaigns.spec import CampaignSpec, ErrorSpec, SiteSpec, Trial
from repro.campaigns.store import ResultStore
from repro.characterization.evaluator import ModelEvaluator
from repro.dispatch.cost import CostSpec
from repro.models.replay import TraceStore, CleanTrace
from repro.telemetry.metrics import MetricsRegistry, merge_snapshots
from repro.telemetry.spans import NOOP_SPAN
from repro.utils.logging import get_logger


@pytest.fixture(autouse=True)
def telemetry_off():
    """Every test starts and ends with tracing disabled and metrics clean."""
    telemetry.disable()
    telemetry.METRICS.reset()
    telemetry.gemm_trace().reset()
    yield
    telemetry.disable()
    telemetry.METRICS.reset()
    telemetry.gemm_trace().reset()


def _trial(seed=0, ber=2e-3):
    return Trial(
        model="opt-mini",
        task="perplexity",
        site=SiteSpec.only(components=["O"], stages=["prefill"]),
        error=ErrorSpec.bitflip(ber, bits=(30,)),
        seed=seed,
    )


RESULT_FIELDS = (
    "score",
    "degradation",
    "clean_score",
    "injected_errors",
    "gemm_calls",
    "cycles",
    "recovered_macs",
    "energy_j",
)


# ------------------------------------------------------------------ disabled
def test_disabled_span_is_shared_noop():
    assert not telemetry.enabled()
    s = telemetry.span("trial.evaluate", cell="x")
    assert s is NOOP_SPAN
    with s as inner:
        assert inner is NOOP_SPAN
        inner.set(foo=1)  # no-op, no state
    assert telemetry.tracer() is None


def test_disabled_leaves_dispatch_chain_untouched(opt_evaluator):
    executor = opt_evaluator.model.executor
    # attach()/detach() rebuild the chain per trial, so compare shape, not
    # identity: same instrument sequence as before telemetry existed.
    chain_before = [type(i) for i in executor.instruments]
    assert executor.trace is None
    evaluate_trial(_trial(), opt_evaluator)
    assert executor.trace is None
    assert [type(i) for i in executor.instruments] == chain_before
    assert all(i.name != "trace" for i in executor.instruments)


# ------------------------------------------------------------- bit-exactness
def test_enabled_results_bit_identical_solo_and_packed(opt_evaluator):
    trials = [_trial(seed=s) for s in (0, 1, 2)]
    baseline = [
        evaluate_trial(t, opt_evaluator, cost=CostSpec()) for t in trials
    ]
    telemetry.enable()
    try:
        traced_solo = [
            evaluate_trial(t, opt_evaluator, cost=CostSpec()) for t in trials
        ]
        from repro.campaigns.lanes import evaluate_lane_pack

        traced_pack = evaluate_lane_pack(trials, opt_evaluator, cost=CostSpec())
    finally:
        telemetry.disable()
    for base, solo, packed in zip(baseline, traced_solo, traced_pack):
        for field in RESULT_FIELDS:
            assert getattr(solo, field) == getattr(base, field), field
            assert getattr(packed, field) == getattr(base, field), field
    # the trace instrument was attached and detached cleanly
    assert opt_evaluator.model.executor.trace is None
    assert telemetry.gemm_trace().total_wall_s > 0


def test_span_nesting_and_lane_attribution(opt_evaluator):
    trials = [_trial(seed=s) for s in (0, 1)]
    telemetry.enable()
    telemetry.tracer().drain()
    try:
        from repro.campaigns.lanes import evaluate_lane_pack

        evaluate_lane_pack(trials, opt_evaluator)
        events = telemetry.tracer().drain()
    finally:
        telemetry.disable()
    by_name = {}
    for event in events:
        by_name.setdefault(event["name"], []).append(event)
    pack = by_name["pack.evaluate"][0]
    assert pack["args"]["lanes"] == 2
    assert pack["args"]["cell"] == trials[0].cell_label
    run = by_name["eval.run"][0]
    assert run["args"]["parent"] == "pack.evaluate"
    assert run["args"]["lanes"] == 2
    # interval containment: the child span lies inside its parent
    assert pack["ts"] <= run["ts"]
    assert run["ts"] + run["dur"] <= pack["ts"] + pack["dur"] + 1e-3
    for resume in by_name.get("replay.resume", []):
        assert resume["args"]["parent"] == "eval.run"
        assert resume["args"]["lanes"] == 2


def test_chrome_trace_export_schema(tmp_path):
    telemetry.enable()
    try:
        with telemetry.span("trial.evaluate", cell="c0", seed=1):
            with telemetry.span("eval.run", task="perplexity", lanes=1):
                pass
        out = tmp_path / "trace.json"
        payload = telemetry.export_trace(out, extra={"gemmSites": []})
    finally:
        telemetry.disable()
    loaded = json.loads(out.read_text())
    assert loaded == payload
    assert loaded["displayTimeUnit"] == "ms"
    assert loaded["repro"] == {"gemmSites": []}
    assert len(loaded["traceEvents"]) == 2
    for event in loaded["traceEvents"]:
        assert set(event) == {"name", "ph", "ts", "dur", "pid", "tid", "args"}
        assert event["ph"] == "X"
        assert event["pid"] == os.getpid()
        assert event["dur"] >= 0
    child = next(e for e in loaded["traceEvents"] if e["name"] == "eval.run")
    assert child["args"]["parent"] == "trial.evaluate"


# ----------------------------------------------------------------- metrics
def test_metrics_registry_and_merge():
    reg = MetricsRegistry()
    reg.counter("a").inc()
    reg.counter("a").inc(4)
    reg.gauge("g").set(2.5)
    reg.histogram("h").observe(1.0)
    reg.histogram("h").observe(3.0)
    snap = reg.snapshot()
    assert snap["counters"]["a"] == 5
    assert snap["gauges"]["g"] == 2.5
    assert snap["histograms"]["h"] == {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0}
    merged = merge_snapshots([snap, snap])
    assert merged["counters"]["a"] == 10
    assert merged["gauges"]["g"] == 5.0
    assert merged["histograms"]["h"]["count"] == 4
    assert merged["histograms"]["h"]["min"] == 1.0


def test_trace_store_hit_miss_counters():
    store = TraceStore(max_bytes=1 << 20)
    import numpy as np

    trace = CleanTrace(
        kind="full",
        boundaries=[np.zeros((1, 1, 1))],
        calls_by_layer=[[]],
        logits=np.zeros((1, 1, 2)),
    )
    assert store.get("k") is None
    store.put("k", trace)
    assert store.get("k") is trace
    assert store.get("k2") is None
    assert (store.hits, store.misses) == (1, 2)


# ------------------------------------------------------------- degradation
def test_pack_degradation_counts_warns_and_flags(opt_evaluator, monkeypatch, caplog):
    # opt_evaluator warms the worker-side caches via the session fixture; the
    # payload route rebuilds its own evaluator from the on-disk zoo cache.
    monkeypatch.setattr(
        "repro.campaigns.executor.evaluate_lane_pack",
        lambda *a, **k: (_ for _ in ()).throw(RuntimeError("pack boom")),
    )
    payload = {"trials": [_trial(seed=s).to_dict() for s in (0, 1)]}
    with caplog.at_level(logging.WARNING, logger="repro.campaigns"):
        outcomes = _run_pack_payload(payload)
    assert len(outcomes) == 2
    assert all(o.get("degraded") for o in outcomes)
    assert all("result" in o for o in outcomes)
    assert telemetry.METRICS.counter("lanes.pack_degradations").value == 1
    record = next(r for r in caplog.records if "degraded to per-trial" in r.message)
    assert record.levelno == logging.WARNING
    assert _trial().cell_label in record.getMessage()
    assert record.exc_info is not None and "pack boom" in repr(record.exc_info[1])
    # the worker's metric snapshot rides the last outcome for the parent
    assert "metrics" in outcomes[-1]
    assert outcomes[-1]["metrics"]["pid"] == os.getpid()


# ----------------------------------------------------------------- progress
def test_progress_table_roundtrip(tmp_path):
    with ResultStore(tmp_path / "store") as store:
        assert store.latest_progress() is None
        for i in range(3):
            store.write_progress({"i": i})
        assert store.latest_progress() == {"i": 2}
        assert store.progress_history() == [{"i": 0}, {"i": 1}, {"i": 2}]
        for i in range(store.PROGRESS_KEEP + 20):
            store.write_progress({"j": i})
        history = store.progress_history(limit=10_000)
        assert len(history) <= store.PROGRESS_KEEP + 1
        assert history[-1] == {"j": store.PROGRESS_KEEP + 19}
    # progress is ephemeral telemetry: an index rebuild must not drop it
    with ResultStore(tmp_path / "store") as store:
        assert store.latest_progress() == {"j": store.PROGRESS_KEEP + 19}


def test_build_and_render_snapshot():
    snap = build_snapshot(
        name="c",
        state="running",
        totals={"total": 10, "cached": 2, "executed": 4, "failed": 0, "skipped": 0},
        elapsed_s=2.0,
        cells=[
            {"cell": "x", "label": "cell-x", "done": 3, "total": 5,
             "values": [1.0, 2.0, 3.0]},
            {"cell": "y", "label": "cell-y", "done": 0, "total": 5, "values": []},
        ],
        metrics={"counters": {"lanes.packs": 2}, "gauges": {}, "histograms": {}},
    )
    assert snap["throughput_per_s"] == 2.0
    assert snap["eta_s"] == pytest.approx(2.0)  # 4 remaining / 2 per s
    cx = snap["cells"][0]
    assert cx["mean"] == 2.0
    assert cx["ci"] == pytest.approx(1.96 * 1.0 / 3**0.5)
    assert snap["cells"][1]["mean"] is None
    text = render_snapshot(snap)
    assert "cell-x" in text and "3/5" in text and "[running]" in text
    assert "lanes.packs" in render_metrics(snap)


def _watched_campaign(spec_json: str, store_dir: str) -> None:
    spec = CampaignSpec.from_json(spec_json)
    with ResultStore(store_dir) as store:
        run_campaign(spec, store, workers=0)


def test_watch_reads_progress_from_concurrent_writer(opt_evaluator, tmp_path):
    """The acceptance path: a separate process runs the campaign while this
    process polls the store read-only, sees live snapshots, and renders the
    final one — exactly what ``campaign watch`` does."""
    spec = CampaignSpec(
        name="watch-test",
        models=["opt-mini"],
        tasks=["perplexity"],
        sites=[SiteSpec.only(components=["O"], stages=["prefill"])],
        errors=[ErrorSpec.bitflip(2e-3, bits=(30,))],
        seeds=[0, 1, 2, 3],
    )
    store_dir = tmp_path / "watched"
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    proc = ctx.Process(
        target=_watched_campaign, args=(spec.to_json(), str(store_dir))
    )
    proc.start()
    seen: list[dict] = []
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            snapshot = read_latest_progress(store_dir)
            if snapshot is not None and (
                not seen or snapshot["ts"] != seen[-1]["ts"]
            ):
                seen.append(snapshot)
            if snapshot is not None and snapshot["state"] == "finished":
                break
            time.sleep(0.02)
    finally:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    assert seen, "watcher never saw a progress snapshot"
    final = seen[-1]
    assert final["state"] == "finished"
    assert final["name"] == "watch-test"
    assert final["totals"]["executed"] + final["totals"]["cached"] == 4
    assert final["cells"][0]["done"] == 4
    assert final["metrics"]["counters"]["campaign.trials_executed"] == 4
    # the initial "running" write happened before any result landed
    assert any(s["state"] == "running" for s in seen)
    text = render_snapshot(final)
    assert "watch-test" in text and "[finished]" in text


def test_watch_cli_renders_finished_store(opt_evaluator, tmp_path, capsys):
    from repro.cli import main

    spec = CampaignSpec(
        name="watch-cli",
        models=["opt-mini"],
        tasks=["perplexity"],
        sites=[SiteSpec.only(components=["O"], stages=["prefill"])],
        errors=[ErrorSpec.bitflip(2e-3, bits=(30,))],
        seeds=[0],
    )
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(spec.to_json())
    store_dir = tmp_path / "store"
    with ResultStore(store_dir) as store:
        run_campaign(spec, store, workers=0)
    code = main(
        [
            "campaign", "watch",
            "--spec", str(spec_path),
            "--store", str(store_dir),
            "--interval", "0.01",
            "--refreshes", "3",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "watch-cli" in out and "[finished]" in out


def test_campaign_run_trace_cli(opt_evaluator, tmp_path, capsys):
    from repro.cli import main

    spec = CampaignSpec(
        name="trace-cli",
        models=["opt-mini"],
        tasks=["perplexity"],
        sites=[SiteSpec.only(components=["O"], stages=["prefill"])],
        errors=[ErrorSpec.bitflip(2e-3, bits=(30,))],
        seeds=[0, 1],
    )
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(spec.to_json())
    trace_path = tmp_path / "trace.json"
    code = main(
        [
            "campaign", "run",
            "--spec", str(spec_path),
            "--store", str(tmp_path / "store"),
            "--trace", str(trace_path),
        ]
    )
    capsys.readouterr()
    assert code == 0
    payload = json.loads(trace_path.read_text())
    names = {e["name"] for e in payload["traceEvents"]}
    assert "pack.evaluate" in names and "eval.run" in names
    assert payload["repro"]["metrics"]["counters"]["campaign.trials_executed"] == 2
    assert payload["repro"]["gemmSites"], "per-site GEMM wall table missing"


# ------------------------------------------------------------------ logging
def test_get_logger_env_level_and_no_duplicate_handlers(monkeypatch):
    root = logging.getLogger("repro")
    real_root = logging.getLogger()
    saved = (list(root.handlers), root.level, list(real_root.handlers))
    try:
        # Fresh world: first get_logger installs exactly one handler.
        root.handlers.clear()
        real_root.handlers.clear()
        root.setLevel(logging.NOTSET)
        get_logger("t1")
        assert len(root.handlers) == 1
        assert root.level == logging.INFO
        # A second import-time call (as a forked worker would make) must not
        # add a second handler — that is the double-logging bug.
        get_logger("t2")
        assert len(root.handlers) == 1
        # Application-configured logging (a handler on the *real* root, as
        # pytest/caplog or a host app installs): we must not add our own.
        root.handlers.clear()
        root.setLevel(logging.NOTSET)
        real_root.addHandler(logging.NullHandler())
        get_logger("t3")
        assert root.handlers == []
        # REPRO_LOG_LEVEL wins, by name or number; junk is ignored.
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        get_logger("t4")
        assert root.level == logging.DEBUG
        monkeypatch.setenv("REPRO_LOG_LEVEL", "41")
        get_logger("t5")
        assert root.level == 41
        monkeypatch.setenv("REPRO_LOG_LEVEL", "not-a-level")
        get_logger("t6")
        assert root.level == 41  # unchanged, not crashed
    finally:
        root.handlers[:] = saved[0]
        root.setLevel(saved[1])
        real_root.handlers[:] = saved[2]
