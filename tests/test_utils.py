"""Tests for shared utilities."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.utils.logging import get_logger
from repro.utils.seeding import derive_rng, spawn_rngs
from repro.utils.tables import format_table


class TestSeeding:
    def test_same_seed_key_same_stream(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_independent(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(8, "x").random(5)
        assert not np.array_equal(a, b)

    def test_large_seeds_supported(self):
        derive_rng(2**60, "x").random()

    def test_spawn_rngs(self):
        rngs = spawn_rngs(3, ["a", "b"])
        assert set(rngs) == {"a", "b"}
        assert rngs["a"].random() != rngs["b"].random()


class TestTables:
    def test_alignment_and_header(self):
        out = format_table(["name", "v"], [["aa", 1], ["b", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert all(len(l) <= max(len(x) for x in lines) for l in lines)

    def test_title_rendered(self):
        out = format_table(["a"], [[1]], title="T1")
        assert out.splitlines()[0] == "T1"

    def test_float_formatting(self):
        out = format_table(["x"], [[0.000012345], [12345.678], [1.5], [0.0]])
        assert "1.234e-05" in out
        assert "1.235e+04" in out
        assert "1.5" in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestLogging:
    def test_namespaced_logger(self):
        logger = get_logger("unit")
        assert logger.name == "repro.unit"

    def test_root_handler_installed_once(self):
        get_logger("one")
        get_logger("two")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1
