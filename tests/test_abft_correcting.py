"""Tests for two-sided single-error correction, including the measurement
that justifies the paper's detection-only design choice."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft.correcting import (
    correction_success_rate,
    try_correct_single_error,
)
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel
from repro.errors.sites import Component, GemmSite, Stage
from repro.quant.gemm import gemm_int32
from repro.utils.seeding import derive_rng

SITE = GemmSite(0, Component.K, Stage.PREFILL)


@pytest.fixture
def operands(rng):
    a = rng.integers(-50, 50, size=(6, 10)).astype(np.int8)
    b = rng.integers(-50, 50, size=(10, 8)).astype(np.int8)
    return a, b, gemm_int32(a, b)


class TestSingleErrorCorrection:
    def test_clean_output_reported_clean(self, operands):
        a, b, y = operands
        result = try_correct_single_error(a, b, y)
        assert result.status == "clean"
        np.testing.assert_array_equal(result.corrected, y)

    def test_single_error_located_and_repaired(self, operands):
        a, b, y = operands
        bad = np.array(y)
        bad[2, 5] += 1 << 21
        result = try_correct_single_error(a, b, bad)
        assert result.status == "corrected"
        assert (result.row, result.col) == (2, 5)
        assert result.delta == -(1 << 21)
        np.testing.assert_array_equal(result.corrected, y)

    def test_negative_error_repaired(self, operands):
        a, b, y = operands
        bad = np.array(y)
        bad[0, 0] -= 12345
        result = try_correct_single_error(a, b, bad)
        assert result.status == "corrected"
        np.testing.assert_array_equal(result.corrected, y)

    def test_two_errors_different_cells_uncorrectable(self, operands):
        a, b, y = operands
        bad = np.array(y)
        bad[1, 2] += 100
        bad[3, 6] += 200
        result = try_correct_single_error(a, b, bad)
        assert result.status == "uncorrectable"

    def test_two_errors_same_row_uncorrectable(self, operands):
        a, b, y = operands
        bad = np.array(y)
        bad[1, 2] += 100
        bad[1, 6] += 200
        assert try_correct_single_error(a, b, bad).status == "uncorrectable"

    def test_sign_bit_flip_repaired_with_wraparound(self, operands):
        """Bit-31 flips wrap; correction must repair modulo 2^32."""
        a, b, y = operands
        bad = np.array(y)
        bad[4, 4] = int(
            np.int64(np.uint32(bad[4, 4]) ^ np.uint32(1 << 31)).astype(np.int32)
        )
        result = try_correct_single_error(a, b, bad)
        assert result.status == "corrected"
        np.testing.assert_array_equal(result.corrected, y)


class TestWhyThePaperChoosesDetection:
    def test_correction_rate_collapses_at_high_ber(self, operands):
        """At low BER most faulty GEMMs carry one error (correctable); at
        high BER multi-error patterns dominate and correction fails — the
        quantitative basis for detection + recomputation."""
        a, b, y = operands

        def corrupted_set(ber, n=40):
            outputs = []
            injector = ErrorInjector(BitFlipModel(ber), seed=11)
            while len(outputs) < n:
                candidate = injector.corrupt(y, SITE)
                if np.any(candidate != y):
                    outputs.append(candidate)
            return outputs

        low = correction_success_rate(a, b, y, corrupted_set(2e-4))
        high = correction_success_rate(a, b, y, corrupted_set(3e-2))
        assert low > 0.7
        assert high < 0.5
        assert low > high

    def test_empty_corrupted_set_rejected(self, operands):
        a, b, y = operands
        with pytest.raises(ValueError):
            correction_success_rate(a, b, y, [])
