"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "--model", "gpt4"])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--method", "magic"])


class TestCommands:
    def test_zoo_lists_models(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "opt-mini" in out and "llama-tiny" in out

    def test_overhead_prints_fig8(self, capsys):
        assert main(["overhead", "--size", "128"]) == 0
        out = capsys.readouterr().out
        assert "statistical-abft" in out
        assert "WS" in out and "OS" in out

    def test_characterize_runs(self, opt_bundle, capsys):
        assert main(["characterize", "--model", "opt-mini", "--bers", "1e-3"]) == 0
        out = capsys.readouterr().out
        assert "O" in out and "sensitive" in out

    def test_magfreq_runs(self, opt_bundle, capsys):
        assert main(["magfreq", "--model", "opt-mini", "--component", "K"]) == 0
        out = capsys.readouterr().out
        assert "MSD" in out

    def test_sweep_runs(self, opt_bundle, capsys):
        assert main(["sweep", "--model", "opt-mini",
                     "--method", "no-protection"]) == 0
        out = capsys.readouterr().out
        assert "feasible" in out

    def test_characterize_accepts_seed(self, opt_bundle, capsys):
        assert main(["characterize", "--model", "opt-mini",
                     "--bers", "1e-3", "--seed", "7"]) == 0
        assert "sensitive" in capsys.readouterr().out

    def test_characterize_seeds_fan_out(self, opt_bundle, tmp_path, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "default_store_dir", lambda name: tmp_path / name
        )
        assert main(["characterize", "--model", "opt-mini", "--bers", "1e-3",
                     "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "+/-" in out and "2" in out
        # second invocation is fully served from the campaign store
        assert main(["characterize", "--model", "opt-mini", "--bers", "1e-3",
                     "--seeds", "2"]) == 0
        assert "0 executed" in capsys.readouterr().out

    def test_magfreq_accepts_seed(self, opt_bundle, capsys):
        assert main(["magfreq", "--model", "opt-mini", "--component", "K",
                     "--seed", "3"]) == 0
        assert "MSD" in capsys.readouterr().out


class TestBackendCommands:
    def test_backend_list_shows_registry(self, capsys):
        assert main(["backend", "list", "--no-timing"]) == 0
        out = capsys.readouterr().out
        for name in ("numpy-f64", "numpy-int", "blocked"):
            assert name in out
        assert "exact" in out and "kernel" in out

    def test_backend_list_with_timings(self, capsys):
        assert main(["backend", "list"]) == 0
        assert "ms (" in capsys.readouterr().out

    def test_campaign_run_accepts_backend(self, opt_bundle, tmp_path, capsys):
        import json

        from repro.campaigns.spec import CampaignSpec, ErrorSpec, SiteSpec
        from repro.campaigns.store import ResultStore

        spec = CampaignSpec(
            name="cli-backend", models=("opt-mini",),
            sites=(SiteSpec.only(components=["O"], stages=["prefill"]),),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
            seeds=(0,),
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        store = tmp_path / "store"
        assert main(["campaign", "run", "--spec", str(path),
                     "--store", str(store), "--backend", "numpy-int"]) == 0
        with ResultStore(store, create=False) as opened:
            (record,) = opened.records()
            assert record.result.backend == "numpy-int"

    def test_campaign_run_rejects_unknown_backend(self, opt_bundle, tmp_path):
        import json

        from repro.campaigns.spec import CampaignSpec, ErrorSpec, SiteSpec

        spec = CampaignSpec(
            name="cli-bad-backend", models=("opt-mini",),
            sites=(SiteSpec.only(components=["O"], stages=["prefill"]),),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
            seeds=(0,),
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        with pytest.raises(KeyError, match="no-such-kernel"):
            main(["campaign", "run", "--spec", str(path),
                  "--store", str(tmp_path / "s"), "--backend", "no-such-kernel"])

    def _spec_path(self, tmp_path, name, seeds=(0, 1)):
        import json

        from repro.campaigns.spec import CampaignSpec, ErrorSpec, SiteSpec

        spec = CampaignSpec(
            name=name, models=("opt-mini",),
            sites=(SiteSpec.only(components=["K"], stages=["prefill"]),),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
            seeds=seeds,
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        return path

    def test_campaign_run_supervision_and_chaos_flags(
        self, opt_bundle, tmp_path, capsys
    ):
        path = self._spec_path(tmp_path, "cli-chaos")
        # exc=1.0 makes every trial fail its first attempt; with one retry
        # allowed the campaign still completes cleanly (exit code 0).
        assert main(["campaign", "run", "--spec", str(path),
                     "--store", str(tmp_path / "store"),
                     "--trial-timeout", "60", "--max-retries", "1",
                     "--chaos", "seed=1,exc=1.0"]) == 0
        out = capsys.readouterr().out
        assert "2 retried" in out and "0 failed" in out

    def test_campaign_quarantine_list_and_clear(
        self, opt_bundle, tmp_path, capsys
    ):
        path = self._spec_path(tmp_path, "cli-quarantine")
        store = str(tmp_path / "store")
        # a poison trial fails every attempt: quarantined, exit code 1
        assert main(["campaign", "run", "--spec", str(path), "--store", store,
                     "--max-retries", "0",
                     "--chaos", "seed=1,poison=1.0"]) == 1
        out = capsys.readouterr().out
        assert "2 quarantined" in out

        assert main(["campaign", "quarantine", "list",
                     "--spec", str(path), "--store", store]) == 0
        out = capsys.readouterr().out
        assert "deterministic" in out or "transient" in out
        assert "ChaosPoisonError" in out

        assert main(["campaign", "quarantine", "clear",
                     "--spec", str(path), "--store", store]) == 0
        assert "cleared 2" in capsys.readouterr().out

        assert main(["campaign", "quarantine", "list",
                     "--spec", str(path), "--store", store]) == 0
        assert "no quarantined trials" in capsys.readouterr().out

        # cleared trials run for real on the next (chaos-free) run
        assert main(["campaign", "run", "--spec", str(path),
                     "--store", store]) == 0
        assert "2 executed" in capsys.readouterr().out

    def test_campaign_status_history_artifact(self, opt_bundle, tmp_path, capsys):
        import json

        path = self._spec_path(tmp_path, "cli-history", seeds=(0,))
        store = str(tmp_path / "store")
        assert main(["campaign", "run", "--spec", str(path),
                     "--store", store]) == 0
        capsys.readouterr()
        history = tmp_path / "history.json"
        assert main(["campaign", "status", "--spec", str(path),
                     "--store", store, "--history", str(history)]) == 0
        assert "progress snapshot" in capsys.readouterr().out
        snapshots = json.loads(history.read_text())
        assert snapshots and snapshots[-1]["state"] == "finished"
        assert snapshots[-1]["totals"]["total"] == 1
