"""Tests for the synthetic data substrate (Markov source + task builders)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.markov import MarkovTextSource
from repro.data.tasks import (
    build_gsm8k_like,
    build_hellaswag_like,
    build_lambada_like,
    build_lm_data,
    build_xsum_like,
)
from repro.utils.seeding import derive_rng


@pytest.fixture(scope="module")
def source():
    return MarkovTextSource(vocab_size=64, branching=4, concentration=0.3, seed=0)


class TestMarkovSource:
    def test_deterministic_structure(self):
        a = MarkovTextSource(seed=5)
        b = MarkovTextSource(seed=5)
        np.testing.assert_array_equal(a.successors, b.successors)
        np.testing.assert_allclose(a.probs, b.probs)

    def test_different_seeds_differ(self):
        a = MarkovTextSource(seed=5)
        b = MarkovTextSource(seed=6)
        assert not np.array_equal(a.successors, b.successors)

    def test_probabilities_normalized(self, source):
        np.testing.assert_allclose(source.probs.sum(axis=1), np.ones(64), atol=1e-12)

    def test_sequences_follow_transition_structure(self, source):
        seq = source.sample_sequence(100, derive_rng(0, "x"))
        for prev, nxt in zip(seq[:-1], seq[1:]):
            assert nxt in source.successors[prev]

    def test_sample_batch_deterministic_in_key(self, source):
        a = source.sample_batch(3, 20, key="k1")
        b = source.sample_batch(3, 20, key="k1")
        c = source.sample_batch(3, 20, key="k2")
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_entropy_rate_bounds(self, source):
        h = source.entropy_rate()
        assert 0.0 < h < np.log(source.spec.branching) + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovTextSource(vocab_size=2)
        with pytest.raises(ValueError):
            MarkovTextSource(vocab_size=16, branching=16)


class TestTaskBuilders:
    def test_lm_data_shapes(self, source):
        data = build_lm_data(source, n_sequences=5, seq_len=30)
        assert len(data.sequences) == 5
        assert all(seq.shape == (30,) for seq in data.sequences)

    def test_lambada_targets_are_argmax_successors(self, source):
        task = build_lambada_like(source, n_examples=10, context_len=12)
        assert len(task.contexts) == 10
        for context, target in zip(task.contexts, task.targets):
            last = int(context[-1])
            best = int(np.argmax(source.probs[last]))
            assert target == source.successors[last, best]
            assert source.probs[last, best] >= 0.6

    def test_lambada_impossible_confidence_raises(self, source):
        with pytest.raises(RuntimeError):
            build_lambada_like(source, n_examples=5, min_confidence=1.01)

    def test_xsum_and_gsm8k_prompts(self, source):
        xsum = build_xsum_like(source, n_prompts=4, prompt_len=10, gen_len=8)
        gsm = build_gsm8k_like(source, n_prompts=4, prompt_len=10, gen_len=5)
        assert len(xsum.prompts) == 4 and xsum.gen_len == 8
        assert len(gsm.prompts) == 4 and gsm.gen_len == 5
        # different keys => different prompt sets
        assert not np.array_equal(xsum.prompts[0], gsm.prompts[0])

    def test_hellaswag_structure(self, source):
        task = build_hellaswag_like(source, n_examples=6, context_len=10, cont_len=5)
        assert len(task.contexts) == len(task.choices) == len(task.labels) == 6
        for choices, label in zip(task.choices, task.labels):
            assert len(choices) == 4
            assert 0 <= label < 4
            assert all(c.shape == (5,) for c in choices)

    def test_hellaswag_true_continuation_consistent_with_chain(self, source):
        task = build_hellaswag_like(source, n_examples=6, context_len=10, cont_len=5)
        for context, choices, label in zip(task.contexts, task.choices, task.labels):
            true = choices[label]
            prev = int(context[-1])
            for token in true:
                assert token in source.successors[prev]
                prev = int(token)

    def test_builders_deterministic(self, source):
        a = build_hellaswag_like(source, n_examples=3)
        b = build_hellaswag_like(source, n_examples=3)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.contexts[0], b.contexts[0])
