"""Tests for the chaos harness (repro.campaigns.chaos) and the acceptance
end-to-end: a chaos-ridden campaign — worker SIGKILLs, injected transient
exceptions, a hang past the lease deadline, shm attach failures, torn
store writes — completes without hanging the parent and its store is
bit-identical to a fault-free run; a deterministic poison trial is
quarantined after exactly ``max_retries + 1`` attempts, persisted, and
skipped on resume.
"""

from __future__ import annotations

import pytest

import repro.telemetry as telemetry
from repro.campaigns import ErrorSpec, SiteSpec
from repro.campaigns import chaos as chaos_mod
from repro.campaigns.chaos import (
    ChaosPoisonError,
    ChaosSpec,
    ChaosTrialError,
)
from repro.campaigns.executor import run_campaign
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore
from repro.campaigns.supervise import SuperviseConfig


@pytest.fixture(autouse=True)
def _no_leaked_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    yield
    chaos_mod.install(None)


class TestChaosSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ChaosSpec(kill_workers=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(trial_exceptions=-0.1)
        with pytest.raises(ValueError):
            ChaosSpec(hang_s=0)

    def test_decide_is_deterministic_and_seeded(self):
        spec = ChaosSpec(seed=1, kill_workers=0.5)
        picks = [spec.decide("kill_workers", f"k{i}") for i in range(64)]
        assert picks == [spec.decide("kill_workers", f"k{i}") for i in range(64)]
        assert any(picks) and not all(picks)  # 0.5 rate: mixed at 64 sites
        other = ChaosSpec(seed=2, kill_workers=0.5)
        assert picks != [other.decide("kill_workers", f"k{i}") for i in range(64)]
        assert ChaosSpec(seed=1).decide("kill_workers", "k0") is False  # rate 0
        always = ChaosSpec(seed=1, kill_workers=1.0)
        assert all(always.decide("kill_workers", f"k{i}") for i in range(16))

    def test_from_string_compact_and_json(self):
        spec = ChaosSpec.from_string("seed=3,kill=0.5,exc=0.25,hang=0.1")
        assert spec == ChaosSpec(
            seed=3, kill_workers=0.5, trial_exceptions=0.25, hangs=0.1
        )
        assert ChaosSpec.from_string('{"seed": 3, "kill_workers": 0.5}') == ChaosSpec(
            seed=3, kill_workers=0.5
        )
        with pytest.raises(ValueError):
            ChaosSpec.from_string("")
        with pytest.raises(ValueError):
            ChaosSpec.from_string("kill")

    def test_dict_round_trip_rejects_unknown(self):
        spec = ChaosSpec(seed=9, torn_writes=0.5, shm_attach_failures=1.0)
        assert ChaosSpec.from_dict(spec.to_dict()) == spec
        assert ChaosSpec().to_dict() == {}
        with pytest.raises(ValueError, match="unknown chaos spec keys"):
            ChaosSpec.from_dict({"kills": 0.5})

    def test_env_activation_and_install_precedence(self, monkeypatch):
        assert chaos_mod.active() is None
        monkeypatch.setenv("REPRO_CHAOS", "seed=5,exc=1.0")
        assert chaos_mod.active() == ChaosSpec(seed=5, trial_exceptions=1.0)
        installed = ChaosSpec(seed=6)
        chaos_mod.install(installed)
        assert chaos_mod.active() is installed


class TestChaosHooks:
    def test_trial_exception_fires_only_on_first_attempt(self):
        chaos_mod.install(ChaosSpec(seed=0, trial_exceptions=1.0))
        with pytest.raises(ChaosTrialError):
            chaos_mod.maybe_fail_trial("trial-a", attempt=0)
        chaos_mod.maybe_fail_trial("trial-a", attempt=1)  # retry runs clean

    def test_poison_fires_on_every_attempt(self):
        chaos_mod.install(ChaosSpec(seed=0, poison_trials=1.0))
        for attempt in range(3):
            with pytest.raises(ChaosPoisonError):
                chaos_mod.maybe_fail_trial("trial-a", attempt=attempt)

    def test_worker_fatal_faults_gated_off_outside_pool_workers(self):
        # WORKER_INDEX is None in this process: a kill/hang decision must
        # never SIGKILL the campaign parent or stall the serial executor.
        assert chaos_mod.WORKER_INDEX is None
        chaos_mod.install(ChaosSpec(seed=0, kill_workers=1.0, hangs=1.0))
        chaos_mod.maybe_kill_worker("pack-a", 0)  # would SIGKILL us if ungated
        chaos_mod.maybe_hang("pack-a", 0)  # would sleep 3600 s if ungated
        chaos_mod.maybe_fail_shm_attach()


def _canonical_records(directory):
    """Store records keyed by trial, with volatile fields zeroed.

    ``elapsed_s`` and ``worker`` differ between any two runs by nature;
    everything else — scores, degradations, injector statistics, cost
    columns — must be bit-identical. The index is rebuilt from the JSONL
    log first, so torn lines must survive the reread too.
    """
    index = directory / "index.sqlite"
    if index.exists():
        index.unlink()  # force rebuild from the (possibly torn) log
    with ResultStore(directory) as store:
        out = {}
        for record in store.records():
            result = record.result.to_dict()
            result["elapsed_s"] = 0.0
            result["worker"] = 0
            out[record.key] = (record.trial.to_dict(), result)
    return out


class TestChaosCampaign:
    def _spec(self, seeds, **supervise):
        return CampaignSpec(
            name="t-chaos",
            models=("opt-mini",),
            sites=(SiteSpec.only(components=["K"], stages=["prefill"]),),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
            seeds=seeds,
            supervise=SuperviseConfig(
                backoff_base_s=0.01, backoff_cap_s=0.05, poll_interval_s=0.02,
                **supervise,
            ),
        )

    def test_chaos_run_bit_identical_to_clean_run(self, tmp_path, opt_bundle):
        """The acceptance run: >=1 SIGKILL, >=2 transient trial exceptions,
        >=1 hang past the lease deadline, >=1 shm attach failure, torn
        store writes — and a store bit-identical to the fault-free run."""
        spec = self._spec(seeds=tuple(range(6)), trial_timeout=2.0)
        trial_keys = [t.key for t in spec.expand()]

        # The harness is a pure hash of (seed, kind, site): pick a chaos
        # seed whose decisions provably cover every required fault kind.
        chaos = None
        for seed in range(500):
            candidate = ChaosSpec(
                seed=seed, kill_workers=0.3, trial_exceptions=0.4, hangs=0.25,
                shm_attach_failures=0.5, torn_writes=0.5,
            )
            kills = [k for k in trial_keys if candidate.decide("kill_workers", k)]
            excs = [k for k in trial_keys if candidate.decide("trial_exceptions", k)]
            hangs = [
                k for k in trial_keys
                if candidate.decide("hangs", k)
                and not candidate.decide("kill_workers", k)  # hang actually runs
            ]
            shm = any(
                candidate.decide("shm_attach_failures", f"worker-{i}")
                for i in (0, 1)
            )
            torn = [k for k in trial_keys if candidate.decide("torn_writes", k)]
            if len(kills) >= 1 and len(excs) >= 2 and len(hangs) >= 1 and shm and torn:
                chaos = candidate
                break
        assert chaos is not None, "no chaos seed covers all fault kinds"

        with ResultStore(tmp_path / "clean") as store:
            clean = run_campaign(spec, store, workers=2, lane_width=1)
        assert clean.failed == 0 and clean.executed == 6

        deaths = telemetry.METRICS.counter("supervise.worker_deaths").value
        with ResultStore(tmp_path / "chaos") as store:
            report = run_campaign(
                spec, store, workers=2, lane_width=1, chaos=chaos
            )
        assert report.failed == 0 and report.quarantined == 0
        assert report.executed == 6
        assert report.retried >= 2  # the injected transient exceptions
        # kills and the expired hang both surface as hard worker deaths
        assert (
            telemetry.METRICS.counter("supervise.worker_deaths").value
            >= deaths + 2
        )
        assert _canonical_records(tmp_path / "chaos") == _canonical_records(
            tmp_path / "clean"
        )

    def test_poison_trial_quarantined_and_skipped_on_resume(
        self, tmp_path, opt_bundle
    ):
        spec = self._spec(seeds=(0, 1, 2), max_retries=2)
        trial_keys = [t.key for t in spec.expand()]
        chaos = next(
            ChaosSpec(seed=seed, poison_trials=0.3)
            for seed in range(500)
            if sum(
                ChaosSpec(seed=seed, poison_trials=0.3).decide("poison_trials", k)
                for k in trial_keys
            ) == 1
        )
        poisoned = [k for k in trial_keys if chaos.decide("poison_trials", k)]

        retries = telemetry.METRICS.counter("campaign.trial_retries").value
        with ResultStore(tmp_path / "s") as store:
            report = run_campaign(spec, store, workers=0, chaos=chaos)
            assert (report.executed, report.quarantined, report.failed) == (2, 1, 0)
            # exactly max_retries + 1 attempts: the first plus two retries
            assert (
                telemetry.METRICS.counter("campaign.trial_retries").value
                == retries + 2
            )
            assert store.quarantined_keys() == set(poisoned)
            (record,) = store.quarantined_records()
            assert record["failure"]["attempts"] == 3
            assert record["failure"]["kind"] == "deterministic"
            assert len(record["failure"]["errors"]) == 3

            # resume: the quarantined trial is skipped, not re-attempted
            resumed = run_campaign(spec, store, workers=0, chaos=chaos)
            assert (resumed.cached, resumed.poison_skipped) == (2, 1)
            assert (resumed.executed, resumed.retried, resumed.quarantined) == (0, 0, 0)

        # ... and the quarantine survives a store reopen (JSONL + index)
        (tmp_path / "s" / "index.sqlite").unlink()
        with ResultStore(tmp_path / "s") as store:
            assert store.quarantined_keys() == set(poisoned)

    def test_clearing_quarantine_reenables_trials(self, tmp_path, opt_bundle):
        spec = self._spec(seeds=(0, 1), max_retries=0)
        with ResultStore(tmp_path / "s") as store:
            report = run_campaign(
                spec, store, workers=0, chaos=ChaosSpec(seed=0, poison_trials=1.0)
            )
            assert report.quarantined == 2
            assert store.clear_quarantine() == 2
            # chaos off: the cleared trials run and succeed this time
            healed = run_campaign(spec, store, workers=0)
            assert (healed.executed, healed.poison_skipped) == (2, 0)
