"""Shared fixtures: cached tiny models and evaluators.

The zoo caches trained weights on disk (``$REPRO_CACHE``), so the first test
session trains the mini models (~10 s) and later sessions load instantly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization.evaluator import ModelEvaluator
from repro.models.export import quantize_model
from repro.training.zoo import get_pretrained


@pytest.fixture(scope="session")
def opt_bundle():
    return get_pretrained("opt-mini")


@pytest.fixture(scope="session")
def llama_bundle():
    return get_pretrained("llama-mini")


@pytest.fixture(scope="session")
def opt_quant(opt_bundle):
    """Calibrated quantized OPT-style model (session-shared, read-mostly).

    Tests that attach injectors/protectors must detach afterwards; prefer
    the ``opt_evaluator`` fixture's run() which does so automatically.
    """
    calibration = [row for row in opt_bundle.source.sample_batch(2, 32, key="calibration")]
    return quantize_model(opt_bundle.state, opt_bundle.config, calibration=calibration)


@pytest.fixture(scope="session")
def llama_quant(llama_bundle):
    calibration = [row for row in llama_bundle.source.sample_batch(2, 32, key="calibration")]
    return quantize_model(llama_bundle.state, llama_bundle.config, calibration=calibration)


@pytest.fixture(scope="session")
def opt_evaluator(opt_bundle):
    return ModelEvaluator(opt_bundle, "perplexity")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)
