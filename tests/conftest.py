"""Shared fixtures: cached tiny models and evaluators.

The zoo caches trained weights on disk (``$REPRO_CACHE``), so the first test
session trains the mini models (~10 s) and later sessions load instantly.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.characterization.evaluator import ModelEvaluator
from repro.models.export import quantize_model
from repro.training.zoo import get_pretrained


@pytest.fixture(scope="session", autouse=True)
def _isolated_autotune_table(tmp_path_factory):
    """Point the ``auto`` backend's winner table at a throwaway path.

    The conformance suite drives ``auto`` through hundreds of shape
    classes; persisting those micro-benchmarked winners into the user's
    real ``$REPRO_CACHE`` table would pollute production routing with
    test-shape timings."""
    from repro.dispatch.backends import get_backend
    from repro.dispatch.backends.auto import ENV_TABLE

    path = tmp_path_factory.mktemp("autotune") / "gemm-table.json"
    saved = os.environ.get(ENV_TABLE)
    os.environ[ENV_TABLE] = str(path)
    auto = get_backend("auto")
    auto._classes = None  # drop anything loaded before the override
    yield
    if saved is None:
        os.environ.pop(ENV_TABLE, None)
    else:
        os.environ[ENV_TABLE] = saved
    auto._classes = None


@pytest.fixture(scope="session")
def opt_bundle():
    return get_pretrained("opt-mini")


@pytest.fixture(scope="session")
def llama_bundle():
    return get_pretrained("llama-mini")


@pytest.fixture(scope="session")
def opt_quant(opt_bundle):
    """Calibrated quantized OPT-style model (session-shared, read-mostly).

    Tests that attach injectors/protectors must detach afterwards; prefer
    the ``opt_evaluator`` fixture's run() which does so automatically.
    """
    calibration = [row for row in opt_bundle.source.sample_batch(2, 32, key="calibration")]
    return quantize_model(opt_bundle.state, opt_bundle.config, calibration=calibration)


@pytest.fixture(scope="session")
def llama_quant(llama_bundle):
    calibration = [row for row in llama_bundle.source.sample_batch(2, 32, key="calibration")]
    return quantize_model(llama_bundle.state, llama_bundle.config, calibration=calibration)


@pytest.fixture(scope="session")
def opt_evaluator(opt_bundle):
    return ModelEvaluator(opt_bundle, "perplexity")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)
