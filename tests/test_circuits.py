"""Tests for the circuit area/power model and the BER-voltage map."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.area import (
    ProtectionScheme,
    area_overhead,
    array_area_um2,
    checksum_pe_area_um2,
    pe_area_um2,
    protection_area_um2,
)
from repro.circuits.power import array_power_mw, power_overhead, protection_power_mw
from repro.circuits.synthesis import overhead_report
from repro.circuits.tech import TECH_14NM
from repro.circuits.voltage import VoltageBerModel
from repro.systolic.dataflow import WS, OS


class TestAreaModel:
    def test_array_area_scales_quadratically(self):
        assert array_area_um2(256, WS) == pytest.approx(4 * array_area_um2(128, WS))

    def test_checksum_pe_larger_than_base_pe(self):
        assert checksum_pe_area_um2(TECH_14NM) > pe_area_um2(TECH_14NM, WS)

    def test_no_protection_has_zero_overhead(self):
        assert protection_area_um2(256, WS, ProtectionScheme.NONE) == 0.0

    @pytest.mark.parametrize("dataflow", [WS, OS])
    def test_scheme_ordering(self, dataflow):
        """approx <= classical < statistical: the statistical unit adds
        buffers, countif and the Log2LinearFunction on top."""
        approx = area_overhead(256, dataflow, ProtectionScheme.APPROX)
        classical = area_overhead(256, dataflow, ProtectionScheme.CLASSICAL)
        statistical = area_overhead(256, dataflow, ProtectionScheme.STATISTICAL)
        assert approx <= classical < statistical

    @pytest.mark.parametrize("dataflow", [WS, OS])
    def test_statistical_overhead_matches_paper_ballpark(self, dataflow):
        """Paper: 1.42-1.43% area overhead at 256x256."""
        overhead = area_overhead(256, dataflow, ProtectionScheme.STATISTICAL)
        assert 0.010 < overhead < 0.020

    def test_overhead_shrinks_with_array_size(self):
        """Checksum hardware is O(n) vs the O(n^2) array."""
        small = area_overhead(64, WS, ProtectionScheme.STATISTICAL)
        large = area_overhead(512, WS, ProtectionScheme.STATISTICAL)
        assert large < small

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            array_area_um2(0, WS)


class TestPowerModel:
    def test_power_scales_with_voltage_squared(self):
        full = array_power_mw(128, WS, voltage=0.9)
        low = array_power_mw(128, WS, voltage=0.45)
        # dynamic part scales 4x; leakage does not, so ratio slightly < 4
        assert 3.0 < full / low <= 4.0

    @pytest.mark.parametrize("dataflow", [WS, OS])
    def test_statistical_power_overhead_matches_paper_ballpark(self, dataflow):
        """Paper: 1.79-1.82% power overhead at 256x256."""
        overhead = power_overhead(256, dataflow, ProtectionScheme.STATISTICAL)
        assert 0.012 < overhead < 0.025

    def test_power_overhead_exceeds_area_overhead(self):
        """Checksum logic toggles more than the average PE (accumulates
        every cycle), so power overhead > area overhead — as in the paper
        (1.79% power vs 1.42% area)."""
        a = area_overhead(256, WS, ProtectionScheme.STATISTICAL)
        p = power_overhead(256, WS, ProtectionScheme.STATISTICAL)
        assert p > a

    def test_overhead_report_structure(self):
        rows = overhead_report(128)
        assert len(rows) == 8  # 2 dataflows x 4 schemes
        unprotected = [r for r in rows if r.scheme == "no-protection"]
        assert all(r.area_overhead_pct == 0.0 for r in unprotected)
        assert all(r.power_mw > 0 for r in rows)


class TestVoltageBerModel:
    def test_anchor_points(self):
        model = VoltageBerModel()
        assert model.ber(0.84) == pytest.approx(1e-8)
        assert model.ber(0.60) == pytest.approx(1e-2)

    def test_monotone_decreasing_in_voltage(self):
        model = VoltageBerModel()
        voltages = np.linspace(0.55, 0.95, 30)
        bers = [model.ber(v) for v in voltages]
        assert all(x >= y for x, y in zip(bers, bers[1:]))

    def test_floor_and_cap(self):
        model = VoltageBerModel()
        assert model.ber(2.0) == model.ber_floor
        assert model.ber(0.05) == model.ber_cap

    def test_inverse_roundtrip(self):
        model = VoltageBerModel()
        for ber in (1e-7, 1e-5, 1e-3):
            assert model.ber(model.voltage_for_ber(ber)) == pytest.approx(ber)

    def test_energy_scale(self):
        model = VoltageBerModel()
        assert model.energy_scale(0.9) == pytest.approx(1.0)
        assert model.energy_scale(0.45) == pytest.approx(0.25)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            VoltageBerModel(v_hi=0.5, v_lo=0.6)
        with pytest.raises(ValueError):
            VoltageBerModel(ber_hi=1e-2, ber_lo=1e-8)
        with pytest.raises(ValueError):
            VoltageBerModel().ber(-1.0)

    @given(st.floats(min_value=0.3, max_value=1.2))
    @settings(max_examples=100, deadline=None)
    def test_ber_always_valid_probability(self, voltage):
        ber = VoltageBerModel().ber(voltage)
        assert 0.0 < ber <= 0.5
