"""Tests for the fault-injection campaign engine (repro.campaigns)."""

from __future__ import annotations

import json
import math
import os
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.telemetry as telemetry

from repro.campaigns import (
    CONTINUE,
    STOP,
    CampaignSpec,
    ErrorSpec,
    ResultStore,
    SiteSpec,
    StoppingPolicy,
    Trial,
    TrialResult,
    aggregate,
    example_spec,
    export_csv,
    report_table,
    status_table,
)
from repro.campaigns.executor import evaluate_trial, run_campaign
from repro.errors.models import BitFlipModel, MagFreqModel
from repro.errors.sites import Component, SiteFilter, Stage


def _trial(seed: int = 0, ber: float = 1e-3, component: str = "O") -> Trial:
    return Trial(
        model="opt-mini",
        task="perplexity",
        site=SiteSpec.only(components=[component], stages=["prefill"]),
        error=ErrorSpec.bitflip(ber, bits=(30,)),
        seed=seed,
    )


def _result(degradation: float = 0.5) -> TrialResult:
    return TrialResult(
        score=3.0, degradation=degradation, clean_score=2.5, injected_errors=7
    )


def _small_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        name="t-small",
        models=("opt-mini",),
        sites=(SiteSpec.only(components=["K"], stages=["prefill"]),),
        errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
        seeds=(0, 1),
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestSpec:
    def test_grid_expansion_counts(self):
        spec = example_spec()
        trials = spec.expand()
        assert len(trials) == spec.n_trials == 2 * 3 * 3  # sites x errors x seeds

    def test_expansion_is_deterministic(self):
        keys = [t.key for t in example_spec().expand()]
        assert keys == [t.key for t in example_spec().expand()]
        assert len(set(keys)) == len(keys)

    def test_seed_changes_key_but_not_cell(self):
        a, b = _trial(seed=0), _trial(seed=1)
        assert a.key != b.key
        assert a.cell_id == b.cell_id

    def test_any_field_changes_key(self):
        base = _trial()
        assert base.key != _trial(ber=1e-2).key
        assert base.key != _trial(component="K").key

    def test_json_round_trip_preserves_keys(self):
        spec = example_spec()
        clone = CampaignSpec.from_json(spec.to_json())
        assert [t.key for t in clone.expand()] == [t.key for t in spec.expand()]

    def test_from_dict_conveniences(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "conv",
                "models": ["opt-mini"],
                "components": ["O", "K"],
                "stages": ["prefill"],
                "bers": [1e-4, 1e-3],
                "bits": [30],
                "seeds": 3,
                "magfreq": {"mags": [16], "freqs": [1, 4]},
                "stopping": {"min_seeds": 2, "rel_tol": 0.5},
            }
        )
        assert len(spec.sites) == 2
        assert len(spec.errors) == 4  # 2 bitflips + 2 magfreq cells
        assert spec.seeds == (0, 1, 2)
        assert spec.stopping == StoppingPolicy(min_seeds=2, rel_tol=0.5)

    def test_validation_rejects_unknowns(self):
        with pytest.raises(KeyError):
            _small_spec(models=("gpt-17",))
        with pytest.raises(KeyError):
            _small_spec(tasks=("jeopardy",))
        with pytest.raises(KeyError):
            _small_spec(methods=("magic",))

    def test_bitflip_without_ber_needs_voltage(self):
        with pytest.raises(ValueError):
            _small_spec(errors=(ErrorSpec.bitflip(None),))
        spec = _small_spec(errors=(ErrorSpec.bitflip(None),), voltages=(0.7,))
        assert spec.expand()[0].voltage == 0.7

    def test_voltage_axis_rejects_explicit_ber(self):
        # a voltage would silently override the stated BER — must not validate
        with pytest.raises(ValueError):
            _small_spec(voltages=(0.7,))  # default error has ber=1e-3
        with pytest.raises(ValueError):
            _small_spec(errors=(ErrorSpec.magfreq(16, 4),), voltages=(0.7,))
        with pytest.raises(ValueError):
            _small_spec(errors=(ErrorSpec.bitflip(None),), voltages=(0.7, None))

    def test_expand_drops_duplicate_axis_values(self):
        spec = _small_spec(seeds=(0, 0, 1))
        trials = spec.expand()
        assert len(trials) == spec.n_trials == 2
        assert len({t.key for t in trials}) == 2

    def test_site_spec_canonicalizes_listing_order(self):
        a = SiteSpec.only(components=["O", "FC2"], stages=["prefill", "decode"])
        b = SiteSpec.only(components=["FC2", "O"], stages=["decode", "prefill"])
        assert a == b
        assert _trial().key == _trial().key  # sanity: keys are stable

    def test_site_spec_filter_round_trip(self):
        site_filter = SiteFilter.only(
            layers=[1, 0], components=[Component.O, Component.K], stages=[Stage.PREFILL]
        )
        spec = SiteSpec.from_filter(site_filter)
        assert spec.layers == (0, 1)
        assert spec.components == ("K", "O")
        back = spec.to_filter()
        assert back.layers == site_filter.layers
        assert back.components == site_filter.components
        assert back.stages == site_filter.stages
        assert SiteSpec.from_filter(None).to_filter().matches is not None

    def test_error_spec_rejects_invalid_fields_eagerly(self):
        with pytest.raises(ValueError):
            ErrorSpec.bitflip(1e-3, bits=(40,))  # BitFlipModel needs 0 <= b < 32
        with pytest.raises(ValueError):
            ErrorSpec.magfreq(16, 4, sign=2)
        with pytest.raises(ValueError):
            ErrorSpec.magfreq(-1, 4)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown campaign spec keys"):
            CampaignSpec.from_dict(
                {"name": "x", "models": ["opt-mini"], "seed": 3}  # typo for "seeds"
            )

    def test_error_spec_builds_models(self):
        flip = ErrorSpec.bitflip(1e-3, bits=(30,)).build()
        assert isinstance(flip, BitFlipModel) and flip.bits == (30,)
        derived = ErrorSpec.bitflip(None).build(ber=1e-4)
        assert isinstance(derived, BitFlipModel) and derived.ber == 1e-4
        mf = ErrorSpec.magfreq(16, 4).build()
        assert isinstance(mf, MagFreqModel) and (mf.mag, mf.freq) == (16, 4)
        assert ErrorSpec.clean().build() is None


class TestStopping:
    def test_needs_min_seeds_first(self):
        policy = StoppingPolicy(min_seeds=3)
        assert policy.decide([1.0, 1.0]) == CONTINUE

    def test_constant_stream_stops_at_min_seeds(self):
        policy = StoppingPolicy(min_seeds=3, rel_tol=0.1)
        assert policy.decide([0.5, 0.5, 0.5]) == STOP

    def test_noisy_stream_continues(self):
        policy = StoppingPolicy(min_seeds=3, rel_tol=0.1)
        assert policy.decide([0.1, 2.0, 0.9]) == CONTINUE

    def test_max_seeds_caps_noise(self):
        policy = StoppingPolicy(min_seeds=2, max_seeds=4, rel_tol=1e-9)
        noisy = [0.1, 5.0, 0.2, 4.0]
        assert policy.decide(noisy[:3]) == CONTINUE
        assert policy.decide(noisy) == STOP

    def test_abs_tol_dominates_near_zero_means(self):
        policy = StoppingPolicy(min_seeds=2, rel_tol=0.0, abs_tol=1.0)
        assert policy.decide([0.01, -0.01, 0.0]) == STOP

    def test_half_width_shrinks_with_n(self):
        policy = StoppingPolicy()
        wide = policy.half_width([0.0, 1.0])
        narrow = policy.half_width([0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0])
        assert math.isinf(policy.half_width([1.0]))
        assert narrow < wide

    def test_validation(self):
        with pytest.raises(ValueError):
            StoppingPolicy(min_seeds=1)
        with pytest.raises(ValueError):
            StoppingPolicy(min_seeds=3, max_seeds=2)
        with pytest.raises(ValueError):
            StoppingPolicy(confidence=1.5)


class TestStore:
    def test_add_get_contains(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            trial = _trial()
            assert trial.key not in store
            store.add(trial, _result())
            assert trial.key in store and len(store) == 1
            record = store.get(trial.key)
            assert record.trial == trial
            assert record.result.degradation == 0.5

    def test_duplicate_add_is_noop(self, tmp_path):
        directory = tmp_path / "s"
        with ResultStore(directory) as store:
            store.add(_trial(), _result(0.1))
            store.add(_trial(), _result(0.9))  # same key: first write wins
            assert len(store) == 1
            assert store.get(_trial().key).result.degradation == 0.1
        assert len((directory / "results.jsonl").read_text().splitlines()) == 1

    def test_persists_across_reopen(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.add(_trial(0), _result(0.1))
            store.add(_trial(1), _result(0.2))
        with ResultStore(tmp_path / "s") as store:
            assert len(store) == 2
            assert {r.result.degradation for r in store.records()} == {0.1, 0.2}

    def test_index_rebuilt_from_log(self, tmp_path):
        directory = tmp_path / "s"
        with ResultStore(directory) as store:
            store.add(_trial(0), _result())
            store.add(_trial(1), _result())
        (directory / "index.sqlite").unlink()
        with ResultStore(directory) as store:
            assert len(store) == 2

    def test_torn_trailing_line_ignored(self, tmp_path):
        directory = tmp_path / "s"
        with ResultStore(directory) as store:
            store.add(_trial(0), _result())
        with (directory / "results.jsonl").open("a") as handle:
            handle.write('{"key": "abc", "trial": {"mod')  # simulated crash
        (directory / "index.sqlite").unlink()
        with ResultStore(directory) as store:
            assert len(store) == 1
            assert _trial(0).key in store

    def test_cell_records_group_seeds(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.add(_trial(0), _result(0.1))
            store.add(_trial(1), _result(0.3))
            store.add(_trial(0, component="K"), _result(0.0))
            cell = _trial(0).cell_id
            assert [r.result.degradation for r in store.cell_records(cell)] == [0.1, 0.3]

    def test_double_ingest_race_caught_under_lock(self, tmp_path, monkeypatch):
        """Two writers racing one key: both pass the unlocked membership
        check, but the re-check under the ingest lock sees the winner's
        commit (WAL cross-connection visibility) and drops the loser's
        append. Simulated deterministically by handing writer B a stale
        first membership answer."""
        directory = tmp_path / "s"
        store_a = ResultStore(directory)
        store_b = ResultStore(directory)
        try:
            store_a.add(_trial(), _result(0.1))  # writer A wins the race
            stale = []
            orig = ResultStore.__contains__

            def racy(self, key):
                if self is store_b and not stale:
                    stale.append(key)
                    return False  # pre-lock check ran before A's commit
                return orig(self, key)

            monkeypatch.setattr(ResultStore, "__contains__", racy)
            dupes = telemetry.METRICS.counter("store.duplicate_ingests").value
            store_b.add(_trial(), _result(0.9))
            assert stale  # the stale fast path was actually exercised
            assert (
                telemetry.METRICS.counter("store.duplicate_ingests").value
                == dupes + 1
            )
        finally:
            store_a.close()
            store_b.close()
        assert len((directory / "results.jsonl").read_text().splitlines()) == 1
        with ResultStore(directory) as store:
            assert len(store) == 1
            assert store.get(_trial().key).result.degradation == 0.1

    def test_two_process_ingest_stays_duplicate_free(self, tmp_path):
        """The regression the flock exists for: two *processes* streaming
        the same keys into one store directory must never double-append —
        the log's line count must equal the key count afterwards."""
        directory = tmp_path / "s"
        script = (
            "import sys, time\n"
            "from repro.campaigns import ErrorSpec, SiteSpec, Trial, TrialResult\n"
            "from repro.campaigns.store import ResultStore\n"
            "directory, start = sys.argv[1], float(sys.argv[2])\n"
            "trials = [Trial(model='opt-mini', task='perplexity',\n"
            "                site=SiteSpec.only(components=['O'], stages=['prefill']),\n"
            "                error=ErrorSpec.bitflip(1e-3, bits=(30,)), seed=s)\n"
            "          for s in range(25)]\n"
            "with ResultStore(directory) as store:\n"
            "    while time.time() < start:\n"
            "        time.sleep(0.005)\n"
            "    for t in trials:\n"
            "        store.add(t, TrialResult(score=3.0, degradation=0.5,\n"
            "                                 clean_score=2.5))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parent.parent / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        start = str(time.time() + 1.5)  # barrier: both loops begin together
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(directory), start],
                env=env, stderr=subprocess.PIPE, text=True,
            )
            for _ in range(2)
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
        lines = (directory / "results.jsonl").read_text().splitlines()
        assert len(lines) == 25
        assert len({json.loads(line)["key"] for line in lines}) == 25
        with ResultStore(directory) as store:
            assert len(store) == 25

    def test_slow_readonly_reader_never_blocks_writer(self, tmp_path):
        """`campaign status/watch` against a store a broker is writing (the
        remote-fleet deployment, DESIGN.md §14): the documented read path is
        a `mode=ro` URI connection, and under WAL even a reader that holds
        its snapshot open across many writer commits neither blocks the
        writer nor sees torn state."""
        from repro.campaigns.progress import read_latest_progress

        directory = tmp_path / "s"
        with ResultStore(directory) as store:
            store.add(_trial(0), _result(0.1))
            reader = sqlite3.connect(
                f"file:{directory / 'index.sqlite'}?mode=ro", uri=True
            )
            try:
                reader.execute("BEGIN")  # slow reader: snapshot held open
                assert reader.execute(
                    "SELECT COUNT(*) FROM results"
                ).fetchone() == (1,)
                for seed in range(1, 6):  # writer streams on, unblocked
                    store.add(_trial(seed), _result(0.2))
                store.write_progress({"name": "t", "state": "running"})
                # the open snapshot still reads its original state...
                assert reader.execute(
                    "SELECT COUNT(*) FROM results"
                ).fetchone() == (1,)
            finally:
                reader.close()
            # ...and a fresh read-only open sees everything committed
            assert read_latest_progress(directory)["state"] == "running"
            with pytest.raises(sqlite3.OperationalError):
                sqlite3.connect(
                    f"file:{directory / 'index.sqlite'}?mode=ro", uri=True
                ).execute("INSERT INTO progress (ts, payload) VALUES (1, 'x')")

    def test_wal_mode_and_covering_index(self, tmp_path):
        """The index runs in WAL mode with a covering key index, so the
        parent's streamed writes don't stall lane-pack result drains."""
        with ResultStore(tmp_path / "s") as store:
            (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
            assert mode.lower() == "wal"
            indexes = {
                row[1] for row in store._conn.execute("PRAGMA index_list(results)")
            }
            assert "results_key_covering" in indexes
            # record fetches by key are answered from the covering index
            # alone (no table-row fetch) — the query ResultStore.get runs
            (plan,) = store._conn.execute(
                "EXPLAIN QUERY PLAN SELECT record FROM results "
                "INDEXED BY results_key_covering WHERE key = 'x'"
            ).fetchall()
            assert "COVERING INDEX results_key_covering" in plan[-1]

    def test_write_throughput_sustains_streamed_drains(self, tmp_path):
        """Streamed single-record writes must keep up with a draining lane
        pack: 200 writes well under a second of SQLite work apiece. The
        bound is deliberately loose (CI disks fsync slowly); it exists to
        catch a reintroduced full-database sync per write, which is an
        order of magnitude off."""
        n = 200
        with ResultStore(tmp_path / "s") as store:
            start = time.perf_counter()
            for seed in range(n):
                store.add(_trial(seed), _result(0.1))
            elapsed = time.perf_counter() - start
            assert len(store) == n
        writes_per_s = n / elapsed
        assert writes_per_s > 20, f"store writes too slow: {writes_per_s:.1f}/s"

    def test_lines_carry_matching_crc(self, tmp_path):
        from repro.campaigns.store import _line_crc

        directory = tmp_path / "s"
        with ResultStore(directory) as store:
            store.add(_trial(0), _result(0.1))
            store.add(_trial(1), _result(0.2))
        for line in (directory / "results.jsonl").read_text().splitlines():
            payload = json.loads(line)
            assert payload["crc"] == _line_crc(payload)

    def test_crc_mismatch_skipped_with_warning_and_counter(
        self, tmp_path, caplog
    ):
        import logging

        import repro.telemetry as telemetry

        directory = tmp_path / "s"
        with ResultStore(directory) as store:
            store.add(_trial(0), _result(0.1))
            store.add(_trial(1), _result(0.2))
        log = directory / "results.jsonl"
        first, second = log.read_text().splitlines()
        # valid JSON, wrong content for its CRC: bit rot, not a torn write
        log.write_text(first.replace('"degradation": 0.1', '"degradation": 9.9')
                       + "\n" + second + "\n")
        (directory / "index.sqlite").unlink()
        corrupt = telemetry.METRICS.counter("store.corrupt_lines").value
        with caplog.at_level(logging.WARNING, logger="repro.campaigns.store"):
            with ResultStore(directory) as store:
                assert len(store) == 1
                assert _trial(1).key in store and _trial(0).key not in store
        assert any("CRC mismatch" in r.message for r in caplog.records)
        assert telemetry.METRICS.counter("store.corrupt_lines").value > corrupt

    def test_legacy_lines_without_crc_still_load(self, tmp_path):
        directory = tmp_path / "s"
        with ResultStore(directory) as store:
            store.add(_trial(0), _result(0.1))
        log = directory / "results.jsonl"
        payload = json.loads(log.read_text())
        del payload["crc"]
        log.write_text(json.dumps(payload) + "\n")
        (directory / "index.sqlite").unlink()
        with ResultStore(directory) as store:
            assert len(store) == 1

    def test_fsync_opt_out(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_FSYNC", "0")
        with ResultStore(tmp_path / "s") as store:
            assert store._fsync is False
            store.add(_trial(0), _result(0.1))  # still flushed, just not synced
        with ResultStore(tmp_path / "s") as store:
            assert len(store) == 1

    def test_quarantine_round_trip_and_partial_clear(self, tmp_path):
        directory = tmp_path / "s"
        with ResultStore(directory) as store:
            store.quarantine(_trial(0), {"error": "E0", "kind": "transient",
                                         "attempts": 3})
            store.quarantine(_trial(1), {"error": "E1", "kind": "deterministic",
                                         "attempts": 3})
            assert store.quarantined_keys() == {_trial(0).key, _trial(1).key}
            assert store.clear_quarantine({_trial(0).key}) == 1
            assert store.quarantined_keys() == {_trial(1).key}
        # survives reopen and index rebuild, like results
        (directory / "index.sqlite").unlink()
        with ResultStore(directory) as store:
            assert store.quarantined_keys() == {_trial(1).key}
            (record,) = store.quarantined_records()
            assert record["failure"]["kind"] == "deterministic"
            assert "ts" in record["failure"]


class TestExecutor:
    def test_evaluate_trial_matches_direct_run(self, opt_evaluator):
        from repro.errors.injector import ErrorInjector

        trial = _trial(seed=3)
        result = evaluate_trial(trial, opt_evaluator)
        injector = ErrorInjector(
            BitFlipModel(1e-3, bits=(30,)),
            SiteFilter.only(components=[Component.O], stages=[Stage.PREFILL]),
            seed=3,
        )
        expected = opt_evaluator.run(injector)
        assert result.score == pytest.approx(expected)
        assert result.degradation == pytest.approx(opt_evaluator.degradation(expected))
        assert result.injected_errors == injector.stats.injected_errors

    def test_serial_campaign_and_dedup(self, tmp_path, opt_bundle):
        spec = _small_spec()
        with ResultStore(tmp_path / "c") as store:
            first = run_campaign(spec, store, workers=0)
            assert (first.executed, first.cached) == (2, 0)
            again = run_campaign(spec, store, workers=0)
            assert (again.executed, again.cached) == (0, 2)

    def test_resume_skips_completed_trials(self, tmp_path, opt_bundle):
        full = _small_spec(seeds=(0, 1, 2))
        partial = _small_spec(seeds=(0,))
        with ResultStore(tmp_path / "c") as store:
            run_campaign(partial, store, workers=0)
            report = run_campaign(full, store, workers=0)
            assert (report.executed, report.cached) == (2, 1)

    def test_early_stopping_skips_stable_cells(self, tmp_path, opt_bundle):
        spec = _small_spec(
            seeds=tuple(range(6)),
            stopping=StoppingPolicy(min_seeds=2, rel_tol=10.0, abs_tol=10.0),
        )
        with ResultStore(tmp_path / "c") as store:
            report = run_campaign(spec, store, workers=0)
        assert report.executed == 2
        assert report.skipped == 4
        assert report.stopped_cells == 1

    def test_stopping_decision_survives_resume(self, tmp_path, opt_bundle):
        spec = _small_spec(
            seeds=tuple(range(6)),
            stopping=StoppingPolicy(min_seeds=2, rel_tol=10.0, abs_tol=10.0),
        )
        with ResultStore(tmp_path / "c") as store:
            run_campaign(spec, store, workers=0)
            report = run_campaign(spec, store, workers=0)
            assert (report.executed, report.cached, report.skipped) == (0, 2, 4)

    def test_parallel_campaign(self, tmp_path, opt_bundle):
        spec = _small_spec(seeds=(0, 1, 2, 3))
        with ResultStore(tmp_path / "c") as store:
            report = run_campaign(spec, store, workers=2)
            assert report.executed == 4
            assert run_campaign(spec, store, workers=2).cached == 4

    def test_method_axis(self, tmp_path, opt_bundle):
        spec = _small_spec(methods=("none", "classical-abft", "dmr"))
        with ResultStore(tmp_path / "c") as store:
            report = run_campaign(spec, store, workers=0)
            assert report.executed == 6
            by_method = {}
            for record in store.records():
                by_method.setdefault(record.trial.method, []).append(record)
        # exact-correction baselines report the fault-free metric
        for record in by_method["dmr"]:
            assert record.result.degradation == pytest.approx(0.0)

    def test_end_to_end_mini_campaign(self, tmp_path, opt_bundle):
        """Serial mini-campaign on opt-mini: 2 components x 2 BERs x 2 seeds."""
        spec = CampaignSpec(
            name="mini-e2e",
            models=("opt-mini",),
            sites=(
                SiteSpec.only(components=["O"], stages=["prefill"]),
                SiteSpec.only(components=["K"], stages=["prefill"]),
            ),
            errors=tuple(ErrorSpec.bitflip(b, bits=(30,)) for b in (1e-3, 1e-2)),
            seeds=(0, 1),
        )
        with ResultStore(tmp_path / "c") as store:
            report = run_campaign(spec, store, workers=0)
            assert (report.total, report.executed, report.failed) == (8, 8, 0)
            summaries = aggregate(store, spec)
        assert len(summaries) == 4
        assert all(s.n == 2 for s in summaries)
        worst = {s.trial.site.components[0]: s.mean_degradation for s in summaries
                 if s.trial.error.ber == 1e-2}
        # paper Insight 1 still visible through the campaign path
        assert worst["O"] > worst["K"]


class TestReport:
    def _fill(self, store):
        store.add(_trial(0), _result(0.2))
        store.add(_trial(1), _result(0.4))
        store.add(_trial(0, component="K"), _result(0.0))

    def test_aggregate_statistics(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            self._fill(store)
            summaries = aggregate(store)
        assert len(summaries) == 2
        o_cell = next(s for s in summaries if s.site.startswith("O"))
        assert o_cell.n == 2
        assert o_cell.mean_degradation == pytest.approx(0.3)
        assert o_cell.std_degradation == pytest.approx(math.sqrt(0.02))
        assert o_cell.stderr == pytest.approx(math.sqrt(0.02 / 2))
        assert o_cell.max_degradation == 0.4

    def test_aggregate_filters_by_spec(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            self._fill(store)
            store.add(_trial(9, ber=0.5), _result(9.9))  # outside the spec grid
            spec = _small_spec(
                sites=(SiteSpec.only(components=["O"], stages=["prefill"]),)
            )
            summaries = aggregate(store, spec)
        assert len(summaries) == 1 and summaries[0].n == 2

    def test_report_and_status_tables(self, tmp_path):
        spec = _small_spec(
            sites=(SiteSpec.only(components=["O"], stages=["prefill"]),),
            seeds=(0, 1, 2),
        )
        with ResultStore(tmp_path / "s") as store:
            self._fill(store)
            report = report_table(store, spec)
            status = status_table(spec, store)
        assert "O/prefill" in report and "bitflip:0.001" in report
        assert "2/3" in status and "partial" in status

    def test_export_csv(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            self._fill(store)
            rows = export_csv(store, tmp_path / "out.csv")
        lines = (tmp_path / "out.csv").read_text().strip().splitlines()
        assert rows == 3 and len(lines) == 4
        assert lines[0].startswith("key,cell,model,task,site,error")


class TestCampaignCli:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        spec = _small_spec(name="cli-camp")
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        return path

    def test_example_emits_valid_spec(self, capsys):
        from repro.cli import main

        assert main(["campaign", "example"]) == 0
        payload = json.loads(capsys.readouterr().out)
        spec = CampaignSpec.from_dict(payload)
        assert spec.n_trials == 18

    def test_run_status_report(self, spec_file, tmp_path, opt_bundle, capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        assert main(["campaign", "run", "--spec", str(spec_file), "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2 executed" in out
        assert main(["campaign", "run", "--spec", str(spec_file), "--store", store]) == 0
        assert "2 cached, 0 executed" in capsys.readouterr().out
        assert main(["campaign", "status", "--spec", str(spec_file), "--store", store]) == 0
        assert "2/2" in capsys.readouterr().out
        csv_path = str(tmp_path / "out.csv")
        assert main(["campaign", "report", "--spec", str(spec_file),
                     "--store", store, "--csv", csv_path]) == 0
        assert "wrote 2 rows" in capsys.readouterr().out

    def test_report_costs_flag(self, tmp_path, opt_bundle, capsys):
        from repro.cli import main
        from repro.dispatch import CostSpec

        spec = _small_spec(name="cli-cost-camp", seeds=(0,), cost=CostSpec(size=32))
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(spec.to_json())
        store = str(tmp_path / "store")
        assert main(["campaign", "run", "--spec", str(spec_file), "--store", store]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "--spec", str(spec_file),
                     "--store", store]) == 0
        assert "cycles" not in capsys.readouterr().out
        csv_path = str(tmp_path / "out.csv")
        assert main(["campaign", "report", "--spec", str(spec_file),
                     "--store", store, "--costs", "--csv", csv_path]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "energy (uJ)" in out
        header, row = Path(csv_path).read_text().strip().splitlines()[:2]
        cycles = int(row.split(",")[header.split(",").index("cycles")])
        assert cycles > 0
