"""Tests for the distributed campaign fabric (repro.fabric).

Layers under test, bottom up: the versioned JSON protocol (strict decode),
the lease table + journal (steals, expiry, late/duplicate delivery
verdicts, crash replay), the FabricRunner driven by a scripted in-test
worker (the S4 lease edge cases), the broker HTTP service (restart-resume
with zero re-execution, degrade-to-local), and the acceptance run: a
broker plus three real worker subprocesses under network chaos, a worker
SIGKILL, and one broker restart, completing bit-identical to a fault-free
single-box run.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.telemetry as telemetry
from repro.campaigns import ErrorSpec, SiteSpec
from repro.campaigns import chaos as chaos_mod
from repro.campaigns.chaos import ChaosSpec
from repro.campaigns.executor import _run_pack_payload, run_campaign
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore
from repro.campaigns.supervise import PackDone, PackLost, SuperviseConfig
from repro.fabric import protocol
from repro.fabric.broker import BrokerConfig, FabricBroker, FabricRunner
from repro.fabric.leases import JOURNAL_NAME, LeaseJournal, LeaseTable, pack_signature
from repro.fabric.worker import BrokerTransport, backoff_delay

FAST = SuperviseConfig(
    trial_timeout=30.0,
    max_retries=1,
    max_requeues=3,
    backoff_base_s=0.0,
    backoff_cap_s=0.0,
    poll_interval_s=0.02,
)


@pytest.fixture(autouse=True)
def _no_leaked_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    yield
    chaos_mod.install(None)


def _counter(name):
    return telemetry.METRICS.counter(name).value


def _payload(key: str, attempt: int = 0) -> dict:
    return {"trials": [{"key": key, "attempt": attempt}], "pack_attempt": 0}


# ------------------------------------------------------------------ protocol
class TestProtocol:
    MESSAGES = [
        protocol.Register(worker_id="w1", host="h", pid=7),
        protocol.Registered(ok=True, heartbeat_s=1.5),
        protocol.Registered(ok=False, reason="version"),
        protocol.LeaseRequest(worker_id="w1"),
        protocol.LeaseGrant(lease_id="L1-1", pack={"trials": []}, deadline_s=3.0),
        protocol.NoWork(drain=True, retry_after_s=0.2),
        protocol.Heartbeat(worker_id="w1", lease_ids=("L1-1",)),
        protocol.HeartbeatAck(known=("L1-1",), drain=False),
        protocol.ResultDelivery(
            worker_id="w1", lease_id="L1-1", outcomes=({"key": "k"},)
        ),
        protocol.ResultAck(accepted=True, quarantined=()),
        protocol.QuarantineNotice(key="k", cell="c", error="boom", attempts=3),
    ]

    def test_every_kind_round_trips(self):
        for msg in self.MESSAGES:
            envelope = protocol.encode(msg)
            assert envelope["v"] == protocol.PROTOCOL_VERSION
            assert protocol.decode(envelope) == msg

    def test_envelopes_are_json_safe(self):
        for msg in self.MESSAGES:
            assert protocol.decode(json.loads(json.dumps(protocol.encode(msg)))) == msg

    def test_decode_is_strict(self):
        ok = protocol.encode(protocol.Register(worker_id="w"))
        for mutate in (
            lambda e: e.pop("v"),                      # missing version
            lambda e: e.update(v=99),                  # wrong version
            lambda e: e.update(kind="nope"),           # unknown kind
            lambda e: e.pop("kind"),                   # missing kind
            lambda e: e.pop("worker_id"),              # missing required field
            lambda e: e.update(worker_id=3),           # wrong field type
            lambda e: e.update(surprise=1),            # unknown field
        ):
            envelope = dict(ok)
            mutate(envelope)
            with pytest.raises(protocol.ProtocolError):
                protocol.decode(envelope)
        with pytest.raises(protocol.ProtocolError):
            protocol.decode("not a dict")

    def test_bool_is_not_a_number(self):
        envelope = protocol.encode(protocol.NoWork())
        envelope["retry_after_s"] = True
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(envelope)


# -------------------------------------------------------------------- leases
class TestLeases:
    def _table(self, tmp_path, max_requeues=3, ttl=5.0, now=None):
        journal = LeaseJournal(tmp_path / JOURNAL_NAME)
        return (
            LeaseTable(
                journal,
                max_requeues=max_requeues,
                heartbeat_ttl_s=ttl,
                backoff=FAST.backoff,
                now=now or time.monotonic,
            ),
            journal,
        )

    def test_pack_signature_is_content_keyed(self):
        a = {"trials": [{"key": "k1"}, {"key": "k2"}], "pack_attempt": 0}
        b = {"trials": [{"key": "k2"}, {"key": "k1"}], "pack_attempt": 3}
        assert pack_signature(a) == pack_signature(b)  # order/attempt-count free
        retry = {"trials": [{"key": "k1", "attempt": 1}, {"key": "k2"}]}
        assert pack_signature(retry) != pack_signature(a)  # retries are distinct

    def test_heartbeat_steal_then_late_winner_and_duplicate(self, tmp_path):
        clock = [100.0]
        table, _ = self._table(tmp_path, now=lambda: clock[0])
        steals = _counter("fabric.lease_steals")
        table.submit(1, _payload("t1"), deadline_s=60.0)
        lease1 = table.grant("w1").lease.lease_id
        clock[0] += 3.0
        assert table.heartbeat("w1", (lease1,)) == (lease1,)
        clock[0] += 10.0  # silence past the TTL: the lease is stolen
        assert table.sweep() == []  # requeued, not lost
        assert _counter("fabric.lease_steals") == steals + 1
        regrant = table.grant("w2")
        lease2 = regrant.lease.lease_id
        assert regrant.payload["pack_attempt"] == 1
        # The original holder finishes late while the pack is outstanding:
        # its outcomes win, and the rival grant is voided.
        verdict, pack = table.deliver(lease1, "w1")
        assert verdict == "late" and pack is not None
        assert table.deliver(lease2, "w2") == ("duplicate", None)
        assert table.deliver(lease1, "w1") == ("duplicate", None)
        assert table.deliver("L9-99", "w9") == ("unknown", None)
        assert table.deliver(lease1, "w-imposter") == ("unknown", None)

    def test_deadline_expiry_and_requeue_budget_exhaustion(self, tmp_path):
        clock = [0.0]
        table, _ = self._table(tmp_path, max_requeues=1, now=lambda: clock[0])
        lost_before = _counter("fabric.packs_lost")
        table.submit(1, _payload("t1"), deadline_s=5.0)
        table.grant("w1")
        clock[0] += 6.0  # deadline passes even though heartbeats kept coming
        table.heartbeat("w1", ())
        assert table.sweep() == []  # first expiry: requeue
        table.grant("w1")
        clock[0] += 6.0
        (lost,) = table.sweep()  # budget burned: lost
        assert lost.lost and lost.requeues == 2
        assert _counter("fabric.packs_lost") == lost_before + 1

    def test_journal_replay_resumes_epoch_requeues_and_stale_leases(self, tmp_path):
        clock = [0.0]
        table, journal = self._table(tmp_path, now=lambda: clock[0])
        table.submit(1, _payload("t1"), deadline_s=60.0)
        lease1 = table.grant("w1").lease.lease_id  # granted, then broker "crashes"
        clock[0] += 10.0
        table.sweep()  # steal: requeue recorded for t1's pack
        lease1b = table.grant("w1").lease.lease_id  # re-grant of t1's pack
        table.submit(2, _payload("t2"), deadline_s=60.0)  # never granted
        # no journal.close(): simulates the broker dying with leases open
        journal2 = LeaseJournal(tmp_path / JOURNAL_NAME)
        assert journal2.epoch == 2  # lease ids can never collide across boots
        table2 = LeaseTable(
            journal2, max_requeues=3, heartbeat_ttl_s=5.0, backoff=FAST.backoff,
        )
        # resubmitted packs carry their requeue budget across the restart
        carried = _counter("fabric.requeues_carried")
        pack1 = table2.submit(1, _payload("t1"), deadline_s=60.0)
        assert pack1.requeues == 1 and pack1.payload["pack_attempt"] == 1
        assert _counter("fabric.requeues_carried") == carried + 1
        assert table2.submit(2, _payload("t2"), deadline_s=60.0).requeues == 0
        # both pre-crash lease ids are stale but sig-matched: a worker that
        # kept running through the crash still lands its result exactly once
        verdict, pack = table2.deliver(lease1b, "w1")
        assert verdict == "late" and pack is not None
        assert table2.deliver(lease1, "w1") == ("duplicate", None)

    def test_clean_close_clears_journal_torn_tail_ignored(self, tmp_path):
        table, journal = self._table(tmp_path)
        table.submit(1, _payload("t1"), deadline_s=60.0)
        lease = table.grant("w1").lease.lease_id
        table.deliver(lease, "w1")
        path = tmp_path / JOURNAL_NAME
        with path.open("a") as handle:
            handle.write('{"e": "grant", "lease": "L1-')  # torn crash tail
        replayed = LeaseJournal(path)  # parses past the torn line
        assert pack_signature(_payload("t1")) in replayed.finished_sigs
        replayed.close(clear=True)
        assert not path.exists()


# --------------------------------------------------- runner edge cases (S4)
class TestFabricRunnerEdgeCases:
    def _runner(self, tmp_path, now, ttl=2.0, **kwargs):
        kwargs.setdefault("config", FAST)
        kwargs.setdefault("local_workers", 0)
        return FabricRunner(
            tmp_path, heartbeat_s=1.0, heartbeat_ttl_s=ttl, now=now, **kwargs
        )

    def test_steal_with_idempotent_double_ingest(self, tmp_path):
        """Heartbeat lost -> steal -> both the original holder and the thief
        deliver. Exactly one PackDone surfaces; the second delivery is
        acked as a duplicate and never double-counted."""
        clock = [0.0]
        runner = self._runner(tmp_path, now=lambda: clock[0])
        try:
            runner.submit(_payload("t1"), deadline_s=60.0)
            grant1 = runner.handle(protocol.LeaseRequest(worker_id="w1"))
            assert isinstance(grant1, protocol.LeaseGrant)
            clock[0] += 10.0  # w1 goes silent; the sweep inside next_event steals
            assert runner.next_event() is None
            grant2 = runner.handle(protocol.LeaseRequest(worker_id="w2"))
            assert isinstance(grant2, protocol.LeaseGrant)
            assert grant2.pack["pack_attempt"] == 1
            ack1 = runner.handle(
                protocol.ResultDelivery(
                    worker_id="w1", lease_id=grant1.lease_id,
                    outcomes=({"key": "t1", "who": "w1"},),
                )
            )
            assert ack1.accepted  # late winner: kept
            ack2 = runner.handle(
                protocol.ResultDelivery(
                    worker_id="w2", lease_id=grant2.lease_id,
                    outcomes=({"key": "t1", "who": "w2"},),
                )
            )
            assert not ack2.accepted and ack2.duplicate  # idempotent drop
            event = runner.next_event()
            assert isinstance(event, PackDone)
            assert event.outcomes[0]["who"] == "w1"
            assert runner.outstanding == 0
            assert runner.next_event() is None  # nothing ghosts in later
        finally:
            runner.close()

    def test_late_result_after_expiry_requeue_and_completion_is_dropped(self, tmp_path):
        """Same shape, but the thief wins the race: the original holder's
        even-later delivery must be dropped, not double-ingested."""
        clock = [0.0]
        runner = self._runner(tmp_path, now=lambda: clock[0])
        try:
            runner.submit(_payload("t1"), deadline_s=4.0)
            grant1 = runner.handle(protocol.LeaseRequest(worker_id="w1"))
            clock[0] += 5.0  # absolute deadline expires (heartbeats irrelevant)
            assert runner.next_event() is None
            grant2 = runner.handle(protocol.LeaseRequest(worker_id="w2"))
            ack2 = runner.handle(
                protocol.ResultDelivery(
                    worker_id="w2", lease_id=grant2.lease_id,
                    outcomes=({"key": "t1", "who": "w2"},),
                )
            )
            assert ack2.accepted
            dupes = _counter("fabric.duplicate_results")
            ack1 = runner.handle(
                protocol.ResultDelivery(
                    worker_id="w1", lease_id=grant1.lease_id,
                    outcomes=({"key": "t1", "who": "w1"},),
                )
            )
            assert not ack1.accepted and ack1.duplicate
            assert _counter("fabric.duplicate_results") == dupes + 1
            event = runner.next_event()
            assert isinstance(event, PackDone) and event.outcomes[0]["who"] == "w2"
            assert runner.outstanding == 0
        finally:
            runner.close()

    def test_lost_pack_surfaces_once_budget_burns(self, tmp_path):
        clock = [0.0]
        runner = self._runner(tmp_path, now=lambda: clock[0])
        try:
            runner.submit(_payload("t1"), deadline_s=60.0)
            events = []
            for _ in range(FAST.max_requeues + 1):
                assert isinstance(
                    runner.handle(protocol.LeaseRequest(worker_id="w1")),
                    protocol.LeaseGrant,
                )
                clock[0] += 10.0  # worker dies silently every time
                event = runner.next_event()
                if event is not None:
                    events.append(event)
            assert [type(e) for e in events] == [PackLost]
            assert runner.outstanding == 0
        finally:
            runner.close()

    def test_journal_cleared_only_on_clean_finish(self, tmp_path):
        runner = self._runner(tmp_path, now=time.monotonic)
        runner.submit(_payload("t1"), deadline_s=60.0)
        grant = runner.handle(protocol.LeaseRequest(worker_id="w1"))
        runner.handle(
            protocol.ResultDelivery(
                worker_id="w1", lease_id=grant.lease_id, outcomes=({"key": "t1"},)
            )
        )
        assert isinstance(runner.next_event(), PackDone)
        runner.close()  # clean: every pack accounted for
        assert not (tmp_path / JOURNAL_NAME).exists()

        runner2 = self._runner(tmp_path, now=time.monotonic)
        runner2.submit(_payload("t2"), deadline_s=60.0)
        runner2.abort()
        with pytest.raises(RuntimeError):
            runner2.next_event()
        runner2.close(force=True)  # crash-path: journal survives for resume
        assert (tmp_path / JOURNAL_NAME).exists()

    def test_draining_broker_refuses_new_leases(self, tmp_path):
        runner = self._runner(tmp_path, now=time.monotonic)
        try:
            runner.submit(_payload("t1"), deadline_s=60.0)
            runner.drain()
            reply = runner.handle(protocol.LeaseRequest(worker_id="w1"))
            assert isinstance(reply, protocol.NoWork) and reply.drain
        finally:
            runner.close(force=True)

    def test_register_rejects_wrong_protocol_version(self, tmp_path):
        runner = self._runner(tmp_path, now=time.monotonic)
        try:
            reply = runner.handle(protocol.Register(worker_id="w1", protocol=99))
            assert isinstance(reply, protocol.Registered) and not reply.ok
            assert "unsupported" in reply.reason
        finally:
            runner.close()


# ------------------------------------------------------------------- worker
class TestWorkerBackoff:
    def test_backoff_is_deterministic_capped_exponential_with_jitter(self):
        delays = [backoff_delay(a, "site", base_s=0.2, cap_s=5.0) for a in range(1, 12)]
        assert delays == [
            backoff_delay(a, "site", base_s=0.2, cap_s=5.0) for a in range(1, 12)
        ]
        assert all(0.0 < d <= 2 * 5.0 for d in delays)
        assert backoff_delay(3, "a", base_s=0.2, cap_s=5.0) != backoff_delay(
            3, "b", base_s=0.2, cap_s=5.0
        )


class TestNetChaos:
    def test_net_fault_precedence_and_first_attempt_only(self):
        chaos_mod.install(ChaosSpec(seed=0, net_drop=1.0, net_dup=1.0))
        assert chaos_mod.maybe_net_fault("result", "site") == "drop"
        assert chaos_mod.maybe_net_fault("result", "site", attempt=1) is None
        chaos_mod.install(ChaosSpec(seed=0, net_dup=1.0))
        assert chaos_mod.maybe_net_fault("result", "site") == "dup"
        chaos_mod.install(None)
        assert chaos_mod.maybe_net_fault("result", "site") is None

    def test_compact_aliases_parse(self):
        spec = ChaosSpec.from_string("seed=4,drop=0.1,dup=0.2,delay=0.3,disconnect=0.4")
        assert spec == ChaosSpec(
            seed=4, net_drop=0.1, net_dup=0.2, net_delay=0.3, net_disconnect=0.4
        )


# ----------------------------------------------------------- broker service
def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spec(seeds, **supervise) -> CampaignSpec:
    merged = dict(
        backoff_base_s=0.01, backoff_cap_s=0.05, poll_interval_s=0.02,
    )
    merged.update(supervise)
    return CampaignSpec(
        name="t-fabric",
        models=("opt-mini",),
        sites=(SiteSpec.only(components=["K"], stages=["prefill"]),),
        errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
        seeds=seeds,
        supervise=SuperviseConfig(**merged),
    )


class _ScriptedWorker:
    """In-test worker speaking real HTTP through BrokerTransport, executing
    packs in-process so tests control exactly how many packs it takes."""

    def __init__(self, url: str, worker_id: str):
        self.transport = BrokerTransport(url)
        self.worker_id = worker_id

    def register(self):
        reply = self.transport.send(
            protocol.Register(worker_id=self.worker_id, host="test", pid=os.getpid())
        )
        assert isinstance(reply, protocol.Registered) and reply.ok

    def run_packs(self, count: int, timeout_s: float = 120.0):
        done = 0
        deadline = time.monotonic() + timeout_s
        while done < count:
            assert time.monotonic() < deadline, "scripted worker starved of packs"
            reply = self.transport.send(protocol.LeaseRequest(worker_id=self.worker_id))
            if isinstance(reply, protocol.NoWork):
                time.sleep(0.05)
                continue
            outcomes = _run_pack_payload(dict(reply.pack))
            ack = self.transport.send(
                protocol.ResultDelivery(
                    worker_id=self.worker_id,
                    lease_id=reply.lease_id,
                    outcomes=tuple(outcomes),
                )
            )
            assert ack.accepted
            done += 1
        return done


def _log_lines(store_dir: Path) -> int:
    path = store_dir / "results.jsonl"
    return len(path.read_text().splitlines()) if path.exists() else 0


class TestFabricBroker:
    def test_degrades_to_local_pool_when_no_workers_appear(
        self, tmp_path, opt_bundle
    ):
        fallbacks = _counter("fabric.local_fallbacks")
        broker = FabricBroker(
            tmp_path / "store",
            config=BrokerConfig(local_workers=2, local_grace_s=0.3),
        )
        broker.start()
        try:
            name = broker.submit(_spec(seeds=(0, 1)), lane_width=1)
            report = broker.wait(name, timeout=120)
        finally:
            broker.stop()
        assert report.executed == 2 and report.failed == 0
        assert _counter("fabric.local_fallbacks") == fallbacks + 1
        with ResultStore(tmp_path / "store") as store:
            assert len(store) == 2
        assert not (tmp_path / "store" / JOURNAL_NAME).exists()  # clean finish

    def test_broker_restart_resumes_without_reexecuting_completed_trials(
        self, tmp_path, opt_bundle
    ):
        """S4's restart case end to end: two of four trials complete, the
        broker dies hard (journal survives), a new broker on the same store
        serves the rest — and the resumed campaign re-executes nothing."""
        store_dir = tmp_path / "store"
        spec = _spec(seeds=(0, 1, 2, 3))
        broker1 = FabricBroker(
            store_dir, config=BrokerConfig(local_workers=0, local_grace_s=600.0)
        )
        broker1.start()
        try:
            name = broker1.submit(spec, lane_width=1)
            worker = _ScriptedWorker(broker1.url, "sw-1")
            worker.register()
            worker.run_packs(2)
            deadline = time.monotonic() + 60.0
            while _log_lines(store_dir) < 2:  # both results ingested + stored
                assert time.monotonic() < deadline
                time.sleep(0.02)
        finally:
            broker1.stop(abort=True)
        with pytest.raises(RuntimeError):
            broker1.wait(name, timeout=10)
        assert (store_dir / JOURNAL_NAME).exists()  # crash leaves the journal

        broker2 = FabricBroker(
            store_dir, config=BrokerConfig(local_workers=0, local_grace_s=600.0)
        )
        broker2.start()
        try:
            name = broker2.submit(spec, lane_width=1)
            worker2 = _ScriptedWorker(broker2.url, "sw-2")
            worker2.register()
            worker2.run_packs(2)
            report = broker2.wait(name, timeout=120)
        finally:
            broker2.stop()
        assert (report.cached, report.executed, report.failed) == (2, 2, 0)
        assert _log_lines(store_dir) == 4  # zero re-executed, zero duplicated
        with ResultStore(store_dir) as store:
            assert len(store) == 4
        assert not (store_dir / JOURNAL_NAME).exists()

    def test_status_endpoint_reports_fleet_and_progress(self, tmp_path, opt_bundle):
        import urllib.request

        broker = FabricBroker(
            tmp_path / "store",
            config=BrokerConfig(local_workers=0, local_grace_s=600.0),
        )
        broker.start()
        try:
            name = broker.submit(_spec(seeds=(0,)), lane_width=1)
            worker = _ScriptedWorker(broker.url, "sw-status")
            worker.register()
            worker.run_packs(1)
            broker.wait(name, timeout=120)
            with urllib.request.urlopen(broker.url + "/api/v1/status", timeout=10) as r:
                status = json.loads(r.read())
            with urllib.request.urlopen(broker.url + "/healthz", timeout=10) as r:
                assert r.status == 200
        finally:
            broker.stop()
        assert any(w["id"] == "sw-status" for w in status["fleet"]["workers"])
        progress = status.get("progress")
        assert progress is not None and progress["name"] == "t-fabric"
        # the snapshot embeds the fleet for `campaign watch` rendering
        assert "fleet" in progress


# -------------------------------------------------------------- acceptance
def _canonical_records(directory):
    """Store records keyed by trial with volatile fields zeroed (the
    bit-identical comparison of the chaos acceptance runs)."""
    index = directory / "index.sqlite"
    if index.exists():
        index.unlink()  # force rebuild from the JSONL log
    with ResultStore(directory) as store:
        out = {}
        for record in store.records():
            result = record.result.to_dict()
            result["elapsed_s"] = 0.0
            result["worker"] = 0
            out[record.key] = (record.trial.to_dict(), result)
    return out


def _acceptance_chaos(trial_keys):
    """Pick a chaos seed whose pure-hash decisions provably cover: exactly
    one worker SIGKILL, and every network fault kind on the result sites of
    packs that are *not* the killed one (so each fault fires at a
    predictable attempt-0 site)."""
    for seed in range(5000):
        spec = ChaosSpec(
            seed=seed, kill_workers=0.18,
            net_drop=0.3, net_dup=0.3, net_delay=0.3, net_disconnect=0.3,
            net_delay_s=0.05,
        )
        kills = [k for k in trial_keys if spec.decide("kill_workers", k)]
        if len(kills) != 1:
            continue
        fired = {}
        for key in trial_keys:
            if key in kills:
                continue
            site = f"result:{key}:0"
            for kind, name in chaos_mod.NET_FAULTS:
                if spec.decide(kind, site):
                    fired.setdefault(name, []).append(key)
                    break
        if (
            len(fired.get("disconnect", [])) >= 2  # survives a restart window
            and fired.get("drop")
            and fired.get("dup")
            and fired.get("delay")
        ):
            return spec, kills[0]
    raise AssertionError("no chaos seed covers every fault kind")


class TestFabricAcceptance:
    def test_chaos_fleet_with_broker_restart_is_bit_identical(
        self, tmp_path, opt_bundle
    ):
        """The tentpole acceptance run: a broker and three real worker
        processes under message drops, duplicated deliveries, delays,
        disconnects, one worker SIGKILL, and one hard broker restart
        complete the campaign with zero failures and a store bit-identical
        to a fault-free single-box run — every recovery visible in the
        ``fabric.*`` counters."""
        spec = _spec(seeds=tuple(range(6)), trial_timeout=20.0)
        trial_keys = [t.key for t in spec.expand()]
        chaos, killed_key = _acceptance_chaos(trial_keys)

        with ResultStore(tmp_path / "clean") as store:
            clean = run_campaign(spec, store, workers=0, lane_width=1)
        assert clean.failed == 0 and clean.executed == 6

        store_dir = tmp_path / "chaos"
        port = _free_port()
        config = BrokerConfig(
            port=port, heartbeat_s=0.5, local_workers=2, local_grace_s=45.0,
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parent.parent / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        env["REPRO_CHAOS"] = json.dumps(chaos.to_dict())
        granted = _counter("fabric.leases_granted")
        steals = _counter("fabric.lease_steals")
        expiries = _counter("fabric.lease_expiries")
        requeues = _counter("fabric.requeues")
        dupes = _counter("fabric.duplicate_results")
        late = _counter("fabric.late_results_accepted")

        broker = FabricBroker(store_dir, config=config, chaos=chaos)
        broker.start()
        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "campaign", "worker",
                    "--connect", broker.url,
                ],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            )
            for _ in range(3)
        ]
        try:
            name = broker.submit(spec, lane_width=1)
            deadline = time.monotonic() + 180.0
            while _log_lines(store_dir) < 2:  # partial progress, then crash
                assert time.monotonic() < deadline, "no results before restart"
                time.sleep(0.05)
            broker.stop(abort=True)
            with pytest.raises(RuntimeError):
                broker.wait(name, timeout=15)
            assert (store_dir / JOURNAL_NAME).exists()

            # same port: the surviving workers' reconnect backoff finds it
            broker = FabricBroker(store_dir, config=config, chaos=chaos)
            broker.start()
            name = broker.submit(spec, lane_width=1)
            report = broker.wait(name, timeout=300)
        finally:
            broker.stop()
            for proc in workers:
                proc.send_signal(signal.SIGTERM)
            outputs = []
            for proc in workers:
                try:
                    out, _ = proc.communicate(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    out, _ = proc.communicate()
                outputs.append(out)

        assert report.failed == 0 and report.quarantined == 0, "\n".join(outputs)
        assert report.cached + report.executed == 6
        assert _canonical_records(store_dir) == _canonical_records(
            tmp_path / "clean"
        ), "\n".join(outputs)
        assert not (store_dir / JOURNAL_NAME).exists()  # clean second finish

        # Every recovery is visible, never silent: the SIGKILLed worker's
        # pack was stolen or expired and requeued; at least one duplicated
        # or post-steal delivery was recognized and dropped/absorbed.
        assert _counter("fabric.leases_granted") >= granted + 6
        assert (
            _counter("fabric.lease_steals")
            + _counter("fabric.lease_expiries")
            > steals + expiries
        ), "\n".join(outputs)
        assert _counter("fabric.requeues") > requeues
        assert (
            _counter("fabric.duplicate_results")
            + _counter("fabric.late_results_accepted")
            > dupes + late
        ), "\n".join(outputs)
