"""Batched-engine equivalence tests.

The contract of the batched representation (DESIGN.md section 4): on
fault-free models the batched and single-sequence paths agree **bit-for-bit**
(``assert_array_equal``, no tolerance), each forward issues exactly one
injector call per GemmSite regardless of batch size, and ABFT protection
broadcasts over the batch axis.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft.protectors import ClassicalABFT
from repro.characterization.evaluator import ModelEvaluator
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel
from repro.evalsuite.harness import (
    evaluate_last_token_accuracy,
    evaluate_multiple_choice,
    evaluate_perplexity,
)
from repro.models.quantized import batch_groups


def _sequences(bundle, n, length, key):
    return [bundle.source.sample_batch(1, length, key=f"{key}{i}")[0] for i in range(n)]


@pytest.mark.parametrize("model_fixture", ["opt_quant", "llama_quant"])
class TestBitForBitEquivalence:
    def test_forward_full(self, model_fixture, request):
        model = request.getfixturevalue(model_fixture)
        bundle_name = "opt_bundle" if model_fixture == "opt_quant" else "llama_bundle"
        bundle = request.getfixturevalue(bundle_name)
        seqs = _sequences(bundle, 3, 24, "bfb")
        batched = model.forward_full(np.stack(seqs))
        for i, seq in enumerate(seqs):
            np.testing.assert_array_equal(model.forward_full(seq), batched[i])

    def test_prefill_and_decode(self, model_fixture, request):
        model = request.getfixturevalue(model_fixture)
        vocab = model.config.vocab_size
        batch = np.stack([np.arange(12) % vocab, (np.arange(12) * 3) % vocab])
        logits_b, cache_b = model.prefill(batch)
        assert cache_b.batch == 2 and cache_b.seq_len == 12
        tokens = np.argmax(logits_b, axis=-1)
        decode_b = model.decode_step(tokens, cache_b)
        for i in range(2):
            logits_1, cache_1 = model.prefill(batch[i])
            np.testing.assert_array_equal(logits_1, logits_b[i])
            np.testing.assert_array_equal(
                model.decode_step(int(tokens[i]), cache_1), decode_b[i]
            )

    def test_generate_batch(self, model_fixture, request):
        model = request.getfixturevalue(model_fixture)
        vocab = model.config.vocab_size
        prompts = np.stack([np.arange(8) % vocab, (np.arange(8) * 7) % vocab])
        gen_b = model.generate_batch(prompts, 5)
        assert gen_b.shape == (2, 5)
        for i in range(2):
            np.testing.assert_array_equal(model.generate(prompts[i], 5), gen_b[i])

    def test_sequence_nll_and_choice_logprob(self, model_fixture, request):
        model = request.getfixturevalue(model_fixture)
        bundle_name = "opt_bundle" if model_fixture == "opt_quant" else "llama_bundle"
        bundle = request.getfixturevalue(bundle_name)
        seqs = _sequences(bundle, 3, 20, "nll")
        nlls = model.sequence_nll_batch(np.stack(seqs))
        for i, seq in enumerate(seqs):
            assert model.sequence_nll(seq) == nlls[i]
        contexts = np.stack([s[:14] for s in seqs])
        conts = np.stack([s[14:] for s in seqs])
        lps = model.choice_logprob_batch(contexts, conts)
        for i, seq in enumerate(seqs):
            assert model.choice_logprob(seq[:14], seq[14:]) == lps[i]


class TestInjectorCallParity:
    def test_gemm_calls_per_forward_independent_of_batch(self, opt_quant):
        vocab = opt_quant.config.vocab_size
        counts = {}
        for label, tokens in (
            ("single", np.arange(16) % vocab),
            ("batch4", np.stack([(np.arange(16) + i) % vocab for i in range(4)])),
        ):
            injector = ErrorInjector(BitFlipModel(0.0), seed=0)
            opt_quant.attach(injector, None)
            try:
                opt_quant.forward_full(tokens)
            finally:
                opt_quant.attach(None, None)
            counts[label] = injector.stats.gemm_calls
        assert counts["single"] == counts["batch4"]
        # one call per (layer, component) exactly
        cfg = opt_quant.config
        assert counts["single"] == cfg.n_layers * len(cfg.components)

    def test_generation_call_parity(self, opt_quant):
        """Prefill + N decode steps issue the same number of injector calls
        for a batch of prompts as for one prompt."""
        vocab = opt_quant.config.vocab_size
        counts = {}
        for label, prompts in (
            ("single", (np.arange(10) % vocab)[None, :]),
            ("batch3", np.stack([(np.arange(10) + i) % vocab for i in range(3)])),
        ):
            injector = ErrorInjector(BitFlipModel(0.0), seed=0)
            opt_quant.attach(injector, None)
            try:
                opt_quant.generate_batch(prompts, 4)
            finally:
                opt_quant.attach(None, None)
            counts[label] = injector.stats.gemm_calls
        assert counts["single"] == counts["batch3"]


class TestBatchedProtection:
    def test_classical_abft_restores_batched_forward(self, opt_bundle, opt_quant):
        tokens = np.stack(
            [opt_bundle.source.sample_batch(1, 20, key=f"prot{i}")[0] for i in range(3)]
        )
        clean = opt_quant.forward_full(tokens)

        injector = ErrorInjector(BitFlipModel(2e-3), seed=9)
        opt_quant.attach(injector, None)
        try:
            corrupted = opt_quant.forward_full(tokens)
        finally:
            opt_quant.attach(None, None)
        assert np.abs(clean - corrupted).max() > 1e-6

        injector = ErrorInjector(BitFlipModel(2e-3), seed=9)
        protector = ClassicalABFT()
        opt_quant.attach(injector, protector)
        try:
            protected = opt_quant.forward_full(tokens)
        finally:
            opt_quant.attach(None, None)
        np.testing.assert_allclose(protected, clean, atol=1e-9)
        # per-slice inspection: one decision per 2-D matrix, not per call
        assert protector.stats.inspected > injector.stats.gemm_calls

    def test_partial_recovery_charges_only_tripped_slices(self, opt_quant):
        """With a single corrupted slice in a batched GEMM, recovery must
        charge a fraction of the GEMM's MACs, not the whole batch."""
        vocab = opt_quant.config.vocab_size
        tokens = np.stack([(np.arange(16) + i) % vocab for i in range(4)])
        injector = ErrorInjector(BitFlipModel(1e-5), seed=12)
        protector = ClassicalABFT()
        opt_quant.executor.reset_counters()
        opt_quant.attach(injector, protector)
        try:
            opt_quant.forward_full(tokens)
        finally:
            opt_quant.attach(None, None)
        if protector.stats.recovered:
            assert protector.stats.recovered_macs < opt_quant.executor.total_macs


class TestHarnessPathAgreement:
    """Batched and per-sequence evaluation produce identical clean scores."""

    def test_perplexity(self, opt_bundle, opt_quant):
        from repro.data import build_lm_data

        data = build_lm_data(opt_bundle.source, 4, 24)
        assert evaluate_perplexity(opt_quant, data, batched=True) == evaluate_perplexity(
            opt_quant, data, batched=False
        )

    def test_lambada(self, opt_bundle, opt_quant):
        from repro.data import build_lambada_like

        task = build_lambada_like(opt_bundle.source, 8, 12)
        assert evaluate_last_token_accuracy(
            opt_quant, task, batched=True
        ) == evaluate_last_token_accuracy(opt_quant, task, batched=False)

    def test_hellaswag(self, opt_bundle, opt_quant):
        from repro.data import build_hellaswag_like

        task = build_hellaswag_like(opt_bundle.source, 6, 10, 5)
        assert evaluate_multiple_choice(
            opt_quant, task, batched=True
        ) == evaluate_multiple_choice(opt_quant, task, batched=False)

    def test_evaluator_modes_agree_on_clean_scores(self, opt_bundle):
        for task in ("xsum", "gsm8k"):
            ev_b = ModelEvaluator(opt_bundle, task, batched=True)
            ev_u = ModelEvaluator(opt_bundle, task, batched=False)
            assert ev_b.clean_score == ev_u.clean_score


class TestBatchGroups:
    def test_groups_cover_and_stack(self):
        seqs = [np.arange(5), np.arange(3), np.arange(5) + 1, np.arange(3) + 1]
        groups = batch_groups(seqs)
        seen = sorted(i for idxs, _ in groups for i in idxs)
        assert seen == [0, 1, 2, 3]
        for idxs, batch in groups:
            assert batch.shape == (len(idxs), len(seqs[idxs[0]]))
            for row, i in zip(batch, idxs):
                np.testing.assert_array_equal(row, seqs[i])

    def test_rejects_non_1d(self):
        with pytest.raises(ValueError):
            batch_groups([np.zeros((2, 2))])


class TestModelCache:
    def test_evaluators_share_engine_across_tasks(self, opt_bundle):
        ev1 = ModelEvaluator(opt_bundle, "perplexity")
        ev2 = ModelEvaluator(opt_bundle, "lambada")
        assert ev1.model is ev2.model

    def test_private_engine_on_request(self, opt_bundle):
        shared = ModelEvaluator(opt_bundle, "perplexity")
        private = ModelEvaluator(opt_bundle, "perplexity", reuse_model=False)
        assert private.model is not shared.model
