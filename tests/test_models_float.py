"""Tests for the float transformer models (both architectures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.models.config import ModelConfig, tiny_llama_config, tiny_opt_config
from repro.models.float_model import FloatTransformerLM, outlier_gain
from repro.models.rope import apply_rope_np, rope_tables, rotate_half_np


@pytest.fixture(scope="module")
def opt_model():
    return FloatTransformerLM(tiny_opt_config(vocab_size=64), seed=0)


@pytest.fixture(scope="module")
def llama_model():
    return FloatTransformerLM(tiny_llama_config(vocab_size=64), seed=0)


class TestConfig:
    def test_rejects_unknown_arch(self):
        with pytest.raises(ValueError):
            ModelConfig(arch="gpt", vocab_size=8, d_model=8, n_heads=2, n_layers=1,
                        d_ff=8, max_seq_len=8)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            ModelConfig(arch="opt", vocab_size=8, d_model=10, n_heads=3, n_layers=1,
                        d_ff=8, max_seq_len=8)

    def test_llama_needs_even_head_dim(self):
        with pytest.raises(ValueError):
            ModelConfig(arch="llama", vocab_size=8, d_model=6, n_heads=2, n_layers=1,
                        d_ff=8, max_seq_len=8)

    def test_component_lists_per_arch(self):
        opt = tiny_opt_config()
        llama = tiny_llama_config()
        assert {c.value for c in opt.mlp_components} == {"FC1", "FC2"}
        assert {c.value for c in llama.mlp_components} == {"Gate", "Up", "Down"}
        assert len(opt.components) == 8
        assert len(llama.components) == 9

    def test_macs_per_token_positive_and_arch_dependent(self):
        assert tiny_opt_config().macs_per_token() > 0
        assert tiny_llama_config().macs_per_token() > 0


class TestOutlierGain:
    def test_gain_shape_and_values(self):
        cfg = tiny_opt_config()
        gain = outlier_gain(cfg)
        assert gain.shape == (cfg.d_model,)
        assert np.all(gain[: cfg.outlier_channels] == cfg.outlier_scale)
        assert np.all(gain[cfg.outlier_channels :] == 1.0)

    def test_no_outliers_is_identity(self):
        cfg = tiny_opt_config(outliers=False)
        np.testing.assert_array_equal(outlier_gain(cfg), np.ones(cfg.d_model))

    def test_outliers_visible_in_hidden_state_statistics(self, opt_model):
        """The induced outlier channels dominate hidden-state max-abs, the
        premise of the paper's Fig. 5 normalization analysis."""
        tokens = np.arange(16) % 32
        h = opt_model.embed(tokens)
        h = (h + opt_model.pos_embed(np.arange(16))) * opt_model._gain
        per_channel = np.abs(h.numpy()).max(axis=0)
        k = opt_model.config.outlier_channels
        assert per_channel[:k].min() > per_channel[k:].max()


class TestRope:
    def test_tables_shapes(self):
        cos, sin = rope_tables(10, 8)
        assert cos.shape == (10, 8) and sin.shape == (10, 8)

    def test_rotation_preserves_norm(self, rng):
        x = rng.normal(size=(2, 6, 8))
        cos, sin = rope_tables(6, 8)
        out = apply_rope_np(x, cos, sin)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-9
        )

    def test_offset_matches_shifted_table(self, rng):
        x = rng.normal(size=(1, 1, 8))
        cos_full, sin_full = rope_tables(6, 8)
        cos_off, sin_off = rope_tables(1, 8, offset=5)
        a = apply_rope_np(x, cos_full[5:6], sin_full[5:6])
        b = apply_rope_np(x, cos_off, sin_off)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_relative_position_property(self, rng):
        """RoPE dot products depend only on relative positions."""
        q = rng.normal(size=(8,))
        k = rng.normal(size=(8,))
        def score(pos_q, pos_k):
            cq, sq = rope_tables(1, 8, offset=pos_q)
            ck, sk = rope_tables(1, 8, offset=pos_k)
            rotated_q = apply_rope_np(q[None], cq, sq)
            rotated_k = apply_rope_np(k[None], ck, sk)
            return float((rotated_q @ rotated_k.T).item())
        np.testing.assert_allclose(score(3, 1), score(7, 5), atol=1e-9)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_tables(4, 7)

    def test_rotate_half(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(rotate_half_np(x), [-3.0, -4.0, 1.0, 2.0])


@pytest.mark.parametrize("fixture_name", ["opt_model", "llama_model"])
class TestForward:
    def test_logits_shape(self, fixture_name, request):
        model = request.getfixturevalue(fixture_name)
        tokens = np.arange(12) % 64
        logits = model(tokens)
        assert logits.shape == (12, 64)
        assert np.all(np.isfinite(logits.numpy()))

    def test_batched_forward(self, fixture_name, request):
        model = request.getfixturevalue(fixture_name)
        tokens = np.arange(24).reshape(2, 12) % 64
        logits = model(tokens)
        assert logits.shape == (2, 12, 64)

    def test_causality(self, fixture_name, request):
        """Changing a future token must not affect earlier logits."""
        model = request.getfixturevalue(fixture_name)
        tokens = (np.arange(10) * 7) % 64
        base = model(tokens).numpy()
        altered = tokens.copy()
        altered[-1] = (altered[-1] + 1) % 64
        changed = model(altered).numpy()
        np.testing.assert_allclose(base[:-1], changed[:-1], atol=1e-9)

    def test_loss_is_finite_and_decreases_with_training_signal(self, fixture_name, request):
        model = request.getfixturevalue(fixture_name)
        tokens = np.tile(np.array([3, 9]), 8)
        loss = model.loss(tokens)
        assert np.isfinite(loss.item())
        assert loss.item() > 0

    def test_sequence_too_long_rejected(self, fixture_name, request):
        model = request.getfixturevalue(fixture_name)
        with pytest.raises(ValueError):
            model(np.zeros(model.config.max_seq_len + 1, dtype=int))

    def test_gradients_reach_all_parameters(self, fixture_name, request):
        model = request.getfixturevalue(fixture_name)
        model.zero_grad()
        model.loss(np.arange(8) % 64).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing
