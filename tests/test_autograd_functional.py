"""Tests for composite differentiable functions (softmax, norms, losses)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor, functional as F

finite_rows = arrays(
    np.float64,
    (3, 5),
    elements=st.floats(min_value=-30, max_value=30, allow_nan=False),
)


class TestSoftmax:
    @given(finite_rows)
    @settings(max_examples=30, deadline=None)
    def test_rows_sum_to_one(self, x):
        out = F.softmax(Tensor(x)).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(3), atol=1e-9)
        assert np.all(out >= 0)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(2, 4))
        a = F.softmax(Tensor(x)).numpy()
        b = F.softmax(Tensor(x + 1000.0)).numpy()
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_extreme_values_stable(self):
        out = F.softmax(Tensor(np.array([[1e30, 0.0, -1e30]]))).numpy()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[0, 0], 1.0)

    def test_gradient_sums_to_zero(self, rng):
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        F.softmax(x)[1].backward()
        # d softmax / dx rows sum to zero => grad of one output wrt inputs sums ~0
        assert abs(x.grad.sum()) < 1e-10


class TestLogSoftmaxAndCrossEntropy:
    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(3, 6))
        a = F.log_softmax(Tensor(x)).numpy()
        b = np.log(F.softmax(Tensor(x)).numpy())
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((4, 8)))
        targets = np.array([0, 1, 2, 3])
        loss = F.cross_entropy(logits, targets)
        np.testing.assert_allclose(loss.item(), np.log(8.0), atol=1e-9)

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.full((2, 5), -50.0)
        logits[0, 3] = 50.0
        logits[1, 1] = 50.0
        loss = F.cross_entropy(Tensor(logits), np.array([3, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self, rng):
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        targets = np.array([1, 3])
        F.cross_entropy(x, targets).backward()
        probs = F.softmax(Tensor(x.numpy())).numpy()
        onehot = np.zeros((2, 4))
        onehot[np.arange(2), targets] = 1.0
        np.testing.assert_allclose(x.grad, (probs - onehot) / 2.0, atol=1e-9)

    def test_cross_entropy_3d_logits(self, rng):
        logits = Tensor(rng.normal(size=(2, 3, 5)), requires_grad=True)
        targets = rng.integers(0, 5, size=(2, 3))
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        assert logits.grad.shape == (2, 3, 5)
        assert np.isfinite(loss.item())


class TestNormalizations:
    def test_layer_norm_output_statistics(self, rng):
        x = Tensor(rng.normal(size=(4, 16)) * 5 + 3)
        out = F.layer_norm(x, Tensor(np.ones(16)), Tensor(np.zeros(16))).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-3)

    def test_rms_norm_unit_rms(self, rng):
        x = Tensor(rng.normal(size=(4, 16)) * 7)
        out = F.rms_norm(x, Tensor(np.ones(16))).numpy()
        rms = np.sqrt((out**2).mean(axis=-1))
        np.testing.assert_allclose(rms, np.ones(4), atol=1e-3)

    def test_layer_norm_affine_params(self, rng):
        x = Tensor(rng.normal(size=(2, 8)))
        w = Tensor(np.full(8, 2.0))
        b = Tensor(np.full(8, 1.0))
        out = F.layer_norm(x, w, b).numpy()
        plain = F.layer_norm(x, Tensor(np.ones(8)), Tensor(np.zeros(8))).numpy()
        np.testing.assert_allclose(out, plain * 2.0 + 1.0, atol=1e-9)

    def test_layer_norm_gradient_flows(self, rng):
        x = Tensor(rng.normal(size=(3, 8)), requires_grad=True)
        w = Tensor(np.ones(8), requires_grad=True)
        b = Tensor(np.zeros(8), requires_grad=True)
        F.layer_norm(x, w, b).sum().backward()
        assert x.grad is not None and w.grad is not None and b.grad is not None
        # LayerNorm output is mean-free => gradient of sum wrt x is ~0 only
        # through the bias path; just require finiteness here.
        assert np.all(np.isfinite(x.grad))

    def test_single_outlier_skews_normalization(self, rng):
        """The Fig. 5 mechanism: one large pre-norm error shifts *every*
        normalized element, not just the corrupted one."""
        x = rng.normal(size=(1, 32))
        clean = F.layer_norm(
            Tensor(x), Tensor(np.ones(32)), Tensor(np.zeros(32))
        ).numpy()
        corrupted_in = x.copy()
        corrupted_in[0, 5] += 1e4
        corrupted = F.layer_norm(
            Tensor(corrupted_in), Tensor(np.ones(32)), Tensor(np.zeros(32))
        ).numpy()
        untouched = np.delete(np.arange(32), 5)
        # all other elements moved substantially
        assert np.abs(clean[0, untouched] - corrupted[0, untouched]).max() > 0.5


class TestActivations:
    def test_relu_silu_gelu_shapes_and_signs(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        assert np.all(F.relu(x).numpy() >= 0)
        silu = F.silu(x).numpy()
        assert np.all(silu[x.numpy() > 0] > 0)
        assert np.all(np.isfinite(F.gelu(x).numpy()))

    def test_silu_matches_definition(self, rng):
        x = rng.normal(size=(10,))
        expected = x / (1.0 + np.exp(-x))
        np.testing.assert_allclose(F.silu(Tensor(x)).numpy(), expected, atol=1e-12)

    def test_attention_mask_is_strictly_upper(self):
        mask = F.attention_mask(4)
        assert mask.dtype == bool
        assert not mask[2, 2] and mask[0, 3] and not mask[3, 0]
