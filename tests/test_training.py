"""Tests for the trainer and the model zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.markov import MarkovTextSource
from repro.models.config import ModelConfig
from repro.models.float_model import FloatTransformerLM
from repro.training.trainer import TrainConfig, Trainer, lr_at
from repro.training.zoo import ZOO_SPECS, get_pretrained


class TestLrSchedule:
    def test_warmup_ramps_linearly(self):
        cfg = TrainConfig(steps=100, warmup_steps=10, lr=1.0)
        assert lr_at(0, cfg) == pytest.approx(0.1)
        assert lr_at(9, cfg) == pytest.approx(1.0)

    def test_cosine_decays_to_floor(self):
        cfg = TrainConfig(steps=100, warmup_steps=10, lr=1.0)
        assert lr_at(99, cfg) < lr_at(50, cfg) < lr_at(10, cfg)
        assert lr_at(99, cfg) >= 0.1 * cfg.lr - 1e-6


class TestTrainer:
    def _tiny(self):
        config = ModelConfig(
            arch="opt", vocab_size=32, d_model=16, n_heads=2, n_layers=1,
            d_ff=32, max_seq_len=32,
        )
        return FloatTransformerLM(config, seed=0)

    def test_loss_decreases(self):
        model = self._tiny()
        source = MarkovTextSource(vocab_size=32, seed=0)
        result = Trainer(model, TrainConfig(steps=60, batch_size=8, seq_len=16, lr=5e-3, log_every=0)).train(source)
        head = np.mean(result.losses[:10])
        tail = np.mean(result.losses[-10:])
        assert tail < head * 0.8

    def test_vocab_mismatch_rejected(self):
        model = self._tiny()
        with pytest.raises(ValueError):
            Trainer(model, TrainConfig(steps=1, log_every=0)).train(
                MarkovTextSource(vocab_size=64, seed=0)
            )

    def test_seq_len_exceeding_model_rejected(self):
        model = self._tiny()
        with pytest.raises(ValueError):
            Trainer(model, TrainConfig(steps=1, seq_len=64, log_every=0)).train(
                MarkovTextSource(vocab_size=32, seed=0)
            )

    def test_training_is_reproducible(self):
        source = MarkovTextSource(vocab_size=32, seed=0)
        losses = []
        for _ in range(2):
            model = self._tiny()
            result = Trainer(
                model, TrainConfig(steps=10, batch_size=4, seq_len=16, log_every=0)
            ).train(source)
            losses.append(result.losses)
        np.testing.assert_allclose(losses[0], losses[1])


class TestZoo:
    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_pretrained("gpt5-mini")

    def test_all_specs_have_required_fields(self):
        for name, spec in ZOO_SPECS.items():
            assert {"config", "train", "source"} <= set(spec)
            assert spec["config"]["arch"] in ("opt", "llama"), name

    def test_cache_roundtrip(self, opt_bundle):
        """Second load must come from cache and be bit-identical."""
        again = get_pretrained("opt-mini")
        assert again.final_loss == opt_bundle.final_loss
        for key, value in opt_bundle.state.items():
            np.testing.assert_array_equal(value, again.state[key])

    def test_bundle_trains_to_near_source_entropy(self, opt_bundle):
        floor = opt_bundle.source.entropy_rate()
        assert opt_bundle.final_loss < floor + 0.25

    def test_float_model_reconstruction(self, opt_bundle):
        model = opt_bundle.float_model()
        loss = model.loss(opt_bundle.source.sample_batch(2, 16, key="zcheck"))
        assert np.isfinite(loss.item())
