"""Tests for the quantized inference engine: float/quant agreement, KV-cache
consistency, injection/protection plumbing, MAC accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft.protectors import ClassicalABFT
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel
from repro.errors.sites import Component, SiteFilter, Stage
from repro.models.export import quantize_model
from repro.models.float_model import FloatTransformerLM
from repro.models.quantized import log_softmax_np, softmax_np


class TestNumpyHelpers:
    def test_softmax_np_matches_naive(self, rng):
        x = rng.normal(size=(3, 7))
        naive = np.exp(x) / np.exp(x).sum(axis=-1, keepdims=True)
        np.testing.assert_allclose(softmax_np(x), naive, atol=1e-12)

    def test_softmax_np_stability(self):
        out = softmax_np(np.array([[1e5, 0.0]]))
        assert np.all(np.isfinite(out))

    def test_log_softmax_consistency(self, rng):
        x = rng.normal(size=(4, 5))
        np.testing.assert_allclose(
            log_softmax_np(x), np.log(softmax_np(x)), atol=1e-12
        )


@pytest.mark.parametrize("bundle_name", ["opt_bundle", "llama_bundle"])
class TestQuantFloatAgreement:
    def test_quantized_logits_close_to_float(self, bundle_name, request):
        bundle = request.getfixturevalue(bundle_name)
        fmodel = FloatTransformerLM(bundle.config)
        fmodel.load_state_dict(bundle.state)
        qmodel = quantize_model(bundle.state, bundle.config)
        tokens = bundle.source.sample_batch(1, 24, key="agree")[0]
        f_logits = fmodel(tokens).numpy()
        q_logits = qmodel.forward_full(tokens)
        f_top = f_logits.argmax(axis=-1)
        q_top = q_logits.argmax(axis=-1)
        # INT8 quantization should preserve the vast majority of decisions
        assert (f_top == q_top).mean() > 0.8

    def test_quantized_nll_close_to_float(self, bundle_name, request):
        bundle = request.getfixturevalue(bundle_name)
        fmodel = FloatTransformerLM(bundle.config)
        fmodel.load_state_dict(bundle.state)
        qmodel = quantize_model(bundle.state, bundle.config)
        tokens = bundle.source.sample_batch(1, 24, key="agree2")[0]
        f_nll = float(fmodel.loss(tokens).item())
        q_nll = qmodel.sequence_nll(tokens)
        assert abs(f_nll - q_nll) < 0.35


@pytest.mark.parametrize("model_fixture", ["opt_quant", "llama_quant"])
class TestInferencePaths:
    def test_prefill_matches_forward_full(self, model_fixture, request):
        model = request.getfixturevalue(model_fixture)
        tokens = np.arange(10) % model.config.vocab_size
        full_logits = model.forward_full(tokens)
        last_logits, cache = model.prefill(tokens)
        np.testing.assert_allclose(last_logits, full_logits[-1], atol=1e-9)
        assert cache.seq_len == 10

    def test_decode_matches_prefill_extension(self, model_fixture, request):
        """Decoding token t+1 with the cache must equal re-running prefill
        on the extended sequence (KV-cache correctness)."""
        model = request.getfixturevalue(model_fixture)
        vocab = model.config.vocab_size
        tokens = (np.arange(9) * 5) % vocab
        _, cache = model.prefill(tokens[:-1])
        decode_logits = model.decode_step(int(tokens[-1]), cache)
        full_logits = model.forward_full(tokens)
        np.testing.assert_allclose(decode_logits, full_logits[-1], atol=1e-6)

    def test_generate_deterministic_and_bounded(self, model_fixture, request):
        model = request.getfixturevalue(model_fixture)
        prompt = np.arange(6) % model.config.vocab_size
        out1 = model.generate(prompt, 5)
        out2 = model.generate(prompt, 5)
        np.testing.assert_array_equal(out1, out2)
        assert out1.shape == (5,)
        assert np.all((0 <= out1) & (out1 < model.config.vocab_size))

    def test_generate_rejects_overflow(self, model_fixture, request):
        model = request.getfixturevalue(model_fixture)
        prompt = np.zeros(model.config.max_seq_len - 1, dtype=int)
        with pytest.raises(ValueError):
            model.generate(prompt, 10)

    def test_choice_logprob_prefers_likely_continuation(self, model_fixture, request):
        model = request.getfixturevalue(model_fixture)
        bundle_name = "opt_bundle" if model_fixture == "opt_quant" else "llama_bundle"
        bundle = request.getfixturevalue(bundle_name)
        seq = bundle.source.sample_batch(1, 20, key="choice")[0]
        context, true_cont = seq[:14], seq[14:]
        rng = np.random.default_rng(0)
        random_cont = rng.integers(0, bundle.config.vocab_size, size=6)
        assert model.choice_logprob(context, true_cont) > model.choice_logprob(
            context, random_cont
        )


class TestInjectionPlumbing:
    def test_injector_changes_outputs_and_protector_restores(self, opt_bundle):
        model = quantize_model(opt_bundle.state, opt_bundle.config)
        tokens = opt_bundle.source.sample_batch(1, 20, key="plumb")[0]
        clean = model.forward_full(tokens)

        injector = ErrorInjector(BitFlipModel(2e-3), seed=9)
        model.attach(injector, None)
        corrupted = model.forward_full(tokens)
        model.attach(None, None)
        assert np.abs(clean - corrupted).max() > 1e-6

        injector = ErrorInjector(BitFlipModel(2e-3), seed=9)
        model.attach(injector, ClassicalABFT())
        protected = model.forward_full(tokens)
        model.attach(None, None)
        np.testing.assert_allclose(protected, clean, atol=1e-9)

    def test_stage_tagging(self, opt_bundle):
        """Decode-only filters must leave prefill untouched and vice versa."""
        model = quantize_model(opt_bundle.state, opt_bundle.config)
        prompt = opt_bundle.source.sample_batch(1, 12, key="stage")[0]
        ref = model.generate(prompt, 4)

        injector = ErrorInjector(
            BitFlipModel(0.02), SiteFilter.only(stages=[Stage.DECODE]), seed=3
        )
        model.attach(injector, None)
        model.generate(prompt, 4)
        model.attach(None, None)
        decode_calls = [k for k in injector.stats.per_site_errors if "decode" in k]
        prefill_calls = [k for k in injector.stats.per_site_errors if "prefill" in k]
        assert decode_calls and not prefill_calls
        del ref

    def test_mac_accounting_by_component(self, opt_bundle):
        model = quantize_model(opt_bundle.state, opt_bundle.config)
        model.executor.reset_counters()
        tokens = np.arange(16) % opt_bundle.config.vocab_size
        model.forward_full(tokens)
        macs = model.executor.macs_by_component
        cfg = opt_bundle.config
        seq = 16
        # Q projection: layers * seq * d * d exactly
        assert macs["Q"] == cfg.n_layers * seq * cfg.d_model * cfg.d_model
        assert macs["FC1"] == cfg.n_layers * seq * cfg.d_model * cfg.d_ff
        assert model.executor.total_macs == sum(macs.values())

    def test_static_mode_requires_calibration(self, opt_bundle):
        model = quantize_model(opt_bundle.state, opt_bundle.config)
        model.executor.mode = "static"
        with pytest.raises(RuntimeError):
            model.forward_full(np.arange(8))

    def test_calibration_covers_decode_sites(self, opt_bundle):
        model = quantize_model(opt_bundle.state, opt_bundle.config)
        model.calibrate_activations([np.arange(16) % opt_bundle.config.vocab_size])
        assert model.executor.mode == "static"
        # decode then works without KeyError (scales are stage-independent)
        out = model.generate(np.arange(8) % opt_bundle.config.vocab_size, 3)
        assert out.shape == (3,)

    def test_missing_state_key_rejected(self, opt_bundle):
        state = dict(opt_bundle.state)
        state.pop("embed.weight")
        with pytest.raises(KeyError):
            quantize_model(state, opt_bundle.config)

    def test_raw_state_requires_config(self, opt_bundle):
        with pytest.raises(ValueError):
            quantize_model(dict(opt_bundle.state))
