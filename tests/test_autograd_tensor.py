"""Unit tests for the autograd core: gradients checked against finite
differences for every primitive operation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued function."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    g = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f(x)
        flat[i] = orig - eps
        lo = f(x)
        flat[i] = orig
        g[i] = (hi - lo) / (2 * eps)
    return grad


def check_unary(op, x: np.ndarray, atol: float = 1e-5) -> None:
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()
    expected = numeric_grad(lambda a: float(op(Tensor(a)).sum().numpy()), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol)


class TestArithmetic:
    def test_add_broadcast_grad(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_mul_grad(self, rng):
        x = rng.normal(size=(2, 3))
        y = rng.normal(size=(2, 3))
        a = Tensor(x, requires_grad=True)
        b = Tensor(y, requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, y)
        np.testing.assert_allclose(b.grad, x)

    def test_div_grad_matches_numeric(self, rng):
        x = rng.normal(size=(3, 3)) + 3.0
        check_unary(lambda t: 1.0 / t, x)

    def test_sub_and_neg(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, -np.ones((2, 2)))

    def test_pow_grad(self, rng):
        x = np.abs(rng.normal(size=(4,))) + 0.5
        check_unary(lambda t: t**3.0, x)

    def test_rsub_rdiv(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (5.0 - a).backward()
        np.testing.assert_allclose(a.grad, [-1.0])
        b = Tensor(np.array([2.0]), requires_grad=True)
        (6.0 / b).backward()
        np.testing.assert_allclose(b.grad, [-1.5])

    def test_scalar_exponent_only(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** np.ones(2)


class TestMatmul:
    def test_matmul_grads(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 5)))

    def test_batched_matmul_broadcast(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (4, 5)
        np.testing.assert_allclose(
            b.grad, sum(a.data[i].T @ np.ones((3, 5)) for i in range(2))
        )


class TestElementwise:
    @pytest.mark.parametrize(
        "name", ["exp", "tanh", "sigmoid", "relu", "abs", "sqrt"]
    )
    def test_matches_numeric(self, name, rng):
        x = rng.normal(size=(3, 3))
        if name == "sqrt":
            x = np.abs(x) + 0.5
        if name in ("relu", "abs"):
            x += 0.05 * np.sign(x)  # keep away from the kink
        check_unary(lambda t: getattr(t, name)(), x)

    def test_log_grad(self, rng):
        x = np.abs(rng.normal(size=(4,))) + 0.5
        check_unary(lambda t: t.log(), x)


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        a.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3, 4)))

    def test_mean_scaling(self, rng):
        a = Tensor(rng.normal(size=(5,)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(5, 0.2))

    def test_max_routes_gradient_to_argmax(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([3.0, 3.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])


class TestShapeOps:
    def test_reshape_roundtrip(self, rng):
        a = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        a.reshape(3, 4).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 6)))

    def test_transpose_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = a.transpose(1, 0, 2)
        assert out.shape == (3, 2, 4)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 2.0))

    def test_getitem_slice_grad(self, rng):
        a = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        a[1:3].sum().backward()
        expected = np.zeros((4, 4))
        expected[1:3] = 1.0
        np.testing.assert_allclose(a.grad, expected)

    def test_take_rows_accumulates_duplicates(self):
        table = Tensor(np.eye(3), requires_grad=True)
        idx = np.array([0, 0, 2])
        table.take_rows(idx).sum().backward()
        # every column of a gathered row receives gradient 1 per occurrence
        np.testing.assert_allclose(table.grad[:, 0], [2.0, 0.0, 1.0])

    def test_concatenate_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 3.0))
        np.testing.assert_allclose(b.grad, np.full((3, 2), 3.0))

    def test_masked_fill_blocks_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        a.masked_fill(mask, -9.0).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 - mask)


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a * a).backward()  # d(a^2)/da = 2a
        np.testing.assert_allclose(a.grad, [4.0])

    def test_backward_requires_scalar(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_leaf_without_grad_raises(self):
        a = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_no_grad_builds_no_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 2 + 1
        assert not out.requires_grad

    def test_detach_cuts_graph(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        out = a.detach() * a
        out.backward()
        np.testing.assert_allclose(a.grad, [3.0])  # only one path contributes

    def test_deep_chain_does_not_recurse(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_diamond_graph_gradient(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        left = a * 3.0
        right = a * 4.0
        (left + right).backward()
        np.testing.assert_allclose(a.grad, [7.0])
