"""Tests for the critical-region model and its fitting procedure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abft.region import CriticalRegion, GridPoint, fit_critical_region, theta_mag


class TestThetaMag:
    def test_zero_msd_gives_zero_threshold(self):
        assert theta_mag(1.5, 10.0, 0) == 0.0

    def test_threshold_decreases_with_msd(self):
        a, b = 1.5, 12.0
        thresholds = [theta_mag(a, b, 2.0**p) for p in (8, 12, 16, 20)]
        assert all(x >= y for x, y in zip(thresholds, thresholds[1:]))

    def test_threshold_floor_is_one(self):
        # Exponent clamps at 0 => threshold never below 1 LSB.
        assert theta_mag(3.0, -50.0, 2**20) == 1.0

    def test_published_form(self):
        a, b, msd = 1.5, 12.0, 2.0**10
        expected = 2.0 ** (b - (a - 1.0) * 10.0)
        assert theta_mag(a, b, msd) == pytest.approx(expected)

    @given(
        st.floats(min_value=1.05, max_value=3.0),
        st.floats(min_value=-8, max_value=32),
        st.floats(min_value=1, max_value=1e12),
    )
    @settings(max_examples=100, deadline=None)
    def test_always_non_negative_finite(self, a, b, msd):
        value = theta_mag(a, b, msd)
        assert np.isfinite(value) and value >= 0


class TestCriticalRegionValidation:
    def test_rejects_bad_slope(self):
        with pytest.raises(ValueError):
            CriticalRegion(a=0.0, b=1.0, theta_freq=1.0)

    def test_rejects_negative_theta_freq(self):
        with pytest.raises(ValueError):
            CriticalRegion(a=1.5, b=1.0, theta_freq=-1.0)

    def test_predicts_recovery_semantics(self):
        region = CriticalRegion(a=1.5, b=12.0, theta_freq=4.0)
        # sporadic large: freq below theta_freq => safe
        assert not region.predicts_recovery(mag=2**24, freq=2)
        # nothing injected
        assert not region.predicts_recovery(mag=0, freq=10)


def synthetic_grid(theta_freq=4.0, mag_knee=2**10):
    """A grid with the paper's resilient shape: safe below theta_freq, safe
    for tiny magnitudes, critical in the medium-mag / high-freq corner."""
    points = []
    for p in range(2, 26, 4):
        for q in range(0, 10, 2):
            mag, freq = 2.0**p, 2.0**q
            critical = freq > theta_freq and mag > mag_knee
            points.append(GridPoint(mag=mag, freq=freq, degradation=10.0 if critical else 0.0))
    return points


class TestFitCriticalRegion:
    def test_fit_classifies_synthetic_grid_perfectly(self):
        points = synthetic_grid()
        region = fit_critical_region(points, budget=0.5)
        for p in points:
            predicted = region.predicts_recovery(p.mag, p.freq)
            assert predicted == (p.degradation > 0.5), (p.mag, p.freq)

    def test_fit_never_misses_critical_when_separable(self):
        points = synthetic_grid(theta_freq=2.0, mag_knee=2**14)
        region = fit_critical_region(points, budget=0.5)
        missed = [
            p
            for p in points
            if p.degradation > 0.5 and not region.predicts_recovery(p.mag, p.freq)
        ]
        assert not missed

    def test_all_acceptable_grid_never_recovers(self):
        points = [
            GridPoint(mag=2.0**p, freq=2.0**q, degradation=0.0)
            for p in range(2, 20, 4)
            for q in range(0, 8, 2)
        ]
        region = fit_critical_region(points, budget=0.5)
        assert not any(region.predicts_recovery(p.mag, p.freq) for p in points)

    def test_all_critical_grid_always_recovers(self):
        points = [
            GridPoint(mag=2.0**p, freq=2.0**q, degradation=9.0)
            for p in range(8, 20, 4)
            for q in range(0, 8, 2)
        ]
        region = fit_critical_region(points, budget=0.5)
        assert all(region.predicts_recovery(p.mag, p.freq) for p in points)

    def test_sensitive_kind_recorded(self):
        region = fit_critical_region(synthetic_grid(), budget=0.5, kind="sensitive")
        assert region.kind == "sensitive"

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            fit_critical_region([], budget=0.5)

    def test_budget_monotonicity(self):
        """A looser budget can only shrink (or keep) the set of patterns
        flagged for recovery."""
        base = synthetic_grid()
        graded = [
            GridPoint(p.mag, p.freq, p.degradation * (np.log2(p.mag) / 10.0))
            for p in base
        ]
        tight = fit_critical_region(graded, budget=0.5)
        loose = fit_critical_region(graded, budget=15.0)
        tight_flags = sum(tight.predicts_recovery(p.mag, p.freq) for p in graded)
        loose_flags = sum(loose.predicts_recovery(p.mag, p.freq) for p in graded)
        assert loose_flags <= tight_flags
