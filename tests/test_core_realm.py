"""End-to-end tests of the ReaLM pipeline: the headline claims must hold on
the built system (shape-level, per EXPERIMENTS.md)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.methods import METHODS, method_names
from repro.core.realm import ReaLMConfig, ReaLMPipeline
from repro.energy.sweetspot import find_sweet_spot
from repro.errors.sites import Component

FAST_CFG = dict(
    task="perplexity",
    budget=0.3,
    voltages=(0.84, 0.78, 0.72, 0.66, 0.60),
    calib_mags=tuple(2**p for p in (4, 10, 16, 22, 28)),
    calib_freqs=(1, 8, 64, 256),
)


@pytest.fixture(scope="module")
def pipeline(opt_bundle):
    return ReaLMPipeline(opt_bundle, ReaLMConfig(**FAST_CFG))


class TestMethodRegistry:
    def test_all_methods_present(self):
        assert set(method_names()) <= set(METHODS)
        assert METHODS["dmr"].compute_factor == 2.0
        assert METHODS["statistical-abft"].behavioral

    def test_abft_detection_overheads_ordered(self):
        assert (
            METHODS["approx-abft"].detection_overhead
            <= METHODS["classical-abft"].detection_overhead
            < METHODS["statistical-abft"].detection_overhead
        )


class TestCalibration:
    def test_calibrate_fits_region_and_threshold(self, pipeline):
        pipeline.calibrate([Component.K, Component.O])
        assert "K" in pipeline.regions and "O" in pipeline.regions
        assert pipeline.regions["K"].kind == "resilient"
        assert pipeline.regions["O"].kind == "sensitive"
        assert pipeline.msd_thresholds["O"] > 0

    def test_calibration_cached(self, pipeline):
        pipeline.calibrate([Component.K])
        region = pipeline.regions["K"]
        pipeline.calibrate([Component.K])
        assert pipeline.regions["K"] is region

    def test_approx_global_threshold_is_sensitive_bound(self, pipeline):
        thr = pipeline.approx_global_threshold()
        pipeline.calibrate([Component.O, Component.FC2])
        assert thr == min(
            pipeline.msd_thresholds["O"], pipeline.msd_thresholds["FC2"]
        )


class TestHeadlineClaims:
    def test_no_protection_infeasible_at_low_voltage(self, pipeline):
        run = pipeline.evaluate_method_at("no-protection", None, 0.60)
        assert not run.feasible
        assert run.degradation > 1.0

    def test_statistical_abft_restores_performance(self, pipeline):
        """The paper's headline: perplexity degradation collapses (18.54 ->
        0.29 there; here: large -> within budget) under our protection."""
        unprotected = pipeline.evaluate_method_at("no-protection", None, 0.60)
        ours = pipeline.evaluate_method_at("statistical-abft", None, 0.60)
        assert unprotected.degradation > 10 * max(ours.degradation, 0.01)
        assert ours.feasible

    def test_statistical_recovers_less_than_classical(self, pipeline):
        classical = pipeline.evaluate_method_at("classical-abft", None, 0.66)
        ours = pipeline.evaluate_method_at("statistical-abft", None, 0.66)
        assert ours.recovered_macs < classical.recovered_macs
        assert ours.feasible and classical.feasible

    def test_sweet_spot_beats_prior_art(self, pipeline):
        """Fig. 9 protocol on the whole model: min feasible energy of ours
        vs. the best prior-art ABFT."""
        ours = [r.as_voltage_point() for r in pipeline.voltage_sweep("statistical-abft", None)]
        classical = [r.as_voltage_point() for r in pipeline.voltage_sweep("classical-abft", None)]
        best_ours = find_sweet_spot(ours)
        best_classical = find_sweet_spot(classical)
        assert best_ours.energy_j < best_classical.energy_j

    def test_dmr_always_feasible_but_expensive(self, pipeline):
        run_high = pipeline.evaluate_method_at("dmr", None, 0.84)
        run_none = pipeline.evaluate_method_at("no-protection", None, 0.84)
        assert run_high.feasible
        assert run_high.energy_j > 1.8 * run_none.energy_j


class TestSweetSpotTable:
    def test_resilient_saves_more_than_sensitive(self, pipeline):
        """Tab. II shape: resilient components enjoy much larger savings."""
        resilient = pipeline.sweet_spot(Component.K)
        sensitive = pipeline.sweet_spot(Component.O)
        assert resilient.saving_pct > sensitive.saving_pct + 5.0
        assert resilient.optimal_voltage <= sensitive.optimal_voltage

    def test_rows_well_formed(self, pipeline):
        row = pipeline.sweet_spot(Component.K)
        assert row.component == "K"
        assert row.kind == "resilient"
        assert row.energy_j > 0 and row.baseline_energy_j > 0


class TestTradeoffCurve:
    def test_looser_budget_never_increases_recovery(self, pipeline):
        rows = pipeline.tradeoff_curve(
            Component.FC2, budgets=(0.1, 1.0, 10.0), latency_voltage=0.66
        )
        overheads = [r["recovery_overhead_at_v"] for r in rows]
        assert all(x >= y - 1e-9 for x, y in zip(overheads, overheads[1:]))

    def test_rows_have_energy_and_voltage(self, pipeline):
        rows = pipeline.tradeoff_curve(
            Component.FC2, budgets=(0.3,), latency_voltage=0.66
        )
        assert np.isfinite(rows[0]["total_energy_j"])
        assert 0.59 <= rows[0]["optimal_voltage"] <= 0.85


class TestScopeHandling:
    def test_single_component_scope(self, pipeline):
        run = pipeline.evaluate_method_at("no-protection", Component.K, 0.72)
        assert run.component == "K"

    def test_component_list_scope(self, pipeline):
        run = pipeline.evaluate_method_at(
            "no-protection", [Component.K, Component.O], 0.72
        )
        assert run.component == "all"
        single = pipeline.evaluate_method_at("no-protection", Component.K, 0.72)
        assert run.macs > single.macs
