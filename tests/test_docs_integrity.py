"""Docs-integrity: every ``see DESIGN.md [section N]`` citation resolves."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))

from check_docs_integrity import check, find_citations


def test_design_citations_resolve():
    assert check() == []


def test_known_citations_present():
    """The five package-level citations the docstrings carry must be seen."""
    cited_files = {str(path.name) for path, _ in find_citations()}
    assert {"gemm.py", "__init__.py"} <= cited_files
