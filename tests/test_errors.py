"""Tests for the error-injection framework (models, sites, injector)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel, MagFreqModel, StuckHighBitModel, flip_bits
from repro.errors.sites import (
    Component,
    GemmSite,
    SENSITIVE_COMPONENTS,
    SiteFilter,
    Stage,
    component_kind,
)
from repro.quant.gemm import INT32_MAX, INT32_MIN
from repro.utils.seeding import derive_rng

SITE = GemmSite(layer=0, component=Component.K, stage=Stage.PREFILL)


class TestFlipBits:
    def test_single_bit_flip_changes_by_power_of_two(self):
        acc = np.array([1000], dtype=np.int64)
        mask = np.array([1 << 20], dtype=np.uint32)
        out = flip_bits(acc, mask)
        assert abs(int(out[0]) - 1000) == 2**20

    def test_sign_bit_flip(self):
        acc = np.array([0], dtype=np.int64)
        mask = np.array([1 << 31], dtype=np.uint32)
        out = flip_bits(acc, mask)
        assert out[0] == INT32_MIN

    def test_double_flip_restores(self):
        acc = np.array([12345], dtype=np.int64)
        mask = np.array([(1 << 30) | (1 << 17)], dtype=np.uint32)
        once = flip_bits(acc, mask)
        twice = flip_bits(once, mask)
        np.testing.assert_array_equal(twice, acc)


class TestBitFlipModel:
    def test_zero_ber_is_identity(self, rng):
        acc = rng.integers(-(2**20), 2**20, size=(8, 8)).astype(np.int64)
        out, n = BitFlipModel(0.0).corrupt(acc, rng)
        assert n == 0
        np.testing.assert_array_equal(out, acc)

    def test_does_not_mutate_input(self, rng):
        acc = np.zeros((16, 16), dtype=np.int64)
        snapshot = acc.copy()
        BitFlipModel(0.5).corrupt(acc, rng)
        np.testing.assert_array_equal(acc, snapshot)

    def test_single_targeted_bit(self, rng):
        acc = np.zeros((64, 64), dtype=np.int64)
        out, n = BitFlipModel(0.05, bits=(30,)).corrupt(acc, rng)
        changed = out[out != 0]
        assert n == changed.size > 0
        np.testing.assert_array_equal(np.abs(changed), 2**30)

    def test_flip_count_statistics(self):
        acc = np.zeros((100, 100), dtype=np.int64)
        rng = derive_rng(7, "stats")
        ber = 0.01
        bits = (20, 25, 30)
        _, n = BitFlipModel(ber, bits=bits).corrupt(acc, rng)
        expected = acc.size * len(bits) * ber
        assert 0.5 * expected < n < 1.5 * expected

    def test_results_stay_in_int32_range(self, rng):
        acc = np.full((32, 32), INT32_MAX, dtype=np.int64)
        out, _ = BitFlipModel(0.3).corrupt(acc, rng)
        assert out.max() <= INT32_MAX and out.min() >= INT32_MIN

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BitFlipModel(1.5)
        with pytest.raises(ValueError):
            BitFlipModel(0.1, bits=(40,))


class TestMagFreqModel:
    def test_exact_count_and_msd(self, rng):
        acc = np.zeros((50, 50), dtype=np.int64)
        mag, freq = 2**12, 17
        out, n = MagFreqModel(mag=mag, freq=freq).corrupt(acc, rng)
        assert n == freq
        diffs = out - acc
        assert np.count_nonzero(diffs) == freq
        assert int(np.abs(diffs).sum()) == mag * freq  # MSD = freq * mag

    def test_identical_positive_errors(self, rng):
        acc = np.zeros((10, 10), dtype=np.int64)
        out, _ = MagFreqModel(mag=100, freq=5, sign=1).corrupt(acc, rng)
        assert set(np.unique(out)) <= {0, 100}

    def test_random_signs(self, rng):
        acc = np.zeros((40, 40), dtype=np.int64)
        out, _ = MagFreqModel(mag=64, freq=200, sign=0).corrupt(acc, rng)
        assert (out > 0).any() and (out < 0).any()

    def test_freq_capped_at_tensor_size(self, rng):
        acc = np.zeros((2, 2), dtype=np.int64)
        out, n = MagFreqModel(mag=8, freq=100).corrupt(acc, rng)
        assert n == 4
        assert np.count_nonzero(out) == 4

    def test_zero_freq_or_mag_identity(self, rng):
        acc = np.ones((3, 3), dtype=np.int64)
        for model in (MagFreqModel(0, 5), MagFreqModel(5, 0)):
            out, n = model.corrupt(acc, rng)
            assert n == 0
            np.testing.assert_array_equal(out, acc)

    @given(
        st.integers(min_value=1, max_value=2**20),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_msd_invariant_property(self, mag, freq):
        rng = derive_rng(mag * 31 + freq, "prop")
        acc = np.zeros((8, 8), dtype=np.int64)
        out, n = MagFreqModel(mag=mag, freq=freq).corrupt(acc, rng)
        assert int(np.abs(out).sum()) == mag * n


class TestStuckHighBit:
    def test_same_columns_across_calls(self, rng):
        model = StuckHighBitModel(bit=28, column_fraction=0.25)
        acc = np.zeros((4, 16), dtype=np.int64)
        out1, _ = model.corrupt(acc, rng)
        out2, _ = model.corrupt(acc, rng)
        np.testing.assert_array_equal(out1 != 0, out2 != 0)

    def test_bit_actually_stuck_high(self, rng):
        model = StuckHighBitModel(bit=20, column_fraction=1.0)
        acc = np.zeros((2, 4), dtype=np.int64)
        out, _ = model.corrupt(acc, rng)
        np.testing.assert_array_equal(out, np.full((2, 4), 2**20))


class TestSiteFilter:
    def test_everywhere_matches_all(self):
        f = SiteFilter.everywhere()
        assert f.matches(SITE)
        assert f.matches(GemmSite(5, Component.DOWN, Stage.DECODE))

    def test_component_filter(self):
        f = SiteFilter.only(components=[Component.O])
        assert not f.matches(SITE)
        assert f.matches(GemmSite(0, Component.O, Stage.PREFILL))

    def test_layer_and_stage_filter(self):
        f = SiteFilter.only(layers=[1], stages=[Stage.DECODE])
        assert f.matches(GemmSite(1, Component.Q, Stage.DECODE))
        assert not f.matches(GemmSite(1, Component.Q, Stage.PREFILL))
        assert not f.matches(GemmSite(0, Component.Q, Stage.DECODE))

    def test_component_kind_split(self):
        assert component_kind(Component.O) == "sensitive"
        assert component_kind(Component.DOWN) == "sensitive"
        assert component_kind(Component.K) == "resilient"
        assert Component.FC2 in SENSITIVE_COMPONENTS


class TestErrorInjector:
    def test_untargeted_site_passes_through(self, rng):
        inj = ErrorInjector(BitFlipModel(0.5), SiteFilter.only(components=[Component.O]))
        acc = np.zeros((8, 8), dtype=np.int64)
        out = inj.corrupt(acc, SITE)  # SITE is K, filter wants O
        np.testing.assert_array_equal(out, acc)
        assert inj.stats.targeted_calls == 0
        assert inj.stats.gemm_calls == 1

    def test_targeted_site_corrupted_and_counted(self):
        inj = ErrorInjector(BitFlipModel(0.2), seed=3)
        acc = np.zeros((16, 16), dtype=np.int64)
        out = inj.corrupt(acc, SITE)
        assert np.any(out != 0)
        assert inj.stats.injected_errors > 0
        assert str(SITE) in inj.stats.per_site_errors

    def test_deterministic_given_seed(self):
        acc = np.zeros((16, 16), dtype=np.int64)
        outs = []
        for _ in range(2):
            inj = ErrorInjector(BitFlipModel(0.1), seed=42)
            outs.append(inj.corrupt(acc, SITE))
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_call_index_decorrelates_repeated_calls(self):
        inj = ErrorInjector(BitFlipModel(0.1), seed=42)
        acc = np.zeros((16, 16), dtype=np.int64)
        a = inj.corrupt(acc, SITE)
        b = inj.corrupt(acc, SITE)
        assert np.any(a != b)

    def test_reset_clears_stats(self):
        inj = ErrorInjector(BitFlipModel(0.5), seed=1)
        inj.corrupt(np.zeros((8, 8), dtype=np.int64), SITE)
        inj.reset()
        assert inj.stats.gemm_calls == 0
        assert inj.stats.injected_errors == 0

    def test_disabled_injector_is_identity(self):
        inj = ErrorInjector(BitFlipModel(0.5), seed=1)
        inj.enabled = False
        acc = np.zeros((8, 8), dtype=np.int64)
        np.testing.assert_array_equal(inj.corrupt(acc, SITE), acc)
