"""Unit tests for the benchmark-baseline regression guard."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "bench_compare", REPO_ROOT / "tools" / "bench_compare.py"
)
bench_compare = importlib.util.module_from_spec(_spec)
sys.modules["bench_compare"] = bench_compare
_spec.loader.exec_module(bench_compare)


def _write(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


class TestRegressionMath:
    def test_higher_is_better(self):
        assert bench_compare.regression(4.0, 2.0, "higher") == 0.5
        assert bench_compare.regression(4.0, 5.0, "higher") == -0.25
        assert bench_compare.regression(0.0, 1.0, "higher") == 0.0

    def test_lower_is_better(self):
        assert bench_compare.regression(10.0, 15.0, "lower") == 0.5
        assert bench_compare.regression(10.0, 5.0, "lower") == -0.5


class TestComparePayloads:
    def test_within_threshold_passes(self):
        failures = bench_compare.compare_payloads(
            "BENCH_lanes.json", {"speedup": 4.0}, {"speedup": 3.5}, 0.25, 0.6
        )
        assert failures == []

    def test_regression_beyond_threshold_fails(self):
        failures = bench_compare.compare_payloads(
            "BENCH_lanes.json", {"speedup": 4.0}, {"speedup": 2.0}, 0.25, 0.6
        )
        assert len(failures) == 1 and "speedup" in failures[0]

    def test_smoke_payloads_use_relaxed_threshold(self):
        # 40% down: fails the 25% full-run bound, passes the smoke bound
        base, fresh = {"speedup": 4.0, "smoke": True}, {"speedup": 2.4, "smoke": True}
        assert bench_compare.compare_payloads(
            "BENCH_lanes.json", base, fresh, 0.25, 0.6
        ) == []
        assert bench_compare.compare_payloads(
            "BENCH_lanes.json", {"speedup": 4.0}, {"speedup": 2.4}, 0.25, 0.6
        )

    def test_replay_ratio_exempt_in_smoke_runs(self):
        """bench_replay's smoke cells time one sub-ms trial; its ratio is
        documented noise there and must never fail CI from a smoke run."""
        assert bench_compare.compare_payloads(
            "BENCH_replay.json",
            {"deep_layer_speedup": 1.58, "smoke": True},
            {"deep_layer_speedup": 0.40, "smoke": True},
            0.25,
            0.6,
        ) == []
        # full runs still enforce it
        assert bench_compare.compare_payloads(
            "BENCH_replay.json",
            {"deep_layer_speedup": 4.9},
            {"deep_layer_speedup": 2.0},
            0.25,
            0.6,
        )

    def test_lower_is_better_metric(self):
        failures = bench_compare.compare_payloads(
            "BENCH_dispatch.json", {"overhead_pct": 8.0}, {"overhead_pct": 12.0}, 0.25, 0.6
        )
        assert len(failures) == 1

    def test_missing_metric_skipped(self):
        assert bench_compare.compare_payloads(
            "BENCH_lanes.json", {"other": 1}, {"speedup": 1.0}, 0.25, 0.6
        ) == []


class TestCompareDirs:
    def test_end_to_end_pass_and_fail(self, tmp_path):
        baseline, fresh = tmp_path / "base", tmp_path / "fresh"
        _write(baseline, "BENCH_lanes.json", {"speedup": 4.0})
        _write(fresh, "BENCH_lanes.json", {"speedup": 3.9})
        assert bench_compare.compare_dirs(baseline, fresh, 0.25, 0.6) == []
        _write(fresh, "BENCH_lanes.json", {"speedup": 1.0})
        assert bench_compare.compare_dirs(baseline, fresh, 0.25, 0.6)

    def test_empty_directories_fail_loudly(self, tmp_path):
        failures = bench_compare.compare_dirs(
            tmp_path / "a", tmp_path / "b", 0.25, 0.6
        )
        assert failures and "no benchmark payloads" in failures[0]

    def test_main_exit_codes(self, tmp_path):
        baseline, fresh = tmp_path / "base", tmp_path / "fresh"
        _write(baseline, "BENCH_replay.json", {"deep_layer_speedup": 4.9})
        _write(fresh, "BENCH_replay.json", {"deep_layer_speedup": 4.8})
        argv = ["--baseline", str(baseline), "--fresh", str(fresh)]
        assert bench_compare.main(argv) == 0
        _write(fresh, "BENCH_replay.json", {"deep_layer_speedup": 1.0})
        assert bench_compare.main(argv) == 1
